#include "data/splitter.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::data {

SplitActivity SplitOne(const model::Activity& activity,
                       double visible_fraction, util::Rng& rng) {
  GOALREC_CHECK_GE(visible_fraction, 0.0);
  GOALREC_CHECK_LE(visible_fraction, 1.0);
  SplitActivity split;
  if (activity.empty()) return split;
  uint32_t n = static_cast<uint32_t>(activity.size());
  uint32_t visible_count = static_cast<uint32_t>(
      std::ceil(visible_fraction * static_cast<double>(n)));
  visible_count = std::clamp(visible_count, 1u, n);
  std::vector<uint32_t> picks = rng.SampleWithoutReplacement(n, visible_count);
  std::vector<bool> is_visible(n, false);
  for (uint32_t idx : picks) is_visible[idx] = true;
  for (uint32_t i = 0; i < n; ++i) {
    (is_visible[i] ? split.visible : split.hidden).push_back(activity[i]);
  }
  // The source activity is sorted, so both halves already are.
  return split;
}

std::vector<EvalUser> SplitDataset(const Dataset& dataset,
                                   double visible_fraction, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<EvalUser> users;
  users.reserve(dataset.users.size());
  for (const UserRecord& record : dataset.users) {
    if (record.full_activity.empty()) continue;
    SplitActivity split = SplitOne(record.full_activity, visible_fraction, rng);
    users.push_back(
        EvalUser{std::move(split.visible), std::move(split.hidden),
                 record.true_goals});
  }
  return users;
}

}  // namespace goalrec::data
