#include "data/foodmart.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace goalrec::data {
namespace {

std::string ProductName(uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "product_%04u", i);
  return buf;
}

std::string RecipeName(uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "recipe_%05u", i);
  return buf;
}

}  // namespace

FoodmartOptions SmallFoodmartOptions() {
  FoodmartOptions options;
  options.num_products = 90;
  options.num_categories = 16;
  options.num_ingredient_products = 48;
  options.num_recipes = 600;
  options.min_recipe_size = 3;
  options.max_recipe_size = 8;
  options.num_carts = 300;
  options.min_cart_size = 3;
  options.max_cart_size = 8;
  return options;
}

Dataset GenerateFoodmart(const FoodmartOptions& options) {
  GOALREC_CHECK_GT(options.num_products, 0u);
  GOALREC_CHECK_GT(options.num_categories, 0u);
  GOALREC_CHECK_LE(options.num_ingredient_products, options.num_products);
  GOALREC_CHECK_GE(options.min_recipe_size, 1u);
  GOALREC_CHECK_LE(options.min_recipe_size, options.max_recipe_size);
  GOALREC_CHECK_LE(options.max_recipe_size, options.num_ingredient_products);
  GOALREC_CHECK_GE(options.min_cart_size, 1u);
  GOALREC_CHECK_LE(options.min_cart_size, options.max_cart_size);

  util::Rng rng(options.seed);
  Dataset dataset;
  dataset.name = "foodmart";

  // Products and categories. Round-robin assignment spreads ingredients
  // evenly across categories.
  model::LibraryBuilder builder;
  std::vector<uint32_t> category_of(options.num_products);
  for (uint32_t p = 0; p < options.num_products; ++p) {
    model::ActionId id = builder.InternAction(ProductName(p));
    GOALREC_CHECK_EQ(id, p);
    category_of[p] = p % options.num_categories;
  }

  // Ingredient pools per category (ingredient product ids only).
  std::vector<std::vector<model::ActionId>> category_ingredients(
      options.num_categories);
  for (uint32_t p = 0; p < options.num_ingredient_products; ++p) {
    category_ingredients[category_of[p]].push_back(p);
  }
  std::vector<uint32_t> nonempty_categories;
  for (uint32_t c = 0; c < options.num_categories; ++c) {
    if (!category_ingredients[c].empty()) nonempty_categories.push_back(c);
  }
  GOALREC_CHECK(!nonempty_categories.empty());

  util::ZipfSampler global_zipf(options.num_ingredient_products,
                                options.ingredient_zipf);

  // Recipes. Each recipe's ingredients are mostly drawn from a small set of
  // cuisine categories, with a Zipf-popular global fallback.
  std::vector<model::IdSet> recipe_actions(options.num_recipes);
  for (uint32_t r = 0; r < options.num_recipes; ++r) {
    uint32_t size = static_cast<uint32_t>(
        rng.UniformInt(options.min_recipe_size, options.max_recipe_size));
    std::vector<uint32_t> cuisines;
    uint32_t cuisine_count =
        std::min<uint32_t>(options.cuisine_categories,
                           static_cast<uint32_t>(nonempty_categories.size()));
    for (uint32_t i = 0; i < cuisine_count; ++i) {
      cuisines.push_back(nonempty_categories[rng.UniformUint32(
          static_cast<uint32_t>(nonempty_categories.size()))]);
    }
    model::IdSet& actions = recipe_actions[r];
    // Bounded retries guard against tiny ingredient pools where a recipe of
    // the requested size may not be fillable with distinct ingredients.
    uint32_t attempts = 0;
    while (actions.size() < size && attempts < 20 * size) {
      ++attempts;
      model::ActionId pick;
      if (rng.Bernoulli(options.coherence)) {
        const std::vector<model::ActionId>& pool =
            category_ingredients[cuisines[rng.UniformUint32(cuisine_count)]];
        pick = pool[rng.UniformUint32(static_cast<uint32_t>(pool.size()))];
      } else {
        pick = global_zipf.Sample(rng);
      }
      if (!util::Contains(actions, pick)) {
        actions.push_back(pick);
        std::sort(actions.begin(), actions.end());
      }
    }
    builder.AddImplementationIds(builder.InternGoal(RecipeName(r)),
                                 actions);
  }
  dataset.library = std::move(builder).Build();

  // Customer plan: consecutive runs of carts may belong to one repeat
  // customer with a small set of favourite recipes; every other cart is its
  // own customer. Planned up front so cart generation below stays linear.
  std::vector<uint32_t> cart_customer(options.num_carts, 0);
  // Favourite recipe indices per customer; empty for one-off customers.
  std::vector<std::vector<uint32_t>> customer_favorites;
  {
    uint32_t c = 0;
    while (c < options.num_carts) {
      uint32_t customer = static_cast<uint32_t>(customer_favorites.size());
      uint32_t group = 1;
      std::vector<uint32_t> favorites;
      if (options.repeat_customer_fraction > 0.0 &&
          options.max_carts_per_customer >= 2 &&
          options.num_carts - c >= 2 &&
          rng.Bernoulli(options.repeat_customer_fraction)) {
        group = static_cast<uint32_t>(rng.UniformInt(
            2, std::min<int64_t>(options.max_carts_per_customer,
                                 options.num_carts - c)));
        uint32_t favorite_count = std::min(
            std::max(1u, options.favorite_recipes), options.num_recipes);
        favorites =
            rng.SampleWithoutReplacement(options.num_recipes, favorite_count);
      }
      customer_favorites.push_back(std::move(favorites));
      for (uint32_t i = 0; i < group; ++i) cart_customer[c + i] = customer;
      c += group;
    }
  }

  // Carts: partial baskets of 1–3 recipes, interleaved with Zipf-popular
  // staples (products outside the recipe universe) and a little random fill.
  uint32_t num_staples = options.num_products - options.num_ingredient_products;
  std::optional<util::ZipfSampler> staple_zipf;
  if (num_staples > 0) staple_zipf.emplace(num_staples, options.staple_zipf);
  dataset.users.reserve(options.num_carts);
  for (uint32_t c = 0; c < options.num_carts; ++c) {
    uint32_t target_size = static_cast<uint32_t>(
        rng.UniformInt(options.min_cart_size, options.max_cart_size));
    uint32_t seed_recipes = static_cast<uint32_t>(rng.UniformInt(1, 3));
    model::Activity cart;
    std::vector<model::ActionId> ordered;
    auto add = [&cart, &ordered](model::ActionId item) {
      if (!util::Contains(cart, item)) {
        cart.push_back(item);
        std::sort(cart.begin(), cart.end());
        ordered.push_back(item);
      }
    };
    const std::vector<uint32_t>& favorites =
        customer_favorites[cart_customer[c]];
    for (uint32_t s = 0; s < seed_recipes && cart.size() < target_size; ++s) {
      // Repeat customers cook from their favourites; one-off customers
      // sample the whole recipe corpus.
      uint32_t recipe_index =
          favorites.empty()
              ? rng.UniformUint32(options.num_recipes)
              : favorites[rng.UniformUint32(
                    static_cast<uint32_t>(favorites.size()))];
      const model::IdSet& recipe = recipe_actions[recipe_index];
      for (model::ActionId a : recipe) {
        if (cart.size() >= target_size) break;
        if (staple_zipf.has_value() &&
            rng.Bernoulli(options.staple_fraction)) {
          add(options.num_ingredient_products + staple_zipf->Sample(rng));
        } else if (rng.Bernoulli(options.cart_noise)) {
          add(rng.UniformUint32(options.num_products));
        } else {
          add(a);
        }
      }
    }
    // Pad short carts with staples (or random products when there are none).
    uint32_t attempts = 0;
    while (cart.size() < options.min_cart_size && attempts < 100) {
      ++attempts;
      if (staple_zipf.has_value()) {
        add(options.num_ingredient_products + staple_zipf->Sample(rng));
      } else {
        add(rng.UniformUint32(options.num_products));
      }
    }
    dataset.users.push_back(UserRecord{std::move(cart), std::move(ordered),
                                       {}, cart_customer[c]});
  }

  // Features: department + subcategory per product. Departments group
  // consecutive category ids (category c belongs to department
  // c / ceil(categories / departments)), and feature ids are departments
  // first, then categories offset by num_departments.
  uint32_t departments = std::max(1u, options.num_departments);
  uint32_t categories_per_department =
      (options.num_categories + departments - 1) / departments;
  dataset.features.num_features = departments + options.num_categories;
  dataset.features.features.resize(options.num_products);
  for (uint32_t p = 0; p < options.num_products; ++p) {
    uint32_t department = category_of[p] / categories_per_department;
    dataset.features.features[p] = {department,
                                    departments + category_of[p]};
  }
  return dataset;
}

}  // namespace goalrec::data
