#ifndef GOALREC_DATA_FORTYTHREE_H_
#define GOALREC_DATA_FORTYTHREE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

// Synthetic 43Things scenario (paper §6, second dataset). The paper
// extracted 18,047 goal implementations from the 43things.com goal-setting
// platform: 3,747 real-life goals, 5,456 actions, action connectivity 3.84,
// and 8,071 users of whom 5,047 pursue one goal, 1,806 two, 623 three and
// 595 more than three. Unlike FoodMart, actions are useful only within
// narrow "families" of goals.
//
// Note on connectivity: the paper's three stated statistics are mutually
// constraining — connectivity × #actions = #implementations × mean
// implementation length, so 3.84 × 5,456 / 18,047 forces a mean
// implementation length of ≈1.16 actions, which would make the strategies
// degenerate. We preserve the goal/action/implementation/user counts, the
// per-user goal distribution and the *family* structure (each action confined
// to a handful of related goals), and let connectivity land around 6–8 —
// still two orders of magnitude below FoodMart's ≈1.2K, preserving the
// high-/low-connectivity contrast every experiment relies on. Recorded in
// DESIGN.md §2 and EXPERIMENTS.md.

namespace goalrec::data {

struct FortyThreeOptions {
  uint32_t num_goals = 3747;
  uint32_t num_actions = 5456;
  uint32_t num_implementations = 18047;
  /// Users pursuing exactly 1, 2, 3 goals; the last bucket pursues 4–6.
  std::vector<uint32_t> users_per_goal_count = {5047, 1806, 623, 595};
  /// Actions in one family pool, shared by the goals of that family.
  uint32_t family_size = 24;
  /// Distinct actions each goal draws its implementations from.
  uint32_t goal_pool_size = 8;
  uint32_t min_impl_size = 1;
  uint32_t max_impl_size = 6;
  /// Draw implementation sizes with probability ∝ 1/size instead of
  /// uniformly. 43Things stories describe one or two concrete actions far
  /// more often than six; the harmonic bias brings the mean implementation
  /// length (and hence connectivity) close to the paper's regime.
  bool harmonic_impl_sizes = true;
  uint64_t seed = 43;
};

/// Smaller instance with the same structure for tests and examples.
FortyThreeOptions SmallFortyThreeOptions();

/// Generates the dataset. Every user's full activity is the union of one
/// implementation per pursued goal (the paper's Table 1 construction), and
/// `true_goals` records the pursued goals for the completeness experiment.
/// The feature table is empty (no accepted domain features, §6).
Dataset GenerateFortyThree(const FortyThreeOptions& options);

}  // namespace goalrec::data

#endif  // GOALREC_DATA_FORTYTHREE_H_
