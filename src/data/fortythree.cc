#include "data/fortythree.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/logging.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace goalrec::data {
namespace {

std::string GoalName(uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "goal_%04u", i);
  return buf;
}

std::string ActionName(uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "action_%04u", i);
  return buf;
}

}  // namespace

FortyThreeOptions SmallFortyThreeOptions() {
  FortyThreeOptions options;
  options.num_goals = 120;
  options.num_actions = 200;
  options.num_implementations = 500;
  options.users_per_goal_count = {120, 60, 30, 20};
  options.family_size = 16;
  options.goal_pool_size = 6;
  return options;
}

Dataset GenerateFortyThree(const FortyThreeOptions& options) {
  GOALREC_CHECK_GT(options.num_goals, 0u);
  GOALREC_CHECK_GT(options.num_actions, 0u);
  GOALREC_CHECK_GE(options.num_implementations, options.num_goals);
  GOALREC_CHECK_GE(options.family_size, options.goal_pool_size);
  GOALREC_CHECK_GE(options.min_impl_size, 1u);
  GOALREC_CHECK_LE(options.min_impl_size, options.max_impl_size);
  GOALREC_CHECK_LE(options.max_impl_size, options.goal_pool_size);
  GOALREC_CHECK(!options.users_per_goal_count.empty());

  util::Rng rng(options.seed);
  Dataset dataset;
  dataset.name = "43things";

  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < options.num_actions; ++a) {
    model::ActionId id = builder.InternAction(ActionName(a));
    GOALREC_CHECK_EQ(id, a);
  }
  for (uint32_t g = 0; g < options.num_goals; ++g) {
    model::GoalId id = builder.InternGoal(GoalName(g));
    GOALREC_CHECK_EQ(id, g);
  }

  // Families: contiguous blocks of the action space. Each goal belongs to
  // one family and draws a private pool of goal_pool_size actions from it,
  // which keeps every action confined to the few goals of its family.
  uint32_t num_families =
      std::max<uint32_t>(1, options.num_actions / options.family_size);
  std::vector<model::IdSet> goal_pool(options.num_goals);
  for (uint32_t g = 0; g < options.num_goals; ++g) {
    uint32_t family = g % num_families;
    uint32_t base = family * options.family_size;
    uint32_t span =
        std::min(options.family_size, options.num_actions - base);
    GOALREC_CHECK_GT(span, 0u);
    uint32_t pool_size = std::min(options.goal_pool_size, span);
    std::vector<uint32_t> picks = rng.SampleWithoutReplacement(span, pool_size);
    for (uint32_t offset : picks) goal_pool[g].push_back(base + offset);
    std::sort(goal_pool[g].begin(), goal_pool[g].end());
  }

  // Distribute implementations: every goal gets one, the remainder land on
  // uniformly random goals (some goals have many alternative ways).
  std::vector<uint32_t> impls_of_goal(options.num_goals, 1);
  for (uint32_t extra = options.num_goals;
       extra < options.num_implementations; ++extra) {
    ++impls_of_goal[rng.UniformUint32(options.num_goals)];
  }

  // Implementation ids per goal, needed later to assemble user activities.
  std::vector<std::vector<model::ImplId>> goal_impl_ids(options.num_goals);
  for (uint32_t g = 0; g < options.num_goals; ++g) {
    const model::IdSet& pool = goal_pool[g];
    for (uint32_t i = 0; i < impls_of_goal[g]; ++i) {
      uint32_t max_size = std::min<uint32_t>(
          options.max_impl_size, static_cast<uint32_t>(pool.size()));
      uint32_t min_size = std::min(options.min_impl_size, max_size);
      uint32_t size;
      if (options.harmonic_impl_sizes && max_size > min_size) {
        // P(size = s) ∝ 1/s over [min_size, max_size].
        double total = 0.0;
        for (uint32_t s = min_size; s <= max_size; ++s) {
          total += 1.0 / static_cast<double>(s);
        }
        double u = rng.UniformDouble() * total;
        size = max_size;
        for (uint32_t s = min_size; s <= max_size; ++s) {
          u -= 1.0 / static_cast<double>(s);
          if (u <= 0.0) {
            size = s;
            break;
          }
        }
      } else {
        size = static_cast<uint32_t>(rng.UniformInt(min_size, max_size));
      }
      std::vector<uint32_t> picks = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(pool.size()), size);
      model::IdSet actions;
      actions.reserve(size);
      for (uint32_t idx : picks) actions.push_back(pool[idx]);
      model::ImplId impl = builder.AddImplementationIds(g, std::move(actions));
      goal_impl_ids[g].push_back(impl);
    }
  }
  dataset.library = std::move(builder).Build();

  // Users: goal-count buckets per the paper's distribution; bucket i (0-based)
  // pursues i+1 goals, the final bucket 4–6.
  for (uint32_t bucket = 0; bucket < options.users_per_goal_count.size();
       ++bucket) {
    bool last = bucket + 1 == options.users_per_goal_count.size() &&
                options.users_per_goal_count.size() >= 4;
    for (uint32_t n = 0; n < options.users_per_goal_count[bucket]; ++n) {
      uint32_t goal_count =
          last ? static_cast<uint32_t>(rng.UniformInt(4, 6)) : bucket + 1;
      goal_count = std::min(goal_count, options.num_goals);
      std::vector<uint32_t> goals =
          rng.SampleWithoutReplacement(options.num_goals, goal_count);
      model::Activity activity;
      std::vector<model::ActionId> ordered;
      model::IdSet true_goals;
      for (uint32_t g : goals) {
        true_goals.push_back(g);
        const std::vector<model::ImplId>& impls = goal_impl_ids[g];
        model::ImplId chosen =
            impls[rng.UniformUint32(static_cast<uint32_t>(impls.size()))];
        std::span<const model::ActionId> actions =
            dataset.library.ActionsOf(chosen);
        for (model::ActionId a : actions) {
          // Performance order: goal by goal, skipping repeats.
          if (!util::Contains(activity, a)) ordered.push_back(a);
          activity.push_back(a);
          util::Normalize(activity);
        }
      }
      std::sort(true_goals.begin(), true_goals.end());
      uint32_t customer = static_cast<uint32_t>(dataset.users.size());
      dataset.users.push_back(UserRecord{std::move(activity),
                                         std::move(ordered),
                                         std::move(true_goals), customer});
    }
  }
  // 43T has no accepted domain features (paper §6); leave the table empty.
  return dataset;
}

}  // namespace goalrec::data
