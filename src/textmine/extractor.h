#ifndef GOALREC_TEXTMINE_EXTRACTOR_H_
#define GOALREC_TEXTMINE_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/library.h"
#include "textmine/aliases.h"

// Action identification over user-generated goal stories: each document is a
// plain-text description of how its author fulfilled a goal ("I stopped
// eating at restaurants. Then I started to drink more water..."); the
// extractor segments it into steps, strips narration, and canonicalises each
// step into a short action phrase. One document becomes one goal
// implementation; a corpus becomes an implementation library whose action
// vocabulary is shared across documents (the dedup that makes associations
// emerge).

namespace goalrec::textmine {

struct HowToDocument {
  std::string goal;  // e.g. "lose weight"
  std::string text;  // free-form description of the steps taken
};

struct ExtractorOptions {
  /// Maximum content words kept per action phrase.
  size_t max_phrase_words = 4;
  /// Steps with fewer content words than this are discarded as narration.
  size_t min_phrase_words = 1;
  /// Stem the words of each phrase (textmine/normalize.h) so inflected
  /// retellings ("drinking more water" / "drink more water") dedup onto one
  /// action. Off by default: stems are not display-friendly.
  bool stem_words = false;
  /// Optional canonicalisation table applied to each extracted phrase
  /// (after stemming). Must outlive the extraction call.
  const AliasMap* aliases = nullptr;
};

/// Canonical action phrase of one step: leading narration cues ("first",
/// "then", personal pronouns, auxiliaries like "started to") are dropped and
/// the first `max_phrase_words` content words are joined with spaces.
/// Returns "" when nothing actionable remains.
std::string ExtractActionPhrase(std::string_view step,
                                const ExtractorOptions& options = {});

/// All distinct action phrases of a document, in first-occurrence order.
std::vector<std::string> ExtractActions(const HowToDocument& document,
                                        const ExtractorOptions& options = {});

/// Builds an implementation library from a corpus: one implementation per
/// document with at least one extracted action. Goal names are lowercased
/// and trimmed so retellings of the same goal share a goal id.
model::ImplementationLibrary BuildLibraryFromDocuments(
    const std::vector<HowToDocument>& documents,
    const ExtractorOptions& options = {});

}  // namespace goalrec::textmine

#endif  // GOALREC_TEXTMINE_EXTRACTOR_H_
