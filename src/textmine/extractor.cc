#include "textmine/extractor.h"

#include <array>

#include "textmine/normalize.h"
#include "textmine/tokenizer.h"
#include "util/string_utils.h"

namespace goalrec::textmine {
namespace {

// Narration cues that introduce a step without being part of the action.
bool IsNarrationCue(std::string_view word) {
  static constexpr std::array<std::string_view, 18> kCues = {
      "first",  "second", "third",   "next",    "then",   "finally",
      "later",  "also",   "after",   "before",  "now",    "today",
      "started", "start", "decided", "tried",   "began",  "managed"};
  for (std::string_view cue : kCues) {
    if (word == cue) return true;
  }
  return false;
}

}  // namespace

std::string ExtractActionPhrase(std::string_view step,
                                const ExtractorOptions& options) {
  std::vector<std::string> tokens = Tokenize(step);
  std::vector<std::string> phrase;
  for (const std::string& token : tokens) {
    if (phrase.size() >= options.max_phrase_words) break;
    if (IsStopword(token)) continue;
    // Cues only gate the *start* of the phrase; once the action has begun,
    // a word like "start" may be part of it ("start running").
    if (phrase.empty() && IsNarrationCue(token)) continue;
    phrase.push_back(token);
  }
  if (phrase.size() < options.min_phrase_words) return "";
  std::string joined = util::Join(phrase, " ");
  if (options.stem_words) joined = StemPhrase(joined);
  if (options.aliases != nullptr) return options.aliases->Resolve(joined);
  return joined;
}

std::vector<std::string> ExtractActions(const HowToDocument& document,
                                        const ExtractorOptions& options) {
  std::vector<std::string> actions;
  for (const std::string& step : SplitSteps(document.text)) {
    std::string phrase = ExtractActionPhrase(step, options);
    if (phrase.empty()) continue;
    bool seen = false;
    for (const std::string& existing : actions) {
      if (existing == phrase) {
        seen = true;
        break;
      }
    }
    if (!seen) actions.push_back(std::move(phrase));
  }
  return actions;
}

model::ImplementationLibrary BuildLibraryFromDocuments(
    const std::vector<HowToDocument>& documents,
    const ExtractorOptions& options) {
  model::LibraryBuilder builder;
  for (const HowToDocument& document : documents) {
    std::vector<std::string> actions = ExtractActions(document, options);
    if (actions.empty()) continue;
    std::string goal = util::ToLower(util::Trim(document.goal));
    if (goal.empty()) continue;
    builder.AddImplementation(goal, actions);
  }
  return std::move(builder).Build();
}

}  // namespace goalrec::textmine
