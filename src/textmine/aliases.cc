#include "textmine/aliases.h"

#include "util/csv.h"

namespace goalrec::textmine {

void AliasMap::Add(std::string from, std::string to) {
  aliases_[std::move(from)] = std::move(to);
}

const std::string& AliasMap::Resolve(const std::string& phrase) const {
  auto it = aliases_.find(phrase);
  return it == aliases_.end() ? phrase : it->second;
}

util::StatusOr<AliasMap> LoadAliasesCsv(const std::string& path) {
  util::StatusOr<std::vector<util::CsvRow>> rows = util::ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  AliasMap map;
  for (const util::CsvRow& row : *rows) {
    if (row.size() != 2) {
      return util::InvalidArgumentError(
          path + ": expected 2 fields 'variant,canonical', got " +
          std::to_string(row.size()));
    }
    if (row[0].empty() || row[1].empty()) {
      return util::InvalidArgumentError(path + ": empty alias field");
    }
    map.Add(row[0], row[1]);
  }
  return map;
}

}  // namespace goalrec::textmine
