#ifndef GOALREC_TEXTMINE_CORPUS_H_
#define GOALREC_TEXTMINE_CORPUS_H_

#include <string>
#include <vector>

#include "textmine/extractor.h"
#include "util/status.h"

// Corpus file I/O for the text-extraction pipeline. A corpus file holds many
// how-to documents in a simple line format:
//
//   GOAL: lose weight
//   I started to drink more water.
//   Then I stopped eating at restaurants.
//
//   GOAL: lose weight
//   1. go running
//   2. count calories
//
// Each `GOAL:` line starts a new document (the rest of the line is the goal
// name); subsequent lines up to the next `GOAL:` are its text. Blank lines
// are kept (they are step separators for the extractor). Lines starting with
// '#' before the first GOAL are comments.

namespace goalrec::textmine {

/// Parses a corpus file into documents. Fails on content before the first
/// GOAL: line (comments excepted) or on a GOAL: line with an empty name.
util::StatusOr<std::vector<HowToDocument>> LoadCorpus(
    const std::string& path);

/// Writes documents in the corpus format. Overwrites `path`.
util::Status SaveCorpus(const std::vector<HowToDocument>& documents,
                        const std::string& path);

}  // namespace goalrec::textmine

#endif  // GOALREC_TEXTMINE_CORPUS_H_
