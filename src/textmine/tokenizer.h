#ifndef GOALREC_TEXTMINE_TOKENIZER_H_
#define GOALREC_TEXTMINE_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

// Tokenisation for the text-based goal-implementation extractor (the module
// the paper used to turn 43Things user stories into (goal, action set) pairs;
// §3 "Goal Implementation Data sources" / §4). The NLP is deliberately
// heuristic — the paper notes extraction quality is orthogonal to the
// recommendation problem — but the pipeline is complete: raw how-to text in,
// implementation library out.

namespace goalrec::textmine {

/// Splits text into sentences/steps. Boundaries are '.', '!', '?', ';',
/// newlines, and leading enumeration markers ("1.", "2)", "-", "*"), which
/// are stripped from the returned steps. Empty steps are dropped.
std::vector<std::string> SplitSteps(std::string_view text);

/// Lowercased alphanumeric word tokens, punctuation removed. Apostrophes are
/// dropped ("don't" -> "dont").
std::vector<std::string> Tokenize(std::string_view text);

/// True for high-frequency English function words ("the", "a", "to", ...).
bool IsStopword(std::string_view word);

}  // namespace goalrec::textmine

#endif  // GOALREC_TEXTMINE_TOKENIZER_H_
