#include "textmine/normalize.h"

#include <vector>

#include "util/string_utils.h"

namespace goalrec::textmine {
namespace {

bool EndsWith(std::string_view word, std::string_view suffix) {
  return word.size() >= suffix.size() &&
         word.substr(word.size() - suffix.size()) == suffix;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view word) {
  for (char c : word) {
    if (IsVowel(c)) return true;
  }
  return false;
}

}  // namespace

std::string StemWord(std::string_view word) {
  if (word.size() <= 3) return std::string(word);

  // -ing / -ed (simplified Porter step 1b).
  for (std::string_view suffix : {std::string_view("ing"),
                                  std::string_view("ed")}) {
    if (EndsWith(word, suffix) && word.size() > suffix.size() + 2) {
      std::string_view stem = word.substr(0, word.size() - suffix.size());
      if (!HasVowel(stem)) continue;  // "sing", "bring" keep their suffix
      // Undouble a trailing consonant: "running" -> "runn" -> "run".
      if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
          !IsVowel(stem.back())) {
        stem.remove_suffix(1);
      }
      return std::string(stem);
    }
  }

  // Plurals: -ies -> -y, -es after sibilants, plain -s.
  if (EndsWith(word, "ies") && word.size() > 4) {
    return std::string(word.substr(0, word.size() - 3)) + "y";
  }
  if (EndsWith(word, "sses")) {
    return std::string(word.substr(0, word.size() - 2));
  }
  if (EndsWith(word, "shes") || EndsWith(word, "ches") ||
      EndsWith(word, "xes")) {
    return std::string(word.substr(0, word.size() - 2));
  }
  if (EndsWith(word, "s") && !EndsWith(word, "ss") && !EndsWith(word, "us")) {
    return std::string(word.substr(0, word.size() - 1));
  }
  return std::string(word);
}

std::string StemPhrase(std::string_view phrase) {
  std::vector<std::string> words = util::Split(phrase, ' ');
  for (std::string& word : words) word = StemWord(word);
  return util::Join(words, " ");
}

}  // namespace goalrec::textmine
