#ifndef GOALREC_TEXTMINE_NORMALIZE_H_
#define GOALREC_TEXTMINE_NORMALIZE_H_

#include <string>
#include <string_view>

// Light morphological normalisation for action deduplication. Different
// retellings of the same goal phrase the same step differently ("drink more
// water" / "drinking more water" / "drinks more water"); a small suffix
// stemmer (a simplified Porter step-1) folds these onto one canonical form,
// which is what lets associations emerge across documents.

namespace goalrec::textmine {

/// Stems one lowercase word: strips plural "-s"/"-es", "-ing" and "-ed"
/// suffixes with basic guards (keeps short stems intact, restores a dropped
/// final consonant heuristically: "running" -> "run"). Words of length <= 3
/// are returned unchanged.
std::string StemWord(std::string_view word);

/// Stems every word of a space-separated phrase.
std::string StemPhrase(std::string_view phrase);

}  // namespace goalrec::textmine

#endif  // GOALREC_TEXTMINE_NORMALIZE_H_
