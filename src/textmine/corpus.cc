#include "textmine/corpus.h"

#include <fstream>

#include "util/string_utils.h"

namespace goalrec::textmine {

namespace {
constexpr std::string_view kGoalPrefix = "GOAL:";
}  // namespace

util::StatusOr<std::vector<HowToDocument>> LoadCorpus(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  std::vector<HowToDocument> documents;
  std::string line;
  size_t line_number = 0;
  bool in_document = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::StartsWith(line, kGoalPrefix)) {
      std::string goal(util::Trim(line.substr(kGoalPrefix.size())));
      if (goal.empty()) {
        return util::InvalidArgumentError(
            path + ":" + std::to_string(line_number) + ": empty goal name");
      }
      documents.push_back(HowToDocument{std::move(goal), ""});
      in_document = true;
      continue;
    }
    if (!in_document) {
      if (line.empty() || line[0] == '#') continue;  // preamble comments
      return util::InvalidArgumentError(
          path + ":" + std::to_string(line_number) +
          ": content before the first GOAL: line");
    }
    documents.back().text += line;
    documents.back().text += '\n';
  }
  return documents;
}

util::Status SaveCorpus(const std::vector<HowToDocument>& documents,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  for (const HowToDocument& document : documents) {
    out << kGoalPrefix << ' ' << document.goal << '\n'
        << document.text;
    if (document.text.empty() || document.text.back() != '\n') out << '\n';
    out << '\n';
  }
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace goalrec::textmine
