#include "textmine/tokenizer.h"

#include <array>
#include <cctype>

#include "util/string_utils.h"

namespace goalrec::textmine {
namespace {

bool IsEnumerationMarker(std::string_view step, size_t* marker_len) {
  size_t i = 0;
  while (i < step.size() &&
         std::isspace(static_cast<unsigned char>(step[i]))) {
    ++i;
  }
  size_t start = i;
  if (i < step.size() && (step[i] == '-' || step[i] == '*')) {
    *marker_len = i + 1;
    return true;
  }
  while (i < step.size() && std::isdigit(static_cast<unsigned char>(step[i]))) {
    ++i;
  }
  if (i > start && i < step.size() && (step[i] == '.' || step[i] == ')')) {
    *marker_len = i + 1;
    return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> SplitSteps(std::string_view text) {
  std::vector<std::string> steps;
  std::string current;
  auto flush = [&] {
    std::string_view trimmed = util::Trim(current);
    size_t marker_len = 0;
    if (IsEnumerationMarker(trimmed, &marker_len)) {
      trimmed = util::Trim(trimmed.substr(marker_len));
    }
    // A pure number is the stranded half of an "1." marker whose dot was
    // consumed as a sentence boundary — not a step.
    bool all_digits = !trimmed.empty();
    for (char c : trimmed) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_digits = false;
        break;
      }
    }
    if (!trimmed.empty() && !all_digits) steps.emplace_back(trimmed);
    current.clear();
  };
  for (char c : text) {
    if (c == '.' || c == '!' || c == '?' || c == ';' || c == '\n') {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return steps;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (raw == '\'') {
      continue;  // "don't" -> "dont"
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool IsStopword(std::string_view word) {
  static constexpr std::array<std::string_view, 52> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "been",
      "but",  "by",   "did",  "do",   "does", "for",  "from", "had",
      "has",  "have", "i",    "if",   "in",   "into", "is",   "it",
      "its",  "just", "me",   "my",   "of",   "on",   "or",   "our",
      "so",   "some", "that", "the",  "their", "then", "there", "they",
      "this", "to",   "up",   "very", "was",  "we",   "were", "will",
      "with", "you",  "your", "yours"};
  for (std::string_view stop : kStopwords) {
    if (word == stop) return true;
  }
  return false;
}

}  // namespace goalrec::textmine
