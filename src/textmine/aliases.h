#ifndef GOALREC_TEXTMINE_ALIASES_H_
#define GOALREC_TEXTMINE_ALIASES_H_

#include <string>
#include <unordered_map>

#include "util/status.h"

// Canonicalisation aliases for extracted action phrases. Real how-to corpora
// phrase the same action many ways ("work out" / "exercise" / "hit the
// gym"); a deployment curates an alias table mapping variants onto one
// canonical phrase so associations accumulate instead of fragmenting.
// Aliases apply after phrase extraction (and after stemming, when enabled).

namespace goalrec::textmine {

class AliasMap {
 public:
  /// Registers `from` -> `to`. Later registrations overwrite earlier ones.
  /// Chains are not followed: map "a"->"b" and "b"->"c" sends "a" to "b".
  void Add(std::string from, std::string to);

  /// Returns the canonical phrase (or `phrase` itself when unmapped).
  const std::string& Resolve(const std::string& phrase) const;

  size_t size() const { return aliases_.size(); }
  bool empty() const { return aliases_.empty(); }

 private:
  std::unordered_map<std::string, std::string> aliases_;
};

/// Loads an alias table from a CSV of rows `variant,canonical`.
util::StatusOr<AliasMap> LoadAliasesCsv(const std::string& path);

}  // namespace goalrec::textmine

#endif  // GOALREC_TEXTMINE_ALIASES_H_
