#include "util/deadline.h"

namespace goalrec::util {

Deadline Deadline::AfterMillis(int64_t ms) {
  return After(std::chrono::milliseconds(ms));
}

Deadline Deadline::After(std::chrono::nanoseconds duration) {
  Deadline deadline;
  deadline.when_ = std::chrono::steady_clock::now() + duration;
  return deadline;
}

bool Deadline::Expired() const {
  if (!when_.has_value()) return false;
  return std::chrono::steady_clock::now() >= *when_;
}

std::chrono::nanoseconds Deadline::Remaining() const {
  std::chrono::nanoseconds left = *when_ - std::chrono::steady_clock::now();
  return left.count() < 0 ? std::chrono::nanoseconds::zero() : left;
}

}  // namespace goalrec::util
