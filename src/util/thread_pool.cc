#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace goalrec::util {
namespace {

// Pool-wide instruments in the default registry. Several pools may coexist;
// they aggregate, which is what a fleet dashboard wants. Registered at load
// time so a scrape shows the gauge (at 0) before any task runs.
struct PoolMetrics {
  obs::Counter* submitted;
  obs::Counter* failed;
  obs::Gauge* queue_depth;
  obs::Histogram* task_latency_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricRegistry& registry = obs::MetricRegistry::Default();
      PoolMetrics m;
      m.submitted = registry.GetCounter(
          "goalrec_threadpool_tasks_total", {},
          "Tasks submitted to any ThreadPool");
      m.failed = registry.GetCounter(
          "goalrec_threadpool_task_failures_total", {},
          "ThreadPool tasks that terminated with an exception");
      m.queue_depth = registry.GetGauge(
          "goalrec_threadpool_queue_depth", {},
          "Tasks submitted but not yet picked up by a worker");
      m.task_latency_us = registry.GetHistogram(
          "goalrec_threadpool_task_latency_us",
          obs::DefaultLatencyBucketsUs(), {},
          "Per-task execution time in microseconds");
      return m;
    }();
    return metrics;
  }
};

const PoolMetrics& g_pool_metrics = PoolMetrics::Get();

std::string DescribeException(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "non-std::exception thrown";
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Carry the submitter's active trace into the worker so spans opened by
  // the task land in the same tree instead of silently detaching. The
  // submitter must keep the trace alive until the task completes — true for
  // the eval/reload callers, which Wait() before reading the trace.
  if (obs::Trace* trace = obs::CurrentTrace(); trace != nullptr) {
    task = [trace, inner = std::move(task)] {
      obs::ScopedTraceActivation activation(trace);
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GOALREC_CHECK(!shutdown_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  g_pool_metrics.submitted->Increment();
  g_pool_metrics.queue_depth->Add(1);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

Status ThreadPool::status() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (first_failure_ == nullptr) return Status::Ok();
  return InternalError(std::to_string(failed_tasks_) +
                       " task(s) threw; first: " +
                       DescribeException(first_failure_));
}

size_t ThreadPool::failed_tasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failed_tasks_;
}

void ThreadPool::RethrowIfFailed() {
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    failure = first_failure_;
    first_failure_ = nullptr;
    failed_tasks_ = 0;
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    g_pool_metrics.queue_depth->Sub(1);
    std::exception_ptr failure;
    auto task_start = std::chrono::steady_clock::now();
    try {
      task();
    } catch (...) {
      failure = std::current_exception();
    }
    g_pool_metrics.task_latency_us->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - task_start)
            .count());
    if (failure != nullptr) g_pool_metrics.failed->Increment();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (failure != nullptr) {
        ++failed_tasks_;
        if (first_failure_ == nullptr) first_failure_ = failure;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t num_threads) {
  if (n == 0) return;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  size_t workers = num_threads == 0 ? hw : num_threads;
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::mutex failure_mutex;
  std::exception_ptr first_failure;
  // Workers re-activate the caller's trace; the caller outlives them (it
  // joins below), so the raw pointer is safe.
  obs::Trace* trace = obs::CurrentTrace();
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &body, &failure_mutex, &first_failure,
                          trace] {
      obs::ScopedTraceActivation activation(trace);
      for (size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(failure_mutex);
          if (first_failure == nullptr) first_failure = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_failure != nullptr) std::rethrow_exception(first_failure);
}

}  // namespace goalrec::util
