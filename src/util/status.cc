#include "util/status.h"

namespace goalrec::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace goalrec::util
