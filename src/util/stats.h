#ifndef GOALREC_UTIL_STATS_H_
#define GOALREC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

// Descriptive statistics used by the evaluation harness: Pearson correlation
// (Table 3), min/avg/max summaries (Tables 4 and 5) and bucketed frequency
// histograms (Figures 5 and 6).

namespace goalrec::util {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance; 0 for inputs with fewer than two elements.
double Variance(const std::vector<double>& values);

/// Pearson correlation coefficient of two equal-length series in [-1, 1].
/// Returns 0 when either series is constant (correlation undefined).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Min/avg/max of a series, the aggregate shape reported throughout §6.1.
struct Summary {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Computes the summary; all fields zero for an empty input.
Summary Summarize(const std::vector<double>& values);

/// Fixed-width histogram over [0, 1] used for the frequency figures. Values
/// outside the range are clamped into the first/last bucket.
class Histogram {
 public:
  /// Requires num_buckets > 0.
  explicit Histogram(size_t num_buckets);

  void Add(double value);

  size_t num_buckets() const { return counts_.size(); }
  size_t bucket_count(size_t i) const { return counts_[i]; }
  size_t total() const { return total_; }

  /// Fraction of observations in bucket i; 0 if the histogram is empty.
  double Fraction(size_t i) const;

  /// Fraction of observations with value < threshold (approximated at bucket
  /// resolution: buckets entirely below the threshold are counted).
  double FractionBelow(double threshold) const;

  /// One line per bucket: "[lo, hi) count fraction".
  std::string ToString() const;

 private:
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_STATS_H_
