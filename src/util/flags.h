#ifndef GOALREC_UTIL_FLAGS_H_
#define GOALREC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

// Minimal command-line parsing for the repository's tools: flags are
// `--name=value` or bare `--name` (boolean true); everything else is a
// positional argument. No registration step — callers query by name with a
// default.

namespace goalrec::util {

class FlagParser {
 public:
  /// Parses argv[1..argc). A literal "--" ends flag parsing; later
  /// arguments are positional even if they start with "--".
  FlagParser(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True iff --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `default_value` when absent. A bare
  /// `--name` yields "".
  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const;

  /// Integer value of --name; `default_value` when absent;
  /// kInvalidArgument when present but unparseable.
  StatusOr<int64_t> GetInt(const std::string& name,
                           int64_t default_value) const;

  /// Double value of --name; `default_value` when absent; kInvalidArgument
  /// when present but unparseable.
  StatusOr<double> GetDouble(const std::string& name,
                             double default_value) const;

  /// Boolean: absent -> default; bare `--name` or "true"/"1" -> true;
  /// "false"/"0" -> false; anything else -> kInvalidArgument.
  StatusOr<bool> GetBool(const std::string& name, bool default_value) const;

  /// Flags seen that are not in `known` — for "unknown flag" diagnostics.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_FLAGS_H_
