#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

#include "util/string_utils.h"

namespace goalrec::util {

FlagParser::FlagParser(int argc, const char* const* argv) {
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_ended || !StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_ended = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags_[body] = "";
    } else {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  return value;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
  return value;
}

StatusOr<bool> FlagParser::GetBool(const std::string& name,
                                   bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& value = it->second;
  if (value.empty() || value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return InvalidArgumentError("--" + name + " expects a boolean, got '" +
                              value + "'");
}

std::vector<std::string> FlagParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace goalrec::util
