#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace goalrec::util {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old_state = state_;
  state_ = old_state * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((old_state >> 18u) ^ old_state) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old_state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint32_t Rng::UniformUint32(uint32_t bound) {
  GOALREC_CHECK_GT(bound, 0u);
  // Lemire-style rejection sampling to remove modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GOALREC_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  uint64_t threshold = (0ULL - range) % range;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return lo + static_cast<int64_t>(r % range);
  }
}

double Rng::UniformDouble() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  GOALREC_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index array; O(n) memory but simple and
  // exact. Callers sampling tiny k from huge n should use rejection instead;
  // within this project n is at most a few million.
  std::vector<uint32_t> indices(n);
  for (uint32_t i = 0; i < n; ++i) indices[i] = i;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t j = i + UniformUint32(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

ZipfSampler::ZipfSampler(uint32_t n, double exponent) {
  GOALREC_CHECK_GT(n, 0u);
  GOALREC_CHECK_GE(exponent, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, exponent);
    cdf_[r] = total;
  }
  for (double& v : cdf_) v /= total;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<uint32_t>(cdf_.size() - 1);
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace goalrec::util
