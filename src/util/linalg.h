#ifndef GOALREC_UTIL_LINALG_H_
#define GOALREC_UTIL_LINALG_H_

#include <cstddef>
#include <vector>

#include "util/dense_vector.h"
#include "util/status.h"

// Small dense linear algebra for the ALS-WR matrix-factorisation baseline:
// each ALS half-step solves one ridge-regularised normal-equation system
// (A + λnI)x = b per user/item, with A of dimension = latent factor count
// (typically 10–50), so a simple Cholesky solver is the right tool.

namespace goalrec::util {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  /// Creates rows x cols, zero-initialised.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Sets every entry to v.
  void Fill(double v);

  /// this += other (same shape required).
  void AddInPlace(const DenseMatrix& other);

  /// Adds value to every diagonal entry (square matrices).
  void AddToDiagonal(double value);

  /// Rank-1 update: this += scale * v vᵀ. Requires square with dim = |v|.
  void AddOuterProduct(const DenseVector& v, double scale);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// decomposition. Returns kFailedPrecondition if A is not SPD
/// (non-positive pivot encountered).
StatusOr<DenseVector> CholeskySolve(const DenseMatrix& a,
                                    const DenseVector& b);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_LINALG_H_
