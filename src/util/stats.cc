#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace goalrec::util {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  GOALREC_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.avg = sum / static_cast<double>(values.size());
  return s;
}

Histogram::Histogram(size_t num_buckets) : counts_(num_buckets, 0) {
  GOALREC_CHECK_GT(num_buckets, 0u);
}

void Histogram::Add(double value) {
  double clamped = std::clamp(value, 0.0, 1.0);
  size_t bucket = static_cast<size_t>(clamped * static_cast<double>(
                                                    counts_.size()));
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
  ++total_;
}

double Histogram::Fraction(size_t i) const {
  GOALREC_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::FractionBelow(double threshold) const {
  if (total_ == 0) return 0.0;
  size_t limit = static_cast<size_t>(std::clamp(threshold, 0.0, 1.0) *
                                     static_cast<double>(counts_.size()));
  size_t below = 0;
  for (size_t i = 0; i < limit && i < counts_.size(); ++i) below += counts_[i];
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  double width = 1.0 / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    double lo = width * static_cast<double>(i);
    double hi = lo + width;
    out << "[" << lo << ", " << hi << ") " << counts_[i] << " " << Fraction(i)
        << "\n";
  }
  return out.str();
}

}  // namespace goalrec::util
