#include "util/crc32c.h"

#include <array>

namespace goalrec::util {
namespace {

// Four 256-entry tables for slice-by-4, generated once at first use from the
// reflected Castagnoli polynomial. Table generation is deterministic, so the
// one-time static initialisation is thread-safe under C++11 semantics.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 4; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tables = Tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace goalrec::util
