#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace goalrec::util {

StatusOr<CsvRow> ParseCsvLine(const std::string& line, char delimiter) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return InvalidArgumentError("quote inside unquoted field: " + line);
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const CsvRow& row, char delimiter) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += delimiter;
    const std::string& field = row[i];
    bool needs_quotes =
        field.find(delimiter) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos;
    if (needs_quotes) {
      out += '"';
      for (char c : field) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += field;
    }
  }
  return out;
}

StatusOr<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                          char delimiter) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    StatusOr<CsvRow> row = ParseCsvLine(line, delimiter);
    if (!row.ok()) return row.status();
    rows.push_back(std::move(row).value());
  }
  return rows;
}

StatusOr<std::vector<NumberedCsvRow>> ReadCsvFileNumbered(
    const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  std::vector<NumberedCsvRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    StatusOr<CsvRow> row = ParseCsvLine(line, delimiter);
    if (!row.ok()) {
      return Status(row.status().code(), path + ":" +
                                            std::to_string(line_number) +
                                            ": " + row.status().message());
    }
    rows.push_back(NumberedCsvRow{line_number, std::move(row).value()});
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open " + path + " for writing");
  for (const CsvRow& row : rows) {
    out << FormatCsvLine(row, delimiter) << '\n';
  }
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace goalrec::util
