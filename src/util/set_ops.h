#ifndef GOALREC_UTIL_SET_OPS_H_
#define GOALREC_UTIL_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Operations on sets represented as strictly increasing sorted vectors of
// 32-bit ids. This is the representation the goal model uses for
// implementation activities and user histories: it is cache-friendly and
// makes the intersection/difference costs discussed in §5.4 of the paper
// explicit and measurable (see bench/micro_setops).

namespace goalrec::util {

using IdVector = std::vector<uint32_t>;

/// True iff `ids` is strictly increasing (a valid set representation).
bool IsSortedSet(const IdVector& ids);

/// Sorts and deduplicates `ids` in place, producing a valid set.
void Normalize(IdVector& ids);

/// |a ∩ b| without materialising the intersection.
size_t IntersectionSize(const IdVector& a, const IdVector& b);

/// |a − b| (asymmetric difference) without materialising it.
size_t DifferenceSize(const IdVector& a, const IdVector& b);

/// a ∩ b as a sorted set.
IdVector Intersect(const IdVector& a, const IdVector& b);

/// a − b as a sorted set.
IdVector Difference(const IdVector& a, const IdVector& b);

/// a ∪ b as a sorted set.
IdVector Union(const IdVector& a, const IdVector& b);

/// True iff a ⊆ b.
bool IsSubset(const IdVector& a, const IdVector& b);

/// True iff `id` ∈ `set` (binary search).
bool Contains(const IdVector& set, uint32_t id);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_SET_OPS_H_
