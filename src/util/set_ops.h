#ifndef GOALREC_UTIL_SET_OPS_H_
#define GOALREC_UTIL_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

// Operations on sets represented as strictly increasing sorted vectors of
// 32-bit ids. This is the representation the goal model uses for
// implementation activities and user histories: it is cache-friendly and
// makes the intersection/difference costs discussed in §5.4 of the paper
// explicit and measurable (see bench/micro_setops).
//
// Every read-only operation takes IdSpan (std::span<const uint32_t>), so a
// caller can pass either an owning IdVector or a span into a CSR postings
// arena (model/library.h) without copying. The *Into variants write into a
// caller-owned vector (clear + append), so a pooled query workspace can run
// them with zero steady-state allocations.

namespace goalrec::util {

using IdVector = std::vector<uint32_t>;

/// Read-only view of a sorted id set: an IdVector converts implicitly, and
/// so does a span into a postings arena.
using IdSpan = std::span<const uint32_t>;

/// True iff `ids` is strictly increasing (a valid set representation).
bool IsSortedSet(IdSpan ids);

/// Sorts and deduplicates `ids` in place, producing a valid set.
void Normalize(IdVector& ids);

/// |a ∩ b| without materialising the intersection. Adaptive: lopsided
/// inputs (one side ≥ ~16× longer) switch from the linear two-pointer merge
/// to a galloping probe of the small side into the large one, turning the
/// cost from O(|a| + |b|) into O(|small| · log |large|).
size_t IntersectionSize(IdSpan a, IdSpan b);

/// Galloping (exponential-then-binary) lower bound: the smallest index
/// i ≥ `start` with span[i] >= id, or span.size(). The doubling probe makes
/// a sequence of searches with ascending keys cost O(log gap) each instead
/// of O(log n), which is what makes galloping intersection adaptive.
size_t GallopLowerBound(IdSpan span, size_t start, uint32_t id);

/// |a − b| (asymmetric difference) without materialising it.
size_t DifferenceSize(IdSpan a, IdSpan b);

/// a ∩ b as a sorted set.
IdVector Intersect(IdSpan a, IdSpan b);

/// a − b as a sorted set.
IdVector Difference(IdSpan a, IdSpan b);

/// a ∪ b as a sorted set.
IdVector Union(IdSpan a, IdSpan b);

/// a ∩ b into `out` (clear + append; `out` must not alias a or b).
void IntersectInto(IdSpan a, IdSpan b, IdVector& out);

/// a − b into `out` (clear + append; `out` must not alias a or b).
void DifferenceInto(IdSpan a, IdSpan b, IdVector& out);

/// a ∪ b into `out` (clear + append; `out` must not alias a or b).
void UnionInto(IdSpan a, IdSpan b, IdVector& out);

/// True iff a ⊆ b.
bool IsSubset(IdSpan a, IdSpan b);

/// True iff `id` ∈ `set` (binary search).
bool Contains(IdSpan set, uint32_t id);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_SET_OPS_H_
