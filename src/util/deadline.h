#ifndef GOALREC_UTIL_DEADLINE_H_
#define GOALREC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

// Cooperative time budgets and cancellation for serving. A Deadline is an
// absolute point on the steady clock; a CancellationSource/CancellationToken
// pair lets a caller abort a query from another thread; a StopToken combines
// both into the single cheap predicate that the strategy scoring loops poll
// (see core::QueryContext::stop). Nothing here is preemptive: work stops
// only where code polls, which keeps the strategies allocation- and
// lock-free on the hot path.

namespace goalrec::util {

/// An absolute time budget. Default-constructed deadlines are infinite.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive values produce an
  /// already-expired deadline (useful for tests and "fail fast" modes).
  static Deadline AfterMillis(int64_t ms);

  /// Expires `duration` from now.
  static Deadline After(std::chrono::nanoseconds duration);

  bool is_infinite() const { return !when_.has_value(); }

  /// True once the deadline has passed. Infinite deadlines never expire.
  bool Expired() const;

  /// Time left before expiry; zero when expired. Requires !is_infinite().
  std::chrono::nanoseconds Remaining() const;

 private:
  std::optional<std::chrono::steady_clock::time_point> when_;
};

/// Read side of a cancellation flag. Copyable and cheap; default-constructed
/// tokens are never cancelled. Safe to poll from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool Cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side of a cancellation flag. The source outliving its tokens is
/// not required: tokens share ownership of the flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Signals every token handed out. Idempotent; thread-safe.
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }

  bool Cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The predicate polled inside scoring loops: "should this query stop now?"
/// Combines a deadline and a cancellation token, sampling the steady clock
/// only every `stride` polls (a clock read per candidate would dominate the
/// cheap strategies). Once a stop is observed it latches: every later poll
/// returns true immediately.
///
/// A StopToken is a per-query object; poll it from one thread at a time.
/// Default-constructed tokens never stop, so `const StopToken*` parameters
/// treat nullptr and an infinite token identically.
class StopToken {
 public:
  StopToken() = default;
  StopToken(Deadline deadline, CancellationToken cancel, uint32_t stride = 64)
      : deadline_(deadline), cancel_(cancel),
        stride_(stride == 0 ? 1 : stride) {}

  /// Strided poll for hot loops.
  bool ShouldStop() const {
    if (stopped_) return true;
    if (++polls_ % stride_ != 0) return false;
    return StopRequested();
  }

  /// Unstrided check (always consults the clock). Used by the serving
  /// engine between rungs and by callers inspecting a returned list's
  /// integrity: a list produced while StopRequested() is a best-effort
  /// partial answer.
  bool StopRequested() const {
    if (stopped_) return true;
    if (cancel_.Cancelled() || deadline_.Expired()) stopped_ = true;
    return stopped_;
  }

  bool Cancelled() const { return cancel_.Cancelled(); }
  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  CancellationToken cancel_;
  uint32_t stride_ = 64;
  mutable uint32_t polls_ = 0;
  mutable bool stopped_ = false;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_DEADLINE_H_
