#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace goalrec::util {
namespace {

struct RetryMetrics {
  obs::Counter* attempts;
  obs::Counter* calls;
  obs::Counter* recovered;
  obs::Counter* exhausted;
  obs::Counter* sleeps;

  static const RetryMetrics& Get() {
    static const RetryMetrics metrics = [] {
      obs::MetricRegistry& registry = obs::MetricRegistry::Default();
      RetryMetrics m;
      m.attempts = registry.GetCounter(
          "goalrec_retry_attempts_total", {},
          "Individual attempts made by RetryCall (first tries included)");
      m.calls = registry.GetCounter("goalrec_retry_calls_total", {},
                                    "RetryCall invocations");
      m.recovered = registry.GetCounter(
          "goalrec_retry_recovered_total", {},
          "RetryCall invocations that succeeded after at least one retry");
      m.exhausted = registry.GetCounter(
          "goalrec_retry_exhausted_total", {},
          "RetryCall invocations that gave up on a retriable error");
      m.sleeps = registry.GetCounter(
          "goalrec_retry_backoff_sleeps_total", {},
          "Backoff sleeps taken between attempts");
      return m;
    }();
    return metrics;
  }
};

const RetryMetrics& g_retry_metrics = RetryMetrics::Get();

}  // namespace

bool IsRetriableStatus(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

BackoffPolicy::BackoffPolicy(int64_t initial_ms, int64_t cap_ms, uint64_t seed)
    : initial_ms_(std::max<int64_t>(1, initial_ms)),
      cap_ms_(std::max(cap_ms, initial_ms_)),
      previous_ms_(initial_ms_),
      // splitmix64 step so seed 0 still yields a usable stream.
      rng_state_(seed + 0x9e3779b97f4a7c15ULL) {}

std::chrono::milliseconds BackoffPolicy::Next() {
  // splitmix64: tiny, portable, and plenty for jitter.
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Decorrelated jitter: uniform in [initial, previous * 3], capped.
  int64_t upper = std::min(cap_ms_, previous_ms_ * 3);
  int64_t span = std::max<int64_t>(1, upper - initial_ms_ + 1);
  previous_ms_ = initial_ms_ + static_cast<int64_t>(z % static_cast<uint64_t>(span));
  return std::chrono::milliseconds(previous_ms_);
}

namespace internal {

void SleepOrInvoke(const RetryOptions& options, std::chrono::milliseconds d) {
  g_retry_metrics.sleeps->Increment();
  if (options.sleeper) {
    options.sleeper(d);
  } else {
    std::this_thread::sleep_for(d);
  }
}

void RecordRetryAttempt() { g_retry_metrics.attempts->Increment(); }

void RecordRetryOutcome(int attempts, bool ok, bool exhausted) {
  g_retry_metrics.calls->Increment();
  if (ok && attempts > 1) g_retry_metrics.recovered->Increment();
  if (!ok && exhausted) g_retry_metrics.exhausted->Increment();
}

}  // namespace internal
}  // namespace goalrec::util
