#ifndef GOALREC_UTIL_CSV_H_
#define GOALREC_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

// Minimal CSV reader/writer used by the data loaders and by the experiment
// binaries when dumping result tables. Supports RFC-4180-style quoting
// (fields containing the delimiter, quotes or newlines are double-quoted).

namespace goalrec::util {

using CsvRow = std::vector<std::string>;

/// Parses one CSV line into fields (handles quoted fields with embedded
/// delimiters and escaped quotes "" -> ").
StatusOr<CsvRow> ParseCsvLine(const std::string& line, char delimiter = ',');

/// Renders fields as one CSV line (no trailing newline), quoting as needed.
std::string FormatCsvLine(const CsvRow& row, char delimiter = ',');

/// Reads an entire CSV file. Empty lines are skipped.
StatusOr<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                          char delimiter = ',');

/// A parsed row together with its 1-based line number in the source file,
/// for loaders that report per-record provenance ("file:line: ...").
struct NumberedCsvRow {
  size_t line = 0;
  CsvRow fields;
};

/// Like ReadCsvFile but keeps each row's line number. Parse errors also
/// carry the line number.
StatusOr<std::vector<NumberedCsvRow>> ReadCsvFileNumbered(
    const std::string& path, char delimiter = ',');

/// Writes rows to `path`, overwriting.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delimiter = ',');

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_CSV_H_
