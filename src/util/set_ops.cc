#include "util/set_ops.h"

#include <algorithm>

namespace goalrec::util {

bool IsSortedSet(IdSpan ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

void Normalize(IdVector& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

namespace {

// One side gallops through the other when the length ratio crosses this;
// below it the linear merge's branch locality wins.
constexpr size_t kGallopRatio = 16;

size_t GallopIntersectionSize(IdSpan small, IdSpan large) {
  size_t count = 0;
  size_t cursor = 0;
  for (uint32_t id : small) {
    cursor = GallopLowerBound(large, cursor, id);
    if (cursor == large.size()) break;
    if (large[cursor] == id) {
      ++count;
      ++cursor;
    }
  }
  return count;
}

}  // namespace

size_t GallopLowerBound(IdSpan span, size_t start, uint32_t id) {
  // Exponential probe from `start` to bracket id, then binary search the
  // bracket. Keys arrive ascending in the intersection loop, so the bracket
  // is usually a short hop from the previous match.
  size_t lo = start;
  size_t step = 1;
  while (lo + step < span.size() && span[lo + step] < id) {
    lo += step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, span.size());
  if (lo < span.size() && span[lo] < id) ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (span[mid] < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t IntersectionSize(IdSpan a, IdSpan b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kGallopRatio) {
    return GallopIntersectionSize(a, b);
  }
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t DifferenceSize(IdSpan a, IdSpan b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++count;
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return count + (a.size() - i);
}

IdVector Intersect(IdSpan a, IdSpan b) {
  IdVector out;
  IntersectInto(a, b, out);
  return out;
}

IdVector Difference(IdSpan a, IdSpan b) {
  IdVector out;
  DifferenceInto(a, b, out);
  return out;
}

IdVector Union(IdSpan a, IdSpan b) {
  IdVector out;
  UnionInto(a, b, out);
  return out;
}

void IntersectInto(IdSpan a, IdSpan b, IdVector& out) {
  out.clear();
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
}

void DifferenceInto(IdSpan a, IdSpan b, IdVector& out) {
  out.clear();
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
}

void UnionInto(IdSpan a, IdSpan b, IdVector& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
}

bool IsSubset(IdSpan a, IdSpan b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Contains(IdSpan set, uint32_t id) {
  return std::binary_search(set.begin(), set.end(), id);
}

}  // namespace goalrec::util
