#include "util/set_ops.h"

#include <algorithm>

namespace goalrec::util {

bool IsSortedSet(const IdVector& ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

void Normalize(IdVector& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

size_t IntersectionSize(const IdVector& a, const IdVector& b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t DifferenceSize(const IdVector& a, const IdVector& b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++count;
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return count + (a.size() - i);
}

IdVector Intersect(const IdVector& a, const IdVector& b) {
  IdVector out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

IdVector Difference(const IdVector& a, const IdVector& b) {
  IdVector out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

IdVector Union(const IdVector& a, const IdVector& b) {
  IdVector out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool IsSubset(const IdVector& a, const IdVector& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Contains(const IdVector& set, uint32_t id) {
  return std::binary_search(set.begin(), set.end(), id);
}

}  // namespace goalrec::util
