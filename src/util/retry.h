#ifndef GOALREC_UTIL_RETRY_H_
#define GOALREC_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/deadline.h"
#include "util/status.h"

// Status-aware retry with exponential backoff and decorrelated jitter
// (Brooker, "Exponential Backoff And Jitter"): each delay is drawn uniformly
// from [base, 3 * previous], capped. Decorrelated jitter avoids the
// synchronized retry storms that plain exponential backoff produces when many
// queries hit the same transient fault together. Used by model/library_io
// and data/loaders so transient I/O failures degrade to latency instead of
// errors; the jitter stream is a seeded util::Rng so retry schedules are
// reproducible in tests.

namespace goalrec::util {

struct RetryOptions {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 3;
  /// Lower bound of every backoff draw.
  int64_t initial_backoff_ms = 10;
  /// Upper cap on any single backoff.
  int64_t max_backoff_ms = 2000;
  /// Seed for the jitter stream; equal seeds give equal schedules.
  uint64_t jitter_seed = 1;
  /// Test seam: invoked instead of actually sleeping when set.
  std::function<void(std::chrono::milliseconds)> sleeper;
  /// Which errors are worth retrying; default: kIoError and kUnavailable.
  std::function<bool(const Status&)> retriable;
  /// Overall wall-time budget, typically the deadline of the query this
  /// retry sequence serves. No backoff sleep is started that the remaining
  /// budget cannot cover, and no attempt starts past expiry — a retry loop
  /// must never outlive its caller's deadline. Default: infinite.
  Deadline deadline;
};

/// Default retry predicate: transient I/O and availability failures.
bool IsRetriableStatus(const Status& status);

/// Stateful decorrelated-jitter schedule. Next() draws the following delay.
class BackoffPolicy {
 public:
  BackoffPolicy(int64_t initial_ms, int64_t cap_ms, uint64_t seed);

  std::chrono::milliseconds Next();

 private:
  int64_t initial_ms_;
  int64_t cap_ms_;
  int64_t previous_ms_;
  uint64_t rng_state_;
};

namespace internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const StatusOr<T>& status_or) {
  return status_or.status();
}
void SleepOrInvoke(const RetryOptions& options, std::chrono::milliseconds d);
// Metrics hooks (defined in retry.cc, reporting into
// obs::MetricRegistry::Default()): one attempt per fn() invocation; an
// outcome per RetryCall, distinguishing calls that recovered after >= 1
// retry from calls that exhausted max_attempts on a retriable error.
void RecordRetryAttempt();
void RecordRetryOutcome(int attempts, bool ok, bool exhausted);
}  // namespace internal

/// Invokes `fn` (returning Status or StatusOr<T>) up to
/// `options.max_attempts` times, sleeping a jittered backoff between
/// attempts. Non-retriable errors and the final attempt's result are
/// returned as-is. `attempts_out`, when given, receives the attempt count.
template <typename Fn>
auto RetryCall(const RetryOptions& options, Fn&& fn, int* attempts_out = nullptr)
    -> decltype(fn()) {
  const int max_attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  BackoffPolicy backoff(options.initial_backoff_ms, options.max_backoff_ms,
                        options.jitter_seed);
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    internal::RecordRetryAttempt();
    if (attempts_out != nullptr) *attempts_out = attempt;
    const Status& status = internal::StatusOf(result);
    if (status.ok()) {
      internal::RecordRetryOutcome(attempt, /*ok=*/true, /*exhausted=*/false);
      return result;
    }
    bool retriable = options.retriable ? options.retriable(status)
                                       : IsRetriableStatus(status);
    if (attempt >= max_attempts || !retriable) {
      internal::RecordRetryOutcome(attempt, /*ok=*/false,
                                   /*exhausted=*/retriable);
      return result;
    }
    std::chrono::milliseconds delay = backoff.Next();
    if (!options.deadline.is_infinite() &&
        (options.deadline.Expired() ||
         delay > std::chrono::duration_cast<std::chrono::milliseconds>(
                     options.deadline.Remaining()))) {
      // The budget cannot cover another backoff + attempt: give up with
      // the last error instead of sleeping past the caller's deadline.
      internal::RecordRetryOutcome(attempt, /*ok=*/false, /*exhausted=*/true);
      return result;
    }
    internal::SleepOrInvoke(options, delay);
  }
}

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_RETRY_H_
