#ifndef GOALREC_UTIL_CRC32C_H_
#define GOALREC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

// CRC32C (Castagnoli polynomial 0x1EDC6A41, reflected 0x82F63B78) — the
// checksum used to frame on-disk snapshots (model/snapshot_io.h). Chosen over
// plain CRC32 for its better burst-error detection and because it is the de
// facto standard for storage framing (iSCSI, ext4, LevelDB tables). This is a
// portable table-driven implementation (slice-by-4): snapshot load/store is
// dominated by I/O and library building, not checksumming, so hardware CRC
// instructions are not worth the platform #ifdefs here.

namespace goalrec::util {

/// Extends a running CRC32C with `n` more bytes. Start from 0.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// CRC32C of a whole buffer.
inline uint32_t Crc32c(std::string_view bytes) {
  return ExtendCrc32c(0, bytes.data(), bytes.size());
}

/// Masked form for storage: storing the CRC of a buffer that itself contains
/// CRCs makes accidental collisions likelier, so on-disk frames store
/// MaskCrc32c(crc) (the LevelDB rotation+offset construction).
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of MaskCrc32c.
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_CRC32C_H_
