#include "util/linalg.h"

#include <cmath>

#include "util/logging.h"

namespace goalrec::util {

void DenseMatrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void DenseMatrix::AddInPlace(const DenseMatrix& other) {
  GOALREC_CHECK_EQ(rows_, other.rows_);
  GOALREC_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::AddToDiagonal(double value) {
  GOALREC_CHECK_EQ(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) At(i, i) += value;
}

void DenseMatrix::AddOuterProduct(const DenseVector& v, double scale) {
  GOALREC_CHECK_EQ(rows_, cols_);
  GOALREC_CHECK_EQ(rows_, v.size());
  for (size_t i = 0; i < rows_; ++i) {
    double vi = v[i] * scale;
    double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) row[j] += vi * v[j];
  }
}

StatusOr<DenseVector> CholeskySolve(const DenseMatrix& a,
                                    const DenseVector& b) {
  GOALREC_CHECK_EQ(a.rows(), a.cols());
  GOALREC_CHECK_EQ(a.rows(), b.size());
  const size_t n = a.rows();
  // Lower-triangular factor L with A = L Lᵀ.
  DenseMatrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return FailedPreconditionError(
              "matrix is not positive definite (pivot <= 0)");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward substitution: L y = b.
  DenseVector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Back substitution: Lᵀ x = y.
  DenseVector x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[k];
    x[i] = sum / l.At(i, i);
  }
  return x;
}

}  // namespace goalrec::util
