#ifndef GOALREC_UTIL_RANDOM_H_
#define GOALREC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

// Deterministic, seedable pseudo-random generation. All synthetic data in the
// repository is produced through Rng so experiments are reproducible bit-for-
// bit across runs and platforms (std::mt19937 distributions are not portable).

namespace goalrec::util {

/// PCG32 generator (O'Neill 2014): small state, good statistical quality,
/// fully portable output for a given seed.
class Rng {
 public:
  /// Seeds the generator. Distinct (seed, stream) pairs give independent
  /// sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Uniform 32-bit value.
  uint32_t NextUint32();

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased.
  uint32_t UniformUint32(uint32_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformUint32(static_cast<uint32_t>(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed sampler over ranks {0, ..., n-1}: rank r is drawn with
/// probability proportional to 1/(r+1)^exponent. Used to give synthetic
/// catalogues the skewed popularity that real purchase data exhibits.
class ZipfSampler {
 public:
  /// Precomputes the CDF. Requires n > 0 and exponent >= 0.
  ZipfSampler(uint32_t n, double exponent);

  /// Draws one rank.
  uint32_t Sample(Rng& rng) const;

  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_RANDOM_H_
