#ifndef GOALREC_UTIL_STATUS_H_
#define GOALREC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

// Error handling for fallible library operations (file I/O, parsing,
// user-supplied configuration). The library does not use exceptions;
// functions that can fail return Status or StatusOr<T>.

namespace goalrec::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kUnavailable,
  kCancelled,
  kResourceExhausted,
};

/// Returns a short human-readable name for `code` ("OK", "INVALID_ARGUMENT"...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status UnavailableError(std::string message);
Status CancelledError(std::string message);
Status ResourceExhaustedError(std::string message);

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error, so functions can
  /// `return value;` or `return SomeError(...);` directly.
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GOALREC_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessing the value of an error StatusOr aborts.
  const T& value() const& {
    GOALREC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    GOALREC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GOALREC_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_STATUS_H_
