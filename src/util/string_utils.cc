#include "util/string_utils.h"

#include <cctype>

namespace goalrec::util {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

}  // namespace goalrec::util
