#ifndef GOALREC_UTIL_TIMER_H_
#define GOALREC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace goalrec::util {

/// Wall-clock stopwatch used by the scaling experiments (Figure 7) and the
/// micro-benchmarks' self-reported timings.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_TIMER_H_
