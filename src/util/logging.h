#ifndef GOALREC_UTIL_LOGGING_H_
#define GOALREC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Minimal CHECK/LOG facility in the spirit of glog, sufficient for a library
// that does not use exceptions. CHECK failures print the failing condition,
// the source location and an optional streamed message, then abort.

namespace goalrec::util {

// Accumulates a streamed message and aborts the process on destruction.
// Used only through the GOALREC_CHECK* macros below.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace goalrec::util

// Aborts with a diagnostic when `condition` is false. Additional context can
// be streamed: GOALREC_CHECK(x > 0) << "x=" << x;
#define GOALREC_CHECK(condition)                                       \
  if (condition) {                                                     \
  } else                                                               \
    ::goalrec::util::CheckFailure(#condition, __FILE__, __LINE__)

#define GOALREC_CHECK_EQ(a, b) GOALREC_CHECK((a) == (b))
#define GOALREC_CHECK_NE(a, b) GOALREC_CHECK((a) != (b))
#define GOALREC_CHECK_LT(a, b) GOALREC_CHECK((a) < (b))
#define GOALREC_CHECK_LE(a, b) GOALREC_CHECK((a) <= (b))
#define GOALREC_CHECK_GT(a, b) GOALREC_CHECK((a) > (b))
#define GOALREC_CHECK_GE(a, b) GOALREC_CHECK((a) >= (b))

#endif  // GOALREC_UTIL_LOGGING_H_
