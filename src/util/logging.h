#ifndef GOALREC_UTIL_LOGGING_H_
#define GOALREC_UTIL_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

// Minimal CHECK/LOG facility in the spirit of glog, sufficient for a library
// that does not use exceptions. Two halves:
//
//   GOALREC_CHECK*: invariant enforcement — print the failing condition,
//   the source location and an optional streamed message, then abort.
//
//   GOALREC_LOG(INFO|WARN|ERROR) / GOALREC_VLOG(n): leveled structured
//   logging. Each record is one logfmt line on stderr —
//     level=info ts=2026-08-06T12:00:00.123Z caller=engine.cc:42 msg="..."
//   The minimum emitted level and the VLOG verbosity are runtime-settable
//   (SetMinLogLevel / SetVerbosity; the CLI's --log_level/--vlog flags).
//   Use Kv("key", value) to append machine-parseable fields to a record:
//     GOALREC_LOG(WARN) << "slow load" << Kv("path", path) << Kv("ms", ms);
//   A pluggable sink (SetLogSink) lets tests and exporters capture records
//   instead of writing stderr. Everything here is header-only and
//   allocation-free until a record actually passes the level gate.

namespace goalrec::util {

// Accumulates a streamed message and aborts the process on destruction.
// Used only through the GOALREC_CHECK* macros below.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Log severities, ordered. Records below the runtime minimum are dropped
/// before any formatting work.
enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2 };

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

/// Parses "info"/"warn"/"warning"/"error" (case-sensitive). Returns false
/// on anything else.
inline bool ParseLogLevel(std::string_view name, LogLevel* out) {
  if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn" || name == "warning") {
    *out = LogLevel::kWarn;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

/// Sink invoked with each emitted record. `message` is the streamed body
/// (including Kv fields), not the rendered logfmt line.
using LogSinkFn = void (*)(LogLevel level, const char* file, int line,
                           const std::string& message);

namespace logging_internal {

inline std::atomic<int>& MinLevelVar() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  return level;
}

inline std::atomic<int>& VerbosityVar() {
  static std::atomic<int> verbosity{0};
  return verbosity;
}

inline std::atomic<LogSinkFn>& SinkVar() {
  static std::atomic<LogSinkFn> sink{nullptr};
  return sink;
}

/// Basename of a __FILE__ path, for compact caller= fields.
inline const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// logfmt value escaping. Quotes, backslashes and the common whitespace
/// escapes get their two-character forms; any other control character
/// (including the '\x1f' field delimiter LogMessage uses internally, which
/// would otherwise split the record) renders as \u00XX so a logfmt line is
/// always exactly one line and parses back losslessly.
inline void AppendQuoted(std::string& out, std::string_view value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// logfmt keys cannot carry quoting, so characters that would break the
/// `key=value` shape (spaces, '=', '"', controls) map to '_'.
inline void AppendSanitizedKey(std::string& out, std::string_view key) {
  for (char c : key) {
    bool bad = static_cast<unsigned char>(c) <= ' ' || c == '=' || c == '"';
    out += bad ? '_' : c;
  }
}

/// Renders one record body (msg text plus '\x1f'-delimited Kv fields, as
/// accumulated by LogMessage) into a single logfmt line, without the
/// trailing newline. Factored out of the emit path so the escaping rules
/// are directly testable.
inline std::string RenderLogfmt(LogLevel level, const char* file, int line_no,
                                const std::string& message) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm_utc{};
  gmtime_r(&ts.tv_sec, &tm_utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
  std::string line;
  line.reserve(message.size() + 96);
  line += "level=";
  line += LogLevelName(level);
  line += " ts=";
  line += stamp;
  line += " caller=";
  line += Basename(file);
  line += ':';
  line += std::to_string(line_no);
  // Split the body back into msg= and the Kv fields appended after it.
  // Kv fields arrive pre-rendered (sanitized key, '=', escaped value).
  size_t fields_at = message.find('\x1f');
  line += " msg=";
  AppendQuoted(line, std::string_view(message).substr(0, fields_at));
  while (fields_at != std::string::npos) {
    size_t next = message.find('\x1f', fields_at + 1);
    line += ' ';
    line += message.substr(
        fields_at + 1, next == std::string::npos ? next : next - fields_at - 1);
    fields_at = next;
  }
  return line;
}

// Token aliases so GOALREC_LOG(INFO) can paste its argument.
inline constexpr LogLevel kLevelINFO = LogLevel::kInfo;
inline constexpr LogLevel kLevelWARN = LogLevel::kWarn;
inline constexpr LogLevel kLevelERROR = LogLevel::kError;

}  // namespace logging_internal

/// Drops records whose level is below `level`. Thread-safe.
inline void SetMinLogLevel(LogLevel level) {
  logging_internal::MinLevelVar().store(static_cast<int>(level),
                                        std::memory_order_relaxed);
}

inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      logging_internal::MinLevelVar().load(std::memory_order_relaxed));
}

/// GOALREC_VLOG(n) emits when n <= verbosity. Default verbosity 0 silences
/// every VLOG.
inline void SetVerbosity(int verbosity) {
  logging_internal::VerbosityVar().store(verbosity, std::memory_order_relaxed);
}

inline int Verbosity() {
  return logging_internal::VerbosityVar().load(std::memory_order_relaxed);
}

/// Redirects emitted records to `sink` (nullptr restores stderr). The sink
/// must be callable from any thread.
inline void SetLogSink(LogSinkFn sink) {
  logging_internal::SinkVar().store(sink, std::memory_order_relaxed);
}

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         logging_internal::MinLevelVar().load(std::memory_order_relaxed);
}

/// Structured field for log records: Kv("path", p) renders as ` path="p"`
/// (arithmetic values unquoted). See the file comment for usage.
template <typename T>
struct KvField {
  std::string_view key;
  const T& value;
};

template <typename T>
KvField<T> Kv(std::string_view key, const T& value) {
  return KvField<T>{key, value};
}

// Accumulates one record and emits it on destruction. Created only through
// the GOALREC_LOG/GOALREC_VLOG macros, after the level gate passed.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    std::string message = stream_.str();
    LogSinkFn sink =
        logging_internal::SinkVar().load(std::memory_order_relaxed);
    if (sink != nullptr) {
      sink(level_, file_, line_, message);
      return;
    }
    // Render one logfmt line; a single fprintf keeps concurrent records
    // from interleaving mid-line.
    std::string line =
        logging_internal::RenderLogfmt(level_, file_, line_, message);
    line += '\n';
    std::fputs(line.c_str(), stderr);
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const KvField<T>& field) {
    // Fields are delimited with a unit separator inside the body and split
    // back out at emission, so they land outside the quoted msg="...".
    // Keys are sanitized and non-arithmetic values quoted+escaped here, so
    // a value containing spaces, '=', quotes or newlines cannot break the
    // key=value grammar of the emitted line.
    std::string rendered_key;
    logging_internal::AppendSanitizedKey(rendered_key, field.key);
    stream_ << '\x1f' << rendered_key << '=';
    if constexpr (std::is_arithmetic_v<T>) {
      stream_ << field.value;
    } else {
      std::ostringstream value_stream;
      value_stream << field.value;
      std::string rendered;
      logging_internal::AppendQuoted(rendered, value_stream.str());
      stream_ << rendered;
    }
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace goalrec::util

// Aborts with a diagnostic when `condition` is false. Additional context can
// be streamed: GOALREC_CHECK(x > 0) << "x=" << x;
#define GOALREC_CHECK(condition)                                       \
  if (condition) {                                                     \
  } else                                                               \
    ::goalrec::util::CheckFailure(#condition, __FILE__, __LINE__)

#define GOALREC_CHECK_EQ(a, b) GOALREC_CHECK((a) == (b))
#define GOALREC_CHECK_NE(a, b) GOALREC_CHECK((a) != (b))
#define GOALREC_CHECK_LT(a, b) GOALREC_CHECK((a) < (b))
#define GOALREC_CHECK_LE(a, b) GOALREC_CHECK((a) <= (b))
#define GOALREC_CHECK_GT(a, b) GOALREC_CHECK((a) > (b))
#define GOALREC_CHECK_GE(a, b) GOALREC_CHECK((a) >= (b))

// Leveled record: GOALREC_LOG(INFO) << "loaded" << Kv("impls", n);
// Severity is one of INFO, WARN, ERROR. The streamed expressions are not
// evaluated when the record is below the minimum level.
#define GOALREC_LOG(severity)                                             \
  if (!::goalrec::util::LogEnabled(                                       \
          ::goalrec::util::logging_internal::kLevel##severity)) {         \
  } else                                                                  \
    ::goalrec::util::LogMessage(                                          \
        ::goalrec::util::logging_internal::kLevel##severity, __FILE__,    \
        __LINE__)

// Verbose diagnostics, emitted at info level when n <= Verbosity().
#define GOALREC_VLOG(n)                                                   \
  if ((n) > ::goalrec::util::Verbosity()) {                               \
  } else                                                                  \
    ::goalrec::util::LogMessage(::goalrec::util::LogLevel::kInfo,         \
                                __FILE__, __LINE__)

#endif  // GOALREC_UTIL_LOGGING_H_
