#ifndef GOALREC_UTIL_DENSE_VECTOR_H_
#define GOALREC_UTIL_DENSE_VECTOR_H_

#include <cstddef>
#include <vector>

// Dense real vectors and the distance/similarity functions the recommenders
// use: Best Match ranks candidate actions by distance between goal-space
// vectors (paper Eq. 10); the content-based baseline uses cosine similarity
// over feature vectors; Table 5 measures pairwise feature similarity.

namespace goalrec::util {

using DenseVector = std::vector<double>;

/// Distance functions available to BestMatch (Eq. 10 leaves dist() open;
/// Euclidean is the conventional default).
enum class DistanceMetric {
  kEuclidean,
  kManhattan,
  kCosine,  // cosine *distance*, i.e. 1 - cosine similarity
};

/// a · b. Requires equal sizes.
double Dot(const DenseVector& a, const DenseVector& b);

/// ||a||₂.
double Norm2(const DenseVector& a);

/// Euclidean (L2) distance. Requires equal sizes.
double EuclideanDistance(const DenseVector& a, const DenseVector& b);

/// Manhattan (L1) distance. Requires equal sizes.
double ManhattanDistance(const DenseVector& a, const DenseVector& b);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
double CosineSimilarity(const DenseVector& a, const DenseVector& b);

/// 1 - CosineSimilarity. Zero vectors are maximally distant (1.0).
double CosineDistance(const DenseVector& a, const DenseVector& b);

/// Dispatches on `metric`.
double Distance(const DenseVector& a, const DenseVector& b,
                DistanceMetric metric);

/// Jaccard (Tanimoto) similarity between sparse binary vectors given as
/// |a∩b|, |a|, |b|: intersection / union. Returns 0 when both sets are empty.
double JaccardFromCounts(size_t intersection, size_t size_a, size_t size_b);

/// a += b. Requires equal sizes.
void AddInPlace(DenseVector& a, const DenseVector& b);

/// a *= s.
void ScaleInPlace(DenseVector& a, double s);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_DENSE_VECTOR_H_
