#ifndef GOALREC_UTIL_THREAD_POOL_H_
#define GOALREC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/status.h"

// Fixed-size worker pool plus a blocking ParallelFor. The experiment runner
// evaluates thousands of user activities per recommender; runs are
// embarrassingly parallel across users. Both are exception-hardened: a
// throwing task never terminates the process or wedges the pool — the
// failure is recorded and surfaced as a Status (ThreadPool) or rethrown in
// the calling thread (ParallelFor).

namespace goalrec::util {

/// Fixed pool of worker threads executing submitted tasks FIFO.
/// Not copyable or movable. The destructor drains the queue and joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task. A task that throws does not kill its worker: the first
  /// exception is captured (see status()/RethrowIfFailed()) and later tasks
  /// keep running.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (including failed ones).
  void Wait();

  /// OK while no task has thrown; otherwise kInternal carrying the first
  /// exception's message. Sticky until RethrowIfFailed() clears it.
  Status status() const;

  /// Number of tasks that threw since construction (or the last rethrow).
  size_t failed_tasks() const;

  /// Rethrows the first captured exception in the calling thread and resets
  /// the failure state; no-op when every task succeeded.
  void RethrowIfFailed();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_failure_;
  size_t failed_tasks_ = 0;
};

/// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
/// `num_threads` (0 = hardware concurrency). Blocks until all complete.
/// `body` must be safe to invoke concurrently for distinct i. If any
/// invocation throws, the remaining indices of other chunks still run and
/// the first exception is rethrown in the calling thread after the join.
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t num_threads = 0);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_THREAD_POOL_H_
