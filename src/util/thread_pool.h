#ifndef GOALREC_UTIL_THREAD_POOL_H_
#define GOALREC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

// Fixed-size worker pool plus a blocking ParallelFor. The experiment runner
// evaluates thousands of user activities per recommender; runs are
// embarrassingly parallel across users.

namespace goalrec::util {

/// Fixed pool of worker threads executing submitted tasks FIFO.
/// Not copyable or movable. The destructor drains the queue and joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
/// `num_threads` (0 = hardware concurrency). Blocks until all complete.
/// `body` must be safe to invoke concurrently for distinct i.
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t num_threads = 0);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_THREAD_POOL_H_
