#ifndef GOALREC_UTIL_STRING_UTILS_H_
#define GOALREC_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace goalrec::util {

/// Splits on `delimiter`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_STRING_UTILS_H_
