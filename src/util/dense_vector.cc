#include "util/dense_vector.h"

#include <cmath>

#include "util/logging.h"

namespace goalrec::util {

double Dot(const DenseVector& a, const DenseVector& b) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const DenseVector& a) { return std::sqrt(Dot(a, a)); }

double EuclideanDistance(const DenseVector& a, const DenseVector& b) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double ManhattanDistance(const DenseVector& a, const DenseVector& b) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double CosineSimilarity(const DenseVector& a, const DenseVector& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double CosineDistance(const DenseVector& a, const DenseVector& b) {
  return 1.0 - CosineSimilarity(a, b);
}

double Distance(const DenseVector& a, const DenseVector& b,
                DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return EuclideanDistance(a, b);
    case DistanceMetric::kManhattan:
      return ManhattanDistance(a, b);
    case DistanceMetric::kCosine:
      return CosineDistance(a, b);
  }
  GOALREC_CHECK(false) << "unknown metric";
  return 0.0;
}

double JaccardFromCounts(size_t intersection, size_t size_a, size_t size_b) {
  size_t union_size = size_a + size_b - intersection;
  if (union_size == 0) return 0.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

void AddInPlace(DenseVector& a, const DenseVector& b) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void ScaleInPlace(DenseVector& a, double s) {
  for (double& v : a) v *= s;
}

}  // namespace goalrec::util
