#ifndef GOALREC_UTIL_TOP_K_H_
#define GOALREC_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace goalrec::util {

/// Collects the k largest elements (by `Compare`, a strict weak ordering where
/// "larger" means Compare(a, b) == true puts a ahead of b) from a stream of
/// pushes. Backed by a bounded min-heap: Push is O(log k), memory is O(k).
///
/// All recommenders funnel their (action, score) candidates through TopK so
/// ranking cost stays O(n log k) instead of a full O(n log n) sort, which
/// matters at FoodMart connectivity (~1.2K implementations per action).
template <typename T, typename Compare = std::less<T>>
class TopK {
 public:
  explicit TopK(size_t k, Compare compare = Compare())
      : k_(k), compare_(compare) {
    GOALREC_CHECK_GT(k_, 0u);
  }

  /// Offers one element. Keeps it only if it ranks within the current top k.
  void Push(T value) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(value));
      std::push_heap(heap_.begin(), heap_.end(), compare_);
      return;
    }
    // heap_.front() is the weakest retained element.
    if (compare_(value, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), compare_);
      heap_.back() = std::move(value);
      std::push_heap(heap_.begin(), heap_.end(), compare_);
    }
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  /// Extracts the retained elements best-first. The collector is empty after.
  std::vector<T> Take() {
    // sort_heap orders ascending w.r.t. compare_; since compare_(a, b) means
    // "a ranks ahead of b", ascending order is already best-first.
    std::sort_heap(heap_.begin(), heap_.end(), compare_);
    return std::move(heap_);
  }

  /// Take() into a caller-owned vector (clear + copy), keeping the internal
  /// buffer's capacity. With Reset, a long-lived TopK (e.g. inside a pooled
  /// query workspace) collects top-k sets with zero steady-state
  /// allocations.
  void TakeInto(std::vector<T>& out) {
    std::sort_heap(heap_.begin(), heap_.end(), compare_);
    out.assign(heap_.begin(), heap_.end());
    heap_.clear();
  }

  /// Re-arms the collector for a fresh stream of pushes with a new bound,
  /// retaining the heap buffer's capacity.
  void Reset(size_t k) {
    GOALREC_CHECK_GT(k, 0u);
    k_ = k;
    heap_.clear();
  }

 private:
  size_t k_;
  Compare compare_;
  std::vector<T> heap_;
};

/// Branch-lean bounded top-k specialised for the query kernels' (score, id)
/// pairs under the shared ranking order: score descending, id ascending on
/// ties — the same total order as core::ByScoreDesc, so the retained set is
/// independent of push order and the drain order is fully deterministic.
///
/// Two structure-of-arrays heaps (scores + ids) replace the generic TopK's
/// array-of-structs, and Push caches the current floor (the weakest retained
/// entry) so the overwhelmingly common case — a candidate that does not make
/// the cut once the heap is full — is a single predictable compare with no
/// heap traversal.
class ScoredTopK {
 public:
  explicit ScoredTopK(size_t k = 1) { Reset(k); }

  /// Re-arms the collector for a fresh stream with bound `k` (> 0), keeping
  /// buffer capacity: zero steady-state allocations once warm.
  void Reset(size_t k) {
    GOALREC_CHECK_GT(k, 0u);
    k_ = k;
    size_ = 0;
    if (scores_.size() < k) {
      scores_.resize(k);
      ids_.resize(k);
    }
  }

  /// Offers one (score, id). Keeps it only if it ranks within the top k.
  /// Ids must be unique within one stream (every caller pushes each action
  /// at most once), so an exact (score, id) duplicate of the floor never
  /// occurs and the fast reject can treat "ties with the floor on both
  /// fields" as impossible.
  void Push(double score, uint32_t id) {
    if (size_ == k_) {
      // Fast reject against the cached floor. NaN never enters (scores are
      // finite by construction), so the negated compare is exact.
      if (score < floor_score_ ||
          (score == floor_score_ && id > floor_id_)) {
        return;
      }
      ReplaceFloor(score, id);
      return;
    }
    scores_[size_] = score;
    ids_[size_] = id;
    SiftUp(size_);
    ++size_;
    if (size_ == k_) {
      floor_score_ = scores_[0];
      floor_id_ = ids_[0];
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return k_; }

  /// Drains the retained entries best-first — score descending, id ascending
  /// on equal scores — invoking emit(score, id) for each. Empty after.
  template <typename Emit>
  void TakeInto(Emit&& emit) {
    // In-place heapsort: repeatedly move the root (the worst remaining
    // entry) behind the shrinking heap, leaving best-first order in front.
    size_t n = size_;
    while (size_ > 1) {
      --size_;
      std::swap(scores_[0], scores_[size_]);
      std::swap(ids_[0], ids_[size_]);
      SiftDown(size_);
    }
    size_ = 0;
    for (size_t i = 0; i < n; ++i) emit(scores_[i], ids_[i]);
  }

 private:
  /// Heap order: the root is the entry every other retained entry beats —
  /// lowest score, highest id among equal scores.
  bool Worse(size_t a, size_t b) const {
    if (scores_[a] != scores_[b]) return scores_[a] < scores_[b];
    return ids_[a] > ids_[b];
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Worse(i, parent)) break;
      std::swap(scores_[i], scores_[parent]);
      std::swap(ids_[i], ids_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t limit) {
    size_t i = 0;
    for (;;) {
      size_t left = 2 * i + 1;
      if (left >= limit) break;
      size_t right = left + 1;
      size_t worst = (right < limit && Worse(right, left)) ? right : left;
      if (!Worse(worst, i)) break;
      std::swap(scores_[i], scores_[worst]);
      std::swap(ids_[i], ids_[worst]);
      i = worst;
    }
  }

  void ReplaceFloor(double score, uint32_t id) {
    scores_[0] = score;
    ids_[0] = id;
    SiftDown(size_);
    floor_score_ = scores_[0];
    floor_id_ = ids_[0];
  }

  size_t k_ = 1;
  size_t size_ = 0;
  double floor_score_ = 0.0;
  uint32_t floor_id_ = 0;
  std::vector<double> scores_;
  std::vector<uint32_t> ids_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_TOP_K_H_
