#ifndef GOALREC_UTIL_TOP_K_H_
#define GOALREC_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace goalrec::util {

/// Collects the k largest elements (by `Compare`, a strict weak ordering where
/// "larger" means Compare(a, b) == true puts a ahead of b) from a stream of
/// pushes. Backed by a bounded min-heap: Push is O(log k), memory is O(k).
///
/// All recommenders funnel their (action, score) candidates through TopK so
/// ranking cost stays O(n log k) instead of a full O(n log n) sort, which
/// matters at FoodMart connectivity (~1.2K implementations per action).
template <typename T, typename Compare = std::less<T>>
class TopK {
 public:
  explicit TopK(size_t k, Compare compare = Compare())
      : k_(k), compare_(compare) {
    GOALREC_CHECK_GT(k_, 0u);
  }

  /// Offers one element. Keeps it only if it ranks within the current top k.
  void Push(T value) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(value));
      std::push_heap(heap_.begin(), heap_.end(), compare_);
      return;
    }
    // heap_.front() is the weakest retained element.
    if (compare_(value, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), compare_);
      heap_.back() = std::move(value);
      std::push_heap(heap_.begin(), heap_.end(), compare_);
    }
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  /// Extracts the retained elements best-first. The collector is empty after.
  std::vector<T> Take() {
    // sort_heap orders ascending w.r.t. compare_; since compare_(a, b) means
    // "a ranks ahead of b", ascending order is already best-first.
    std::sort_heap(heap_.begin(), heap_.end(), compare_);
    return std::move(heap_);
  }

  /// Take() into a caller-owned vector (clear + copy), keeping the internal
  /// buffer's capacity. With Reset, a long-lived TopK (e.g. inside a pooled
  /// query workspace) collects top-k sets with zero steady-state
  /// allocations.
  void TakeInto(std::vector<T>& out) {
    std::sort_heap(heap_.begin(), heap_.end(), compare_);
    out.assign(heap_.begin(), heap_.end());
    heap_.clear();
  }

  /// Re-arms the collector for a fresh stream of pushes with a new bound,
  /// retaining the heap buffer's capacity.
  void Reset(size_t k) {
    GOALREC_CHECK_GT(k, 0u);
    k_ = k;
    heap_.clear();
  }

 private:
  size_t k_;
  Compare compare_;
  std::vector<T> heap_;
};

}  // namespace goalrec::util

#endif  // GOALREC_UTIL_TOP_K_H_
