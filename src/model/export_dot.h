#ifndef GOALREC_MODEL_EXPORT_DOT_H_
#define GOALREC_MODEL_EXPORT_DOT_H_

#include <string>

#include "model/library.h"
#include "model/types.h"
#include "util/status.h"

// Graphviz export of the association-based goal model, for eyeballing the
// hypergraph structure the paper's Figure 2 sketches: goals as boxes,
// actions as ellipses, an edge per (goal, action) containment labelled with
// the number of that goal's implementations the action appears in.

namespace goalrec::model {

struct DotOptions {
  /// Restrict the rendering to these goals; empty = all goals (use with
  /// care on large libraries — DOT rendering degrades fast).
  IdSet goals;
  /// Graph name in the output.
  std::string graph_name = "goalrec";
};

/// Renders the DOT source.
std::string ToDot(const ImplementationLibrary& library,
                  const DotOptions& options = {});

/// Writes ToDot's output to `path`.
util::Status ExportDot(const ImplementationLibrary& library,
                       const std::string& path,
                       const DotOptions& options = {});

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_EXPORT_DOT_H_
