#include "model/merged_view.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/set_ops.h"
#include "util/status.h"

namespace goalrec::model {

MergedLibraryView::MergedLibraryView(ImplementationLibrary base,
                                     uint32_t base_crc32c)
    : base_(std::move(base)),
      merged_(base_),
      base_crc32c_(base_crc32c),
      goals_vocab_(base_.goals()) {
  const uint32_t n = base_.num_implementations();
  alive_.assign(n, 1);
  goal_of_.reserve(n);
  for (ImplId p = 0; p < n; ++p) goal_of_.push_back(base_.GoalOf(p));
  stats_.live_implementations = n;
}

util::Status MergedLibraryView::ValidateSegment(const DeltaSegment& segment,
                                                const std::string& name) const {
  const DeltaHeader& header = segment.header;
  if (header.base_crc32c != base_crc32c_) {
    return util::FailedPreconditionError(
        name + ": segment chains to base crc32c " +
        std::to_string(header.base_crc32c) + " but the view is anchored at " +
        std::to_string(base_crc32c_) + " (stale segment?)");
  }
  if (header.chain_seq != next_chain_seq()) {
    return util::FailedPreconditionError(
        name + ": segment has chain_seq " + std::to_string(header.chain_seq) +
        " but the view expects " + std::to_string(next_chain_seq()) +
        " (out-of-order or replayed segment)");
  }
  if (header.prev_crc32c != prev_segment_crc32c_) {
    return util::FailedPreconditionError(
        name + ": segment links prev_crc32c " +
        std::to_string(header.prev_crc32c) + " but the last applied segment " +
        "has crc32c " + std::to_string(prev_segment_crc32c_) +
        " (respliced chain?)");
  }

  // Semantics. Tombstoned implementation ids may name rows this segment
  // appends (appends apply first), so the bound includes them.
  const uint64_t logical_after = alive_.size() + segment.ops.appended.size();
  for (uint32_t id : segment.ops.tombstoned_impls) {
    if (id >= logical_after) {
      return util::InvalidArgumentError(
          name + ": tombstoned implementation id " + std::to_string(id) +
          " out of range [0, " + std::to_string(logical_after) + ")");
    }
  }
  for (const std::string& goal : segment.ops.tombstoned_goals) {
    if (goals_vocab_.Find(goal).has_value()) continue;
    bool appended_here = false;
    for (const DeltaImplementation& impl : segment.ops.appended) {
      if (impl.goal == goal) {
        appended_here = true;
        break;
      }
    }
    if (!appended_here) {
      return util::InvalidArgumentError(
          name + ": tombstoned goal '" + goal +
          "' is unknown to the chain (segment written against another "
          "library?)");
    }
  }
  return util::Status::Ok();
}

util::Status MergedLibraryView::ApplySegment(const DeltaSegment& segment,
                                             uint32_t segment_crc32c,
                                             const std::string& name) {
  if (util::Status s = ValidateSegment(segment, name); !s.ok()) return s;

  // Appends first: they extend the logical id space this segment's own
  // tombstones may reference.
  const uint32_t base_count = base_.num_implementations();
  for (const DeltaImplementation& impl : segment.ops.appended) {
    appended_.push_back(impl);
    alive_.push_back(1);
    goal_of_.push_back(goals_vocab_.Intern(impl.goal));
    ++stats_.appended_implementations;
  }

  // Goal tombstones kill every live row of the goal, appended ones included.
  for (const std::string& goal : segment.ops.tombstoned_goals) {
    GoalId gid = *goals_vocab_.Find(goal);
    if (gid < base_.num_goals()) {
      for (ImplId p : base_.ImplsOfGoal(gid)) alive_[p] = 0;
    }
    for (size_t i = 0; i < appended_.size(); ++i) {
      if (goal_of_[base_count + i] == gid) alive_[base_count + i] = 0;
    }
    ++stats_.tombstoned_goals;
  }

  for (uint32_t id : segment.ops.tombstoned_impls) alive_[id] = 0;

  ++segments_applied_;
  prev_segment_crc32c_ = segment_crc32c;
  stats_.segments_applied = segments_applied_;

  uint64_t dead = 0;
  for (uint8_t a : alive_) dead += a ? 0 : 1;
  stats_.tombstoned_implementations = dead;
  stats_.live_implementations = static_cast<uint32_t>(alive_.size() - dead);

  Fold();
  return util::Status::Ok();
}

void MergedLibraryView::Fold() {
  const auto fold_start = std::chrono::steady_clock::now();

  ImplementationLibrary lib;
  // Base vocabularies are copied, never re-interned: ids 0..N-1 preserved.
  lib.actions_ = base_.actions_;
  lib.goals_ = base_.goals_;

  // Intern every appended record's names in record order — dead records
  // included, because the logical id space (and so any segment already
  // written against it) assumed their names were assigned. Matches a
  // LibraryBuilder replay: actions in record order, then the goal;
  // duplicate names collapse via Normalize exactly as AddImplementation
  // collapses them.
  struct AppendedIds {
    GoalId goal;
    IdSet actions;
  };
  std::vector<AppendedIds> appended_ids;
  appended_ids.reserve(appended_.size());
  for (const DeltaImplementation& rec : appended_) {
    AppendedIds ids;
    ids.actions.reserve(rec.actions.size());
    for (const std::string& a : rec.actions) {
      ids.actions.push_back(lib.actions_.Intern(a));
    }
    ids.goal = lib.goals_.Intern(rec.goal);
    util::Normalize(ids.actions);
    appended_ids.push_back(std::move(ids));
  }

  // Survivors, renumbered densely in logical-id order. Base rows copy
  // straight out of the base arenas (already sorted action spans).
  const uint32_t base_count = base_.num_implementations();
  const size_t logical = alive_.size();
  size_t num_impls = 0;
  size_t total_postings = 0;
  for (size_t p = 0; p < logical; ++p) {
    if (!alive_[p]) continue;
    ++num_impls;
    total_postings += p < base_count
                          ? base_.ImplActionCount(static_cast<ImplId>(p))
                          : appended_ids[p - base_count].actions.size();
  }

  lib.impl_offsets_.resize(num_impls + 1, 0);
  lib.impl_actions_.reserve(total_postings);
  lib.impl_goals_.reserve(num_impls);
  size_t next = 0;
  for (size_t p = 0; p < logical; ++p) {
    if (!alive_[p]) continue;
    lib.impl_offsets_[next] = static_cast<uint32_t>(lib.impl_actions_.size());
    if (p < base_count) {
      auto span = base_.ActionsOf(static_cast<ImplId>(p));
      lib.impl_actions_.insert(lib.impl_actions_.end(), span.begin(),
                               span.end());
      lib.impl_goals_.push_back(base_.GoalOf(static_cast<ImplId>(p)));
    } else {
      const AppendedIds& ids = appended_ids[p - base_count];
      lib.impl_actions_.insert(lib.impl_actions_.end(), ids.actions.begin(),
                               ids.actions.end());
      lib.impl_goals_.push_back(ids.goal);
    }
    ++next;
  }
  lib.impl_offsets_[num_impls] =
      static_cast<uint32_t>(lib.impl_actions_.size());

  lib.BuildDerivedIndexes();
  merged_ = std::move(lib);

  stats_.last_fold_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - fold_start)
          .count();
}

}  // namespace goalrec::model
