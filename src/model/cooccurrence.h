#ifndef GOALREC_MODEL_COOCCURRENCE_H_
#define GOALREC_MODEL_COOCCURRENCE_H_

#include <cstdint>
#include <vector>

#include "model/library.h"
#include "model/types.h"

// Co-occurrence analytics over the implementation library: which actions
// appear together in implementations, and how much more often than chance.
// This is the *library-side* counterpart of the behaviour-side association
// rules (baselines/association_rules.h) — §2's point is precisely that these
// two disagree, and this module makes the library side queryable: "related
// actions" boxes, diagnostics for generator structure, and the raw material
// for the goal-family statistics the 43Things analysis leans on.

namespace goalrec::model {

struct CoAction {
  ActionId action = kInvalidId;
  /// Implementations containing both actions.
  uint32_t count = 0;
  /// Pointwise mutual information: log2( P(a,b) / (P(a)·P(b)) ) with
  /// probabilities estimated over implementations. Positive = the pair
  /// co-occurs more than independence predicts.
  double pmi = 0.0;
};

/// Actions co-occurring with `action`, ranked by count (descending, id
/// ascending on ties), at most `k`. Runs in
/// O(connectivity · avg implementation length).
std::vector<CoAction> TopCoActions(const ImplementationLibrary& library,
                                   ActionId action, size_t k);

/// Number of implementations containing both `a` and `b`
/// (|IS(a) ∩ IS(b)| as posting-list intersection).
uint32_t CoOccurrenceCount(const ImplementationLibrary& library, ActionId a,
                           ActionId b);

/// PMI of the pair, or 0 when either action never occurs or the pair never
/// co-occurs.
double PointwiseMutualInformation(const ImplementationLibrary& library,
                                  ActionId a, ActionId b);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_COOCCURRENCE_H_
