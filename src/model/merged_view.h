#ifndef GOALREC_MODEL_MERGED_VIEW_H_
#define GOALREC_MODEL_MERGED_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/delta.h"
#include "model/library.h"
#include "util/status.h"

// The merged view of an immutable base library plus an applied chain of
// delta segments (model/delta.h).
//
// Logical id space. The chain addresses implementations by LOGICAL id: base
// rows keep their ids 0..N-1 and every appended record takes the next id,
// in application order, forever — tombstones never renumber the logical
// space, so a segment written yesterday still means the same rows today.
//
// The merged library. Queries cannot run over the logical space directly:
// the scoring kernels (core/) read the library's flat CSR arenas, and
// ValidateLibrary insists every index row is live. So after each applied
// segment the view FOLDS: survivors are renumbered densely in logical-id
// order and the CSR indexes rebuilt array-level — base rows copied without
// re-interning a single name, appended names interned in record order. The
// result is bit-identical to rebuilding from scratch with LibraryBuilder
// (intern the base vocabularies in id order, intern every appended record's
// names in order, add the surviving implementations in logical order) —
// the delta oracle suite (tests/oracle/delta_oracle_test.cc) proves this at
// both the snapshot-byte and the query-result level. Renumbering is
// invisible to rankings because every strategy tie-breaks on score then id,
// and the renumbering is monotone.
//
// Vocabularies are append-only: tombstones remove implementations, never
// names, so action/goal ids are stable across the whole chain and a
// tombstoned goal's name stays resolvable (its implementation list just
// goes empty).
//
// ApplySegment is transactional: chain position and semantics are fully
// validated before the first mutation, so a rejected segment leaves the
// view untouched — the "keep serving the last good view" invariant the
// serving layer builds on.

namespace goalrec::model {

class MergedLibraryView {
 public:
  /// Anchors a view at `base`. `base_crc32c` is the CRC32C of the base
  /// snapshot's encoded bytes — the chain identity every applied segment
  /// must carry.
  MergedLibraryView(ImplementationLibrary base, uint32_t base_crc32c);

  /// Chain position the next segment must occupy.
  uint32_t base_crc32c() const { return base_crc32c_; }
  uint64_t next_chain_seq() const { return segments_applied_ + 1; }
  /// CRC32C of the last applied segment's encoded bytes (0 before any).
  uint32_t prev_segment_crc32c() const { return prev_segment_crc32c_; }
  /// The header a segment carrying the next mutation batch must use.
  DeltaHeader NextHeader() const {
    return DeltaHeader{base_crc32c_, next_chain_seq(), prev_segment_crc32c_};
  }

  /// Checks `segment` against the chain position (stale base, out-of-order
  /// or respliced sequence) and semantics (tombstoned implementation ids in
  /// range, tombstoned goal names known) without mutating the view.
  /// kFailedPrecondition for chain violations, kInvalidArgument for
  /// semantic ones. `name` is used in diagnostics only.
  util::Status ValidateSegment(const DeltaSegment& segment,
                               const std::string& name) const;

  /// Validates, applies and refolds. `segment_crc32c` is the CRC32C of the
  /// segment's encoded bytes (the linkage the NEXT segment must carry as
  /// prev_crc32c). On error the view is untouched.
  util::Status ApplySegment(const DeltaSegment& segment,
                            uint32_t segment_crc32c, const std::string& name);

  /// The merged library: base plus applied segments, tombstones masked,
  /// survivors densely renumbered. Valid until the next ApplySegment.
  const ImplementationLibrary& library() const { return merged_; }

  /// The base library the chain is anchored at.
  const ImplementationLibrary& base() const { return base_; }

  struct Stats {
    uint64_t segments_applied = 0;
    /// Cumulative appended records (live or since tombstoned).
    uint64_t appended_implementations = 0;
    /// Logical rows currently dead.
    uint64_t tombstoned_implementations = 0;
    /// Cumulative goal tombstone operations applied.
    uint64_t tombstoned_goals = 0;
    uint32_t live_implementations = 0;
    /// Wall time of the most recent fold.
    int64_t last_fold_micros = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void Fold();

  ImplementationLibrary base_;
  ImplementationLibrary merged_;
  uint32_t base_crc32c_ = 0;
  uint32_t prev_segment_crc32c_ = 0;
  uint64_t segments_applied_ = 0;
  /// Every appended record, in logical order (dead ones included: their
  /// names stay interned and their logical ids stay allocated).
  std::vector<DeltaImplementation> appended_;
  /// Liveness per logical id: base rows 0..N-1, then appended records.
  std::vector<uint8_t> alive_;
  /// Goal id (in the merged, append-only goal vocabulary) per logical id —
  /// what goal tombstones match against without string comparisons.
  std::vector<GoalId> goal_of_;
  /// Append-only goal vocabulary maintained incrementally (base ids
  /// preserved, appended goals interned in record order) so tombstones and
  /// validation resolve names without waiting for the fold.
  Vocabulary goals_vocab_;
  Stats stats_;
};

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_MERGED_VIEW_H_
