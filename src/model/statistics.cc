#include "model/statistics.h"

#include <algorithm>
#include <sstream>

namespace goalrec::model {

LibraryStats ComputeStats(const ImplementationLibrary& library) {
  LibraryStats stats;
  stats.num_actions = library.num_actions();
  stats.num_goals = library.num_goals();
  stats.num_implementations = library.num_implementations();

  size_t posting_total = 0;
  for (ActionId a = 0; a < library.num_actions(); ++a) {
    size_t count = library.ImplsOfAction(a).size();
    if (count == 0) continue;
    ++stats.active_actions;
    posting_total += count;
    stats.max_connectivity =
        std::max(stats.max_connectivity, static_cast<uint32_t>(count));
  }
  if (stats.active_actions > 0) {
    stats.connectivity = static_cast<double>(posting_total) /
                         static_cast<double>(stats.active_actions);
  }

  size_t length_total = 0;
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    size_t len = library.ActionsOf(p).size();
    length_total += len;
    stats.max_implementation_length =
        std::max(stats.max_implementation_length, static_cast<uint32_t>(len));
  }
  if (stats.num_implementations > 0) {
    stats.avg_implementation_length =
        static_cast<double>(length_total) /
        static_cast<double>(stats.num_implementations);
  }
  if (stats.num_goals > 0) {
    stats.avg_implementations_per_goal =
        static_cast<double>(stats.num_implementations) /
        static_cast<double>(stats.num_goals);
  }
  // Index footprint: every action containment costs one id in the forward
  // record and one in the A-GI postings; every implementation costs a goal
  // id forward and one G-GI posting.
  stats.index_bytes =
      (2 * length_total + 2 * stats.num_implementations) * sizeof(uint32_t);
  return stats;
}

std::string StatsToString(const LibraryStats& stats) {
  std::ostringstream out;
  out << "actions:                 " << stats.num_actions << "\n"
      << "goals:                   " << stats.num_goals << "\n"
      << "implementations:         " << stats.num_implementations << "\n"
      << "active actions:          " << stats.active_actions << "\n"
      << "connectivity (avg):      " << stats.connectivity << "\n"
      << "connectivity (max):      " << stats.max_connectivity << "\n"
      << "impl length (avg):       " << stats.avg_implementation_length << "\n"
      << "impl length (max):       " << stats.max_implementation_length << "\n"
      << "impls per goal (avg):    " << stats.avg_implementations_per_goal
      << "\n"
      << "index footprint:         " << stats.index_bytes << " bytes\n";
  return out.str();
}

}  // namespace goalrec::model
