#include "model/cooccurrence.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::model {

std::vector<CoAction> TopCoActions(const ImplementationLibrary& library,
                                   ActionId action, size_t k) {
  GOALREC_CHECK_LT(action, library.num_actions());
  std::vector<CoAction> result;
  if (k == 0 || library.num_implementations() == 0) return result;
  std::unordered_map<ActionId, uint32_t> counts;
  for (ImplId p : library.ImplsOfAction(action)) {
    for (ActionId other : library.ActionsOf(p)) {
      if (other != action) ++counts[other];
    }
  }
  result.reserve(counts.size());
  double total = static_cast<double>(library.num_implementations());
  double p_a =
      static_cast<double>(library.ImplsOfAction(action).size()) / total;
  for (const auto& [other, count] : counts) {
    double p_b =
        static_cast<double>(library.ImplsOfAction(other).size()) / total;
    double p_ab = static_cast<double>(count) / total;
    CoAction entry;
    entry.action = other;
    entry.count = count;
    entry.pmi = std::log2(p_ab / (p_a * p_b));
    result.push_back(entry);
  }
  std::sort(result.begin(), result.end(),
            [](const CoAction& x, const CoAction& y) {
              if (x.count != y.count) return x.count > y.count;
              return x.action < y.action;
            });
  if (result.size() > k) result.resize(k);
  return result;
}

uint32_t CoOccurrenceCount(const ImplementationLibrary& library, ActionId a,
                           ActionId b) {
  GOALREC_CHECK_LT(a, library.num_actions());
  GOALREC_CHECK_LT(b, library.num_actions());
  return static_cast<uint32_t>(util::IntersectionSize(
      library.ImplsOfAction(a), library.ImplsOfAction(b)));
}

double PointwiseMutualInformation(const ImplementationLibrary& library,
                                  ActionId a, ActionId b) {
  double total = static_cast<double>(library.num_implementations());
  if (total == 0.0) return 0.0;
  double n_a = static_cast<double>(library.ImplsOfAction(a).size());
  double n_b = static_cast<double>(library.ImplsOfAction(b).size());
  double n_ab = static_cast<double>(CoOccurrenceCount(library, a, b));
  if (n_a == 0.0 || n_b == 0.0 || n_ab == 0.0) return 0.0;
  return std::log2((n_ab / total) / ((n_a / total) * (n_b / total)));
}

}  // namespace goalrec::model
