#include "model/snapshot_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>

#include "model/wire_format.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace goalrec::model {
namespace {

using wire::AppendFrame;
using wire::AppendU32;
using wire::AppendU64;
using wire::Cursor;
using wire::ReadU32At;
using wire::ReadU64At;

constexpr char kHeaderMagic[8] = {'G', 'R', 'S', 'N', 'A', 'P', '1', '\n'};
constexpr char kFooterMagic[8] = {'G', 'R', 'S', 'N', 'E', 'N', 'D', '\n'};
constexpr size_t kHeaderSize = sizeof(kHeaderMagic) + 2 * sizeof(uint32_t);
constexpr size_t kFooterSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(kFooterMagic);

constexpr uint32_t kTagActions = 1;
constexpr uint32_t kTagGoals = 2;
constexpr uint32_t kTagImpls = 3;

std::string EncodeVocabulary(const Vocabulary& vocab) {
  std::string payload;
  AppendU32(&payload, vocab.size());
  for (uint32_t id = 0; id < vocab.size(); ++id) {
    const std::string& name = vocab.Name(id);
    AppendU32(&payload, static_cast<uint32_t>(name.size()));
    payload.append(name);
  }
  return payload;
}

}  // namespace

std::string EncodeSnapshot(const ImplementationLibrary& library) {
  std::string out;
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU32(&out, 0);  // flags

  const size_t frames_start = out.size();
  AppendFrame(&out, kTagActions, EncodeVocabulary(library.actions()));
  AppendFrame(&out, kTagGoals, EncodeVocabulary(library.goals()));
  std::string impls;
  AppendU32(&impls, library.num_implementations());
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    AppendU32(&impls, impl.goal);
    AppendU32(&impls, static_cast<uint32_t>(impl.actions.size()));
    for (ActionId a : impl.actions) AppendU32(&impls, a);
  }
  AppendFrame(&out, kTagImpls, impls);

  const uint64_t frames_len = out.size() - frames_start;
  uint32_t body_crc = util::Crc32c(
      std::string_view(out.data() + frames_start, frames_len));
  AppendU64(&out, frames_len);
  AppendU32(&out, util::MaskCrc32c(body_crc));
  out.append(kFooterMagic, sizeof(kFooterMagic));
  return out;
}

util::StatusOr<ImplementationLibrary> DecodeSnapshot(
    std::string_view bytes, const std::string& name,
    const LoadOptions& options) {
  const LoadLimits& limits = options.limits;
  if (bytes.size() < kHeaderSize + kFooterSize) {
    return util::InvalidArgumentError(
        name + ": " + std::to_string(bytes.size()) +
        " bytes is too short for a snapshot (truncated write?)");
  }
  if (std::memcmp(bytes.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return util::InvalidArgumentError(name + ": bad snapshot header magic");
  }
  uint32_t version = ReadU32At(bytes, sizeof(kHeaderMagic));
  if (version != kSnapshotFormatVersion) {
    return util::InvalidArgumentError(
        name + ": unsupported snapshot format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  // Version 1 defines no flags; the header is outside the body CRC, so a
  // strict zero check is what makes bit rot in this field detectable.
  uint32_t flags = ReadU32At(bytes, sizeof(kHeaderMagic) + sizeof(uint32_t));
  if (flags != 0) {
    return util::InvalidArgumentError(
        name + ": unknown snapshot header flags 0x" + [flags] {
          char buf[9];
          std::snprintf(buf, sizeof(buf), "%08x", flags);
          return std::string(buf);
        }());
  }

  // Footer first: end magic then whole-body CRC. Anything torn or truncated
  // dies here, before any frame is trusted.
  const size_t footer_at = bytes.size() - kFooterSize;
  if (std::memcmp(bytes.data() + footer_at + sizeof(uint64_t) +
                      sizeof(uint32_t),
                  kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return util::InvalidArgumentError(
        name + ": missing snapshot end magic (truncated or torn write)");
  }
  uint64_t frames_len = ReadU64At(bytes, footer_at);
  uint32_t want_crc =
      util::UnmaskCrc32c(ReadU32At(bytes, footer_at + sizeof(uint64_t)));
  if (frames_len != footer_at - kHeaderSize) {
    return util::InvalidArgumentError(
        name + ": footer declares " + std::to_string(frames_len) +
        " frame bytes but the file holds " +
        std::to_string(footer_at - kHeaderSize));
  }
  std::string_view frames = bytes.substr(kHeaderSize, frames_len);
  if (util::Crc32c(frames) != want_crc) {
    return util::InvalidArgumentError(
        name + ": snapshot body CRC mismatch (corrupt or torn write)");
  }

  // Body verified; walk the frames, checking each frame CRC to localise any
  // corruption the (already-passed) body CRC would have caught anyway.
  std::string_view actions_payload, goals_payload, impls_payload;
  util::Status walked = wire::WalkFrames(
      frames, kHeaderSize, name,
      [&](uint32_t tag, std::string_view payload,
          size_t offset) -> util::Status {
        switch (tag) {
          case kTagActions:
            actions_payload = payload;
            break;
          case kTagGoals:
            goals_payload = payload;
            break;
          case kTagImpls:
            impls_payload = payload;
            break;
          default:
            // Unknown tags are an error in version 1: there is nothing
            // forward-compatible to skip yet, and silently ignoring frames
            // hides splices.
            return util::InvalidArgumentError(
                name + ": unknown frame tag " + std::to_string(tag) +
                " at offset " + std::to_string(offset));
        }
        return util::Status::Ok();
      });
  if (!walked.ok()) return walked;
  if (actions_payload.data() == nullptr || goals_payload.data() == nullptr ||
      impls_payload.data() == nullptr) {
    return util::InvalidArgumentError(
        name + ": snapshot is missing a required frame");
  }

  LibraryBuilder builder;
  auto decode_vocab = [&](std::string_view payload, const char* what,
                          uint32_t max_entries,
                          auto intern) -> util::StatusOr<uint32_t> {
    Cursor cur(payload, name);
    uint32_t count = 0;
    if (util::Status s = cur.ReadU32(&count, what); !s.ok()) return s;
    if (count > max_entries || count > payload.size() / 4) {
      return util::ResourceExhaustedError(
          name + ": declared " + std::string(what) + " count " +
          std::to_string(count) + " exceeds the load cap or the frame size");
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t len = 0;
      if (util::Status s = cur.ReadU32(&len, what); !s.ok()) return s;
      if (len > limits.max_name_bytes) {
        return util::ResourceExhaustedError(
            name + ": " + std::string(what) + " " + std::to_string(i) +
            " declares " + std::to_string(len) + " name bytes, over the cap");
      }
      std::string_view nm;
      if (util::Status s = cur.ReadBytes(&nm, len, what); !s.ok()) return s;
      uint32_t id = intern(nm);
      if (id != i) {
        return util::InvalidArgumentError(
            name + ": duplicate " + std::string(what) + " name at index " +
            std::to_string(i));
      }
    }
    if (cur.remaining() != 0) {
      return util::InvalidArgumentError(name + ": trailing bytes in " +
                                        std::string(what) + " frame");
    }
    return count;
  };

  util::StatusOr<uint32_t> num_actions = decode_vocab(
      actions_payload, "action", limits.max_actions,
      [&](std::string_view nm) { return builder.InternAction(nm); });
  if (!num_actions.ok()) return num_actions.status();
  util::StatusOr<uint32_t> num_goals = decode_vocab(
      goals_payload, "goal", limits.max_goals,
      [&](std::string_view nm) { return builder.InternGoal(nm); });
  if (!num_goals.ok()) return num_goals.status();

  Cursor cur(impls_payload, name);
  uint32_t num_impls = 0;
  if (util::Status s = cur.ReadU32(&num_impls, "impl count"); !s.ok()) {
    return s;
  }
  if (num_impls > limits.max_implementations ||
      num_impls > impls_payload.size() / 8) {
    return util::ResourceExhaustedError(
        name + ": declared implementation count " + std::to_string(num_impls) +
        " exceeds the load cap or the frame size");
  }
  for (uint32_t i = 0; i < num_impls; ++i) {
    uint32_t goal = 0, len = 0;
    if (util::Status s = cur.ReadU32(&goal, "implementation"); !s.ok()) {
      return s;
    }
    if (util::Status s = cur.ReadU32(&len, "implementation"); !s.ok()) {
      return s;
    }
    if (goal >= num_goals.value()) {
      return util::InvalidArgumentError(
          name + ": implementation " + std::to_string(i) + " has goal id " +
          std::to_string(goal) + " out of range [0, " +
          std::to_string(num_goals.value()) + ")");
    }
    if (len > limits.max_actions_per_impl ||
        len > cur.remaining() / 4) {
      return util::ResourceExhaustedError(
          name + ": implementation " + std::to_string(i) + " declares " +
          std::to_string(len) + " actions, over the cap or the frame size");
    }
    IdSet actions(len);
    for (uint32_t j = 0; j < len; ++j) {
      if (util::Status s = cur.ReadU32(&actions[j], "action list");
          !s.ok()) {
        return s;
      }
      if (actions[j] >= num_actions.value()) {
        return util::InvalidArgumentError(
            name + ": implementation " + std::to_string(i) +
            " references action id " + std::to_string(actions[j]) +
            " out of range [0, " + std::to_string(num_actions.value()) + ")");
      }
    }
    builder.AddImplementationIds(goal, std::move(actions));
  }
  if (cur.remaining() != 0) {
    return util::InvalidArgumentError(
        name + ": trailing bytes in implementation frame");
  }
  return std::move(builder).Build();
}

namespace {

util::Status PosixError(const std::string& what, const std::string& path) {
  return util::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Writes `bytes` to `fd` fully, retrying short writes.
util::Status WriteAll(int fd, std::string_view bytes,
                      const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveSnapshot(const ImplementationLibrary& library,
                          const std::string& path) {
  return AtomicWriteFile(EncodeSnapshot(library), path);
}

util::Status AtomicWriteFile(std::string_view bytes, const std::string& path) {
  // Same-directory temp name so the rename stays within one filesystem.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return PosixError("open", tmp);
  util::Status status = WriteAll(fd, bytes, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = PosixError("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = PosixError("close", tmp);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = PosixError("rename", tmp + " -> " + path);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the rename itself: fsync the parent directory.
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return PosixError("open directory", dir);
  if (::fsync(dir_fd) != 0) {
    util::Status dir_status = PosixError("fsync directory", dir);
    ::close(dir_fd);
    return dir_status;
  }
  ::close(dir_fd);
  return util::Status::Ok();
}

util::StatusOr<std::string> ReadFileToString(const std::string& path,
                                             uint64_t max_bytes) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (!ec && size > max_bytes) {
    return util::ResourceExhaustedError(
        path + ": file is " + std::to_string(size) +
        " bytes, over the load cap of " + std::to_string(max_bytes));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::string bytes;
  if (!ec) bytes.reserve(static_cast<size_t>(size));
  bytes.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  if (in.bad()) return util::IoError("read failed: " + path);
  return bytes;
}

util::StatusOr<ImplementationLibrary> LoadSnapshotFile(
    const std::string& path, const LoadOptions& options) {
  util::StatusOr<std::string> bytes =
      ReadFileToString(path, options.limits.max_file_bytes);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshot(bytes.value(), path, options);
}

}  // namespace goalrec::model
