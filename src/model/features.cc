#include "model/features.h"

#include <cmath>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::model {

double FeatureSimilarity(const ActionFeatureTable& table, ActionId a,
                         ActionId b) {
  GOALREC_CHECK_LT(a, table.features.size());
  GOALREC_CHECK_LT(b, table.features.size());
  const IdSet& fa = table.features[a];
  const IdSet& fb = table.features[b];
  if (fa.empty() || fb.empty()) return 0.0;
  size_t common = util::IntersectionSize(fa, fb);
  return static_cast<double>(common) /
         (std::sqrt(static_cast<double>(fa.size())) *
          std::sqrt(static_cast<double>(fb.size())));
}

}  // namespace goalrec::model
