#ifndef GOALREC_MODEL_DELTA_H_
#define GOALREC_MODEL_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/library_io.h"
#include "util/status.h"

// Delta segment persistence for incremental library mutation.
//
// A library on disk is an immutable base snapshot (model/snapshot_io.h,
// "*.snap") plus a chain of small delta segment files ("*.sdelta"), each
// carrying appended implementations and tombstoned goals/implementations.
// Queries run against the merged view (model/merged_view.h); a background
// compactor periodically folds base+deltas into a fresh base. Segments use
// the same masked-CRC32C frame + footer-end-magic discipline as GRSNAP1, so
// every torn/truncated/bit-rotted write is rejected deterministically, and
// add a chain header so a stale or out-of-order segment is rejected BEFORE
// any frame is parsed. Layout (all integers little-endian):
//
//   header   "GRSDLT1\n"  u32 format_version  u32 flags
//            u32 base_crc32c   CRC32C of the base snapshot's encoded bytes —
//                              the chain identity. A segment written against
//                              a different base (e.g. surviving a crashed
//                              compaction) can never be applied.
//            u64 chain_seq     1-based position in the chain. Segments apply
//                              in strictly consecutive order.
//            u32 prev_crc32c   CRC32C of the previous segment's encoded
//                              bytes (0 for chain_seq 1), so a chain cannot
//                              be respliced from segments of equal seq.
//            u32 masked_crc32c(all header bytes above)
//   frames   repeated { u32 tag  u64 payload_len  payload
//                       u32 masked_crc32c(tag | payload_len | payload) }
//              tag 1: appended implementations, BY NAME (u32 count, then per
//                     record a length-prefixed goal name, u32 action count,
//                     and length-prefixed action names) — self-contained
//                     across any renumbering of the merged view
//              tag 2: tombstoned goal names (u32 count, length-prefixed)
//              tag 3: tombstoned implementation ids (u32 count, u32 ids in
//                     the chain's logical id space: base rows 0..N-1, then
//                     appended records in application order)
//   footer   u64 frames_len  u32 masked_crc32c(all frame bytes)  "GRSDEND\n"
//
// ReadDeltaHeader verifies only the header (magic, version, flags, header
// CRC) so the chain checks run against 36 bytes; DecodeDeltaSegment then
// verifies the footer (end magic + whole-body CRC) before parsing any
// frame — as with GRSNAP1, no strict prefix of a valid segment is itself a
// valid segment. SaveDeltaSegment is POSIX-atomic (temp file + fsync +
// rename + parent-directory fsync). docs/data_plane.md ("Delta segments &
// compaction") documents the chain rules and recovery invariants.

namespace goalrec::model {

/// Current (and only) delta segment format version.
inline constexpr uint32_t kDeltaFormatVersion = 1;

/// One implementation appended by a delta segment, by name. Names rather
/// than ids: segment content stays valid however the merged view renumbers
/// surviving implementations, and new actions/goals are interned on apply.
struct DeltaImplementation {
  std::string goal;
  std::vector<std::string> actions;
};

/// The mutations one delta segment carries. Apply order within a segment:
/// appends first (extending the logical id space), then goal tombstones
/// (killing every live implementation of that goal, appended ones
/// included), then implementation tombstones (which may name ids this
/// segment just appended). Tombstoning an already-dead implementation is
/// idempotent; tombstoning an unknown goal name is an error (it catches
/// segments written against the wrong library).
struct DeltaOps {
  std::vector<DeltaImplementation> appended;
  std::vector<std::string> tombstoned_goals;
  std::vector<uint32_t> tombstoned_impls;

  bool empty() const {
    return appended.empty() && tombstoned_goals.empty() &&
           tombstoned_impls.empty();
  }
};

/// Chain header of a delta segment (see the layout comment above).
struct DeltaHeader {
  uint32_t base_crc32c = 0;
  uint64_t chain_seq = 0;
  uint32_t prev_crc32c = 0;
};

struct DeltaSegment {
  DeltaHeader header;
  DeltaOps ops;
};

/// Serialises one segment into the wire format (header + frames + footer).
/// Exposed for tests and for writers that stage/corrupt bytes themselves
/// (the chaos harness).
std::string EncodeDeltaSegment(const DeltaHeader& header, const DeltaOps& ops);

/// Verifies and returns only the 36-byte chain header (magic, version,
/// strict zero flags, header CRC). This is what lets a reader reject a
/// stale or out-of-order segment before parsing any frame.
util::StatusOr<DeltaHeader> ReadDeltaHeader(std::string_view bytes,
                                            const std::string& name);

/// Parses segment bytes produced by EncodeDeltaSegment. Verifies the header
/// CRC and the footer CRC before any frame parse, and every frame CRC
/// during it; allocation is bounded by `options.limits`. `name` is used in
/// diagnostics only.
util::StatusOr<DeltaSegment> DecodeDeltaSegment(std::string_view bytes,
                                                const std::string& name,
                                                const LoadOptions& options = {});

/// Writes one segment to `path` crash-consistently (temp file + fsync +
/// rename + parent-directory fsync). On failure the previous `path` content
/// (if any) is untouched.
util::Status SaveDeltaSegment(const DeltaHeader& header, const DeltaOps& ops,
                              const std::string& path);

/// Loads a segment written by SaveDeltaSegment. Either returns the complete
/// segment or fails cleanly — never a partial segment.
util::StatusOr<DeltaSegment> LoadDeltaSegmentFile(
    const std::string& path, const LoadOptions& options = {});

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_DELTA_H_
