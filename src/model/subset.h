#ifndef GOALREC_MODEL_SUBSET_H_
#define GOALREC_MODEL_SUBSET_H_

#include <functional>

#include "model/library.h"

// Sub-library extraction: restrict an implementation library to a subset of
// its goals (e.g. only vegetarian recipes, only career goals) and recommend
// within it. Strategies take the library by pointer, so scoping the library
// scopes every recommendation without touching the strategies.

namespace goalrec::model {

/// Predicate deciding which goals survive.
using GoalPredicate = std::function<bool(GoalId, const std::string& name)>;

/// Builds a new library containing exactly the implementations whose goal
/// satisfies `keep`. Action and goal names are preserved; ids are re-interned
/// densely in first-seen order, and actions appearing only in dropped
/// implementations are absent from the result.
ImplementationLibrary FilterByGoal(const ImplementationLibrary& library,
                                   const GoalPredicate& keep);

/// Convenience overload: keep exactly the goals in `goals` (by id in
/// `library`).
ImplementationLibrary FilterByGoalIds(const ImplementationLibrary& library,
                                      const IdSet& goals);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_SUBSET_H_
