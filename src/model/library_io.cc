#include "model/library_io.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace goalrec::model {
namespace {

// Counts each load attempt by format/result and times it. Loads happen at
// startup, not per query, so the mutex-guarded registry lookups per call are
// acceptable here (unlike the serving hot path, which caches handles).
template <typename Fn>
auto InstrumentedLoad(const char* format, const std::string& path, Fn fn)
    -> decltype(fn()) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  auto start = std::chrono::steady_clock::now();
  auto result = fn();
  double elapsed_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  registry
      .GetHistogram("goalrec_library_load_latency_us",
                    obs::DefaultLatencyBucketsUs(), {{"format", format}},
                    "Library load attempt latency (microseconds)")
      ->Observe(elapsed_us);
  registry
      .GetCounter("goalrec_library_load_total",
                  {{"format", format}, {"result", result.ok() ? "ok" : "error"}},
                  "Library load attempts, by format and result")
      ->Increment();
  if (!result.ok()) {
    GOALREC_LOG(WARN) << "library load failed" << util::Kv("format", format)
                      << util::Kv("path", path)
                      << util::Kv("status", result.status().ToString());
  }
  return result;
}

constexpr char kTextHeader[] = "# goalrec-library v1";
constexpr uint32_t kBinaryMagic = 0x47524C31;  // "GRL1"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(in, &len)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

}  // namespace

util::Status SaveLibraryText(const ImplementationLibrary& library,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << kTextHeader << '\n';
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    out << library.goals().Name(impl.goal);
    for (ActionId a : impl.actions) {
      out << '\t' << library.actions().Name(a);
    }
    out << '\n';
  }
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

namespace {

util::StatusOr<ImplementationLibrary> LoadLibraryTextImpl(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || util::Trim(line) != kTextHeader) {
    return util::InvalidArgumentError(path + ": missing header '" +
                                      kTextHeader + "'");
  }
  LibraryBuilder builder;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() < 2) {
      return util::InvalidArgumentError(
          path + ":" + std::to_string(line_number) +
          ": expected '<goal>\\t<action>...'");
    }
    std::vector<std::string> actions(fields.begin() + 1, fields.end());
    builder.AddImplementation(fields[0], actions);
  }
  return std::move(builder).Build();
}

}  // namespace

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path) {
  return InstrumentedLoad("text", path,
                          [&] { return LoadLibraryTextImpl(path); });
}

util::Status SaveLibraryBinary(const ImplementationLibrary& library,
                               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  WriteU32(out, kBinaryMagic);
  WriteU32(out, library.num_actions());
  for (uint32_t a = 0; a < library.num_actions(); ++a) {
    WriteString(out, library.actions().Name(a));
  }
  WriteU32(out, library.num_goals());
  for (uint32_t g = 0; g < library.num_goals(); ++g) {
    WriteString(out, library.goals().Name(g));
  }
  WriteU32(out, library.num_implementations());
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    WriteU32(out, impl.goal);
    WriteU32(out, static_cast<uint32_t>(impl.actions.size()));
    for (ActionId a : impl.actions) WriteU32(out, a);
  }
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

namespace {

util::StatusOr<ImplementationLibrary> LoadLibraryBinaryImpl(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kBinaryMagic) {
    return util::InvalidArgumentError(path + ": bad magic");
  }
  LibraryBuilder builder;
  uint32_t num_actions = 0;
  if (!ReadU32(in, &num_actions)) {
    return util::InvalidArgumentError(path + ": truncated action count");
  }
  builder.ReserveActions(num_actions);
  for (uint32_t i = 0; i < num_actions; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      return util::InvalidArgumentError(path + ": truncated action table");
    }
    builder.InternAction(name);
  }
  uint32_t num_goals = 0;
  if (!ReadU32(in, &num_goals)) {
    return util::InvalidArgumentError(path + ": truncated goal count");
  }
  builder.ReserveGoals(num_goals);
  for (uint32_t i = 0; i < num_goals; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      return util::InvalidArgumentError(path + ": truncated goal table");
    }
    builder.InternGoal(name);
  }
  uint32_t num_impls = 0;
  if (!ReadU32(in, &num_impls)) {
    return util::InvalidArgumentError(path + ": truncated impl count");
  }
  for (uint32_t i = 0; i < num_impls; ++i) {
    uint32_t goal = 0, len = 0;
    if (!ReadU32(in, &goal) || !ReadU32(in, &len)) {
      return util::InvalidArgumentError(path + ": truncated implementation");
    }
    if (goal >= num_goals) {
      return util::InvalidArgumentError(path + ": goal id out of range");
    }
    IdSet actions(len);
    for (uint32_t j = 0; j < len; ++j) {
      if (!ReadU32(in, &actions[j])) {
        return util::InvalidArgumentError(path + ": truncated action list");
      }
      if (actions[j] >= num_actions) {
        return util::InvalidArgumentError(path + ": action id out of range");
      }
    }
    builder.AddImplementationIds(goal, std::move(actions));
  }
  return std::move(builder).Build();
}

}  // namespace

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path) {
  return InstrumentedLoad("binary", path,
                          [&] { return LoadLibraryBinaryImpl(path); });
}

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path, const util::RetryOptions& retry) {
  return util::RetryCall(retry, [&] { return LoadLibraryText(path); });
}

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const util::RetryOptions& retry) {
  return util::RetryCall(retry, [&] { return LoadLibraryBinary(path); });
}

util::StatusOr<std::shared_ptr<const LibrarySnapshot>> LoadLibrarySnapshot(
    const std::string& path, const util::RetryOptions& retry) {
  bool binary = path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
  auto loaded = binary ? LoadLibraryBinary(path, retry)
                       : LoadLibraryText(path, retry);
  if (!loaded.ok()) return loaded.status();
  return MakeSnapshot(std::move(loaded).value(), path);
}

}  // namespace goalrec::model
