#include "model/library_io.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "model/snapshot_io.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace goalrec::model {
namespace {

// Counts each load attempt by format/result and times it. Loads happen at
// startup, not per query, so the mutex-guarded registry lookups per call are
// acceptable here (unlike the serving hot path, which caches handles).
template <typename Fn>
auto InstrumentedLoad(const char* format, const std::string& path, Fn fn)
    -> decltype(fn()) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  auto start = std::chrono::steady_clock::now();
  auto result = fn();
  double elapsed_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  registry
      .GetHistogram("goalrec_library_load_latency_us",
                    obs::DefaultLatencyBucketsUs(), {{"format", format}},
                    "Library load attempt latency (microseconds)")
      ->Observe(elapsed_us);
  registry
      .GetCounter("goalrec_library_load_total",
                  {{"format", format}, {"result", result.ok() ? "ok" : "error"}},
                  "Library load attempts, by format and result")
      ->Increment();
  if (!result.ok()) {
    GOALREC_LOG(WARN) << "library load failed" << util::Kv("format", format)
                      << util::Kv("path", path)
                      << util::Kv("status", result.status().ToString());
  }
  return result;
}

constexpr char kTextHeader[] = "# goalrec-library v1";
constexpr uint32_t kBinaryMagic = 0x47524C31;  // "GRL1"

/// Offending tokens are echoed into diagnostics; clip so a pathological
/// multi-megabyte "line" cannot explode a log message.
constexpr size_t kMaxTokenEcho = 48;

std::string ClipToken(std::string_view token) {
  std::string clipped(token.substr(0, kMaxTokenEcho));
  // Control bytes (including the non-UTF8 junk the fuzz corpus feeds in)
  // render as '?' so diagnostics stay single-line and terminal-safe.
  for (char& c : clipped) {
    if (static_cast<unsigned char>(c) < 0x20 ||
        static_cast<unsigned char>(c) == 0x7F) {
      c = '?';
    }
  }
  if (token.size() > kMaxTokenEcho) clipped += "...";
  return clipped;
}

/// Size of `path` for the pre-allocation cap, or nullopt if unavailable
/// (nonexistent file, pipe); the open itself reports those cases.
std::optional<uint64_t> FileSizeBytes(const std::string& path) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<uint64_t>(size);
}

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

}  // namespace

std::string LoadIssue::ToString() const {
  std::string rendered = file;
  if (line > 0) rendered += ":" + std::to_string(line);
  rendered += ": " + reason;
  if (!token.empty()) rendered += " near '" + token + "'";
  return rendered;
}

std::string LoadReport::Summary() const {
  return std::to_string(records_loaded) + "/" + std::to_string(records_total) +
         " records loaded, " + std::to_string(records_quarantined) +
         " quarantined, " + std::to_string(duplicates) + " duplicates, " +
         std::to_string(issues_total) + " issues";
}

util::Status SaveLibraryText(const ImplementationLibrary& library,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << kTextHeader << '\n';
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    out << library.goals().Name(impl.goal);
    for (ActionId a : impl.actions) {
      out << '\t' << library.actions().Name(a);
    }
    out << '\n';
  }
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

namespace {

util::StatusOr<ImplementationLibrary> LoadLibraryTextImpl(
    const std::string& path, const LoadOptions& options, LoadReport* report) {
  LoadReport scratch;
  LoadReport& rep = report != nullptr ? *report : scratch;
  rep = LoadReport{};
  const LoadLimits& limits = options.limits;
  const bool quarantine = options.mode == ValidationMode::kQuarantine;

  if (std::optional<uint64_t> size = FileSizeBytes(path);
      size.has_value() && *size > limits.max_file_bytes) {
    return util::ResourceExhaustedError(
        path + ": file is " + std::to_string(*size) +
        " bytes, over the load cap of " +
        std::to_string(limits.max_file_bytes));
  }
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || util::Trim(line) != kTextHeader) {
    return util::InvalidArgumentError(path + ":1: missing header '" +
                                      kTextHeader + "' near '" +
                                      ClipToken(line) + "'");
  }

  LibraryBuilder builder;
  // Canonical "<goal>\n<sorted actions>" keys of every record loaded so far;
  // maintained only when someone can observe the answer (dedup tracking on a
  // 100M-record load is pure overhead otherwise).
  const bool track_duplicates =
      report != nullptr || options.drop_duplicates;
  std::unordered_set<std::string> seen;

  // Flags one bad record: records it (with provenance) in the report, and
  // either fails the load (strict) or signals the caller to drop the record
  // and continue (quarantine, returns OK).
  auto bad_record = [&](size_t line_number, std::string_view token,
                        std::string reason) -> util::Status {
    ++rep.issues_total;
    std::string clipped = ClipToken(token);
    if (rep.issues.size() < options.max_reported_issues) {
      rep.issues.push_back(LoadIssue{path, line_number, clipped, reason});
    }
    if (!quarantine) {
      return util::InvalidArgumentError(path + ":" +
                                        std::to_string(line_number) + ": " +
                                        std::move(reason) + " near '" +
                                        clipped + "'");
    }
    ++rep.records_quarantined;
    return util::Status::Ok();
  };

  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++rep.records_total;

    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() < 2) {
      util::Status status = bad_record(
          line_number, line, "expected '<goal>\\t<action>...'");
      if (!status.ok()) return status;
      continue;
    }
    const std::string& goal = fields[0];
    if (goal.empty()) {
      util::Status status = bad_record(line_number, line, "empty goal name");
      if (!status.ok()) return status;
      continue;
    }
    if (goal.size() > limits.max_name_bytes) {
      util::Status status = bad_record(
          line_number, goal,
          "goal name is " + std::to_string(goal.size()) +
              " bytes, over the cap of " +
              std::to_string(limits.max_name_bytes));
      if (!status.ok()) return status;
      continue;
    }

    bool dropped = false;
    std::vector<std::string> actions(fields.begin() + 1, fields.end());
    if (actions.size() > limits.max_actions_per_impl) {
      util::Status status = bad_record(
          line_number, goal,
          "implementation has " + std::to_string(actions.size()) +
              " actions, over the cap of " +
              std::to_string(limits.max_actions_per_impl));
      if (!status.ok()) return status;
      continue;
    }
    for (const std::string& action : actions) {
      if (action.empty()) {
        util::Status status =
            bad_record(line_number, line, "empty action name");
        if (!status.ok()) return status;
        dropped = true;
        break;
      }
      if (action.size() > limits.max_name_bytes) {
        util::Status status = bad_record(
            line_number, action,
            "action name is " + std::to_string(action.size()) +
                " bytes, over the cap of " +
                std::to_string(limits.max_name_bytes));
        if (!status.ok()) return status;
        dropped = true;
        break;
      }
    }
    if (dropped) continue;

    if (track_duplicates) {
      std::vector<std::string> sorted_actions = actions;
      std::sort(sorted_actions.begin(), sorted_actions.end());
      sorted_actions.erase(
          std::unique(sorted_actions.begin(), sorted_actions.end()),
          sorted_actions.end());
      std::string key = goal;
      for (const std::string& action : sorted_actions) {
        key += '\n';
        key += action;
      }
      if (!seen.insert(std::move(key)).second) {
        ++rep.duplicates;
        ++rep.issues_total;
        if (rep.issues.size() < options.max_reported_issues) {
          rep.issues.push_back(LoadIssue{
              path, line_number, ClipToken(goal),
              "duplicate implementation (same goal and action set)"});
        }
        // Duplicates are structurally legal, so they never fail a strict
        // load; they are only dropped on explicit request.
        if (options.drop_duplicates) {
          ++rep.records_quarantined;
          continue;
        }
      }
    }

    // Hard caps are never quarantinable: past this point the file is trying
    // to make us allocate without bound, and dropping records one by one
    // would still scan (and intern from) all of it.
    if (builder.num_implementations() >= limits.max_implementations) {
      return util::ResourceExhaustedError(
          path + ":" + std::to_string(line_number) + ": implementation count "
          "exceeds the load cap of " +
          std::to_string(limits.max_implementations));
    }
    builder.AddImplementation(goal, actions);
    if (builder.num_actions() > limits.max_actions ||
        builder.num_goals() > limits.max_goals) {
      return util::ResourceExhaustedError(
          path + ":" + std::to_string(line_number) +
          ": vocabulary exceeds the load cap (" +
          std::to_string(builder.num_actions()) + " actions, " +
          std::to_string(builder.num_goals()) + " goals)");
    }
  }
  if (in.bad()) return util::IoError("read failed: " + path);
  rep.records_loaded = builder.num_implementations();
  if (rep.records_quarantined > 0) {
    GOALREC_LOG(WARN) << "library loaded with quarantined records"
                      << util::Kv("path", path)
                      << util::Kv("summary", rep.Summary());
  }
  return std::move(builder).Build();
}

}  // namespace

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path) {
  return LoadLibraryText(path, LoadOptions{}, nullptr);
}

util::StatusOr<ImplementationLibrary> LoadLibraryText(const std::string& path,
                                                      const LoadOptions& options,
                                                      LoadReport* report) {
  return InstrumentedLoad(
      "text", path, [&] { return LoadLibraryTextImpl(path, options, report); });
}

util::Status SaveLibraryBinary(const ImplementationLibrary& library,
                               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  WriteU32(out, kBinaryMagic);
  WriteU32(out, library.num_actions());
  for (uint32_t a = 0; a < library.num_actions(); ++a) {
    WriteString(out, library.actions().Name(a));
  }
  WriteU32(out, library.num_goals());
  for (uint32_t g = 0; g < library.num_goals(); ++g) {
    WriteString(out, library.goals().Name(g));
  }
  WriteU32(out, library.num_implementations());
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    WriteU32(out, impl.goal);
    WriteU32(out, static_cast<uint32_t>(impl.actions.size()));
    for (ActionId a : impl.actions) WriteU32(out, a);
  }
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

namespace {

util::StatusOr<ImplementationLibrary> LoadLibraryBinaryImpl(
    const std::string& path, const LoadOptions& options, LoadReport* report) {
  LoadReport scratch;
  LoadReport& rep = report != nullptr ? *report : scratch;
  rep = LoadReport{};
  const LoadLimits& limits = options.limits;

  // The declared-count checks below bound every allocation against the real
  // file size: a record costs at least 4 bytes on disk, so a count that
  // implies more bytes than the file holds is a lie, rejected before the
  // proportional reserve.
  std::optional<uint64_t> file_size = FileSizeBytes(path);
  if (file_size.has_value() && *file_size > limits.max_file_bytes) {
    return util::ResourceExhaustedError(
        path + ": file is " + std::to_string(*file_size) +
        " bytes, over the load cap of " +
        std::to_string(limits.max_file_bytes));
  }
  const uint64_t plausible_records =
      file_size.has_value() ? *file_size / 4 : UINT64_MAX;

  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  auto offset = [&in]() -> std::string {
    return std::to_string(static_cast<long long>(in.tellg()));
  };
  // Length-prefixed string whose length is validated against the name cap
  // (so a hostile prefix cannot make resize() allocate gigabytes).
  auto read_name = [&](std::string* s, const char* what) -> util::Status {
    uint32_t len = 0;
    if (!ReadU32(in, &len)) {
      return util::InvalidArgumentError(path + ": truncated " +
                                        std::string(what) + " at offset " +
                                        offset());
    }
    if (len > limits.max_name_bytes) {
      return util::ResourceExhaustedError(
          path + ": " + std::string(what) + " declares " +
          std::to_string(len) + " bytes at offset " + offset() +
          ", over the cap of " + std::to_string(limits.max_name_bytes));
    }
    s->resize(len);
    in.read(s->data(), len);
    if (!in) {
      return util::InvalidArgumentError(path + ": truncated " +
                                        std::string(what) + " at offset " +
                                        offset());
    }
    return util::Status::Ok();
  };

  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kBinaryMagic) {
    return util::InvalidArgumentError(path + ": bad magic");
  }
  LibraryBuilder builder;
  uint32_t num_actions = 0;
  if (!ReadU32(in, &num_actions)) {
    return util::InvalidArgumentError(path + ": truncated action count");
  }
  if (num_actions > limits.max_actions || num_actions > plausible_records) {
    return util::ResourceExhaustedError(
        path + ": declared action count " + std::to_string(num_actions) +
        " exceeds the load cap or the file size");
  }
  builder.ReserveActions(num_actions);
  for (uint32_t i = 0; i < num_actions; ++i) {
    std::string name;
    if (util::Status status = read_name(&name, "action name"); !status.ok()) {
      return status;
    }
    // Ids are positional in this format: interning must assign exactly id i.
    // A duplicate name collapses the mapping, and every later id in the file
    // would point one slot off — reject rather than mis-wire silently.
    if (builder.InternAction(name) != i) {
      return util::InvalidArgumentError(
          path + ": duplicate action name '" + ClipToken(name) +
          "' in vocabulary at offset " + offset());
    }
  }
  uint32_t num_goals = 0;
  if (!ReadU32(in, &num_goals)) {
    return util::InvalidArgumentError(path + ": truncated goal count");
  }
  if (num_goals > limits.max_goals || num_goals > plausible_records) {
    return util::ResourceExhaustedError(
        path + ": declared goal count " + std::to_string(num_goals) +
        " exceeds the load cap or the file size");
  }
  builder.ReserveGoals(num_goals);
  for (uint32_t i = 0; i < num_goals; ++i) {
    std::string name;
    if (util::Status status = read_name(&name, "goal name"); !status.ok()) {
      return status;
    }
    if (builder.InternGoal(name) != i) {
      return util::InvalidArgumentError(
          path + ": duplicate goal name '" + ClipToken(name) +
          "' in vocabulary at offset " + offset());
    }
  }
  uint32_t num_impls = 0;
  if (!ReadU32(in, &num_impls)) {
    return util::InvalidArgumentError(path + ": truncated impl count");
  }
  if (num_impls > limits.max_implementations ||
      num_impls > plausible_records) {
    return util::ResourceExhaustedError(
        path + ": declared implementation count " + std::to_string(num_impls) +
        " exceeds the load cap or the file size");
  }
  rep.records_total = num_impls;
  for (uint32_t i = 0; i < num_impls; ++i) {
    uint32_t goal = 0, len = 0;
    if (!ReadU32(in, &goal) || !ReadU32(in, &len)) {
      return util::InvalidArgumentError(
          path + ": truncated implementation " + std::to_string(i) + "/" +
          std::to_string(num_impls) + " at offset " + offset());
    }
    if (goal >= num_goals) {
      return util::InvalidArgumentError(
          path + ": implementation " + std::to_string(i) + " has goal id " +
          std::to_string(goal) + " out of range [0, " +
          std::to_string(num_goals) + ")");
    }
    if (len > limits.max_actions_per_impl || len > plausible_records) {
      return util::ResourceExhaustedError(
          path + ": implementation " + std::to_string(i) + " declares " +
          std::to_string(len) + " actions, over the cap of " +
          std::to_string(limits.max_actions_per_impl));
    }
    IdSet actions(len);
    for (uint32_t j = 0; j < len; ++j) {
      if (!ReadU32(in, &actions[j])) {
        return util::InvalidArgumentError(
            path + ": truncated action list of implementation " +
            std::to_string(i) + " at offset " + offset());
      }
      if (actions[j] >= num_actions) {
        return util::InvalidArgumentError(
            path + ": implementation " + std::to_string(i) +
            " references action id " + std::to_string(actions[j]) +
            " out of range [0, " + std::to_string(num_actions) + ")");
      }
    }
    builder.AddImplementationIds(goal, std::move(actions));
  }
  rep.records_loaded = builder.num_implementations();
  return std::move(builder).Build();
}

}  // namespace

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path) {
  return LoadLibraryBinary(path, LoadOptions{}, nullptr);
}

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const LoadOptions& options, LoadReport* report) {
  return InstrumentedLoad("binary", path, [&] {
    return LoadLibraryBinaryImpl(path, options, report);
  });
}

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path, const util::RetryOptions& retry) {
  return util::RetryCall(retry, [&] { return LoadLibraryText(path); });
}

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const util::RetryOptions& retry) {
  return util::RetryCall(retry, [&] { return LoadLibraryBinary(path); });
}

util::StatusOr<std::shared_ptr<const LibrarySnapshot>> LoadLibrarySnapshot(
    const std::string& path, const util::RetryOptions& retry,
    const LoadOptions& options) {
  auto has_suffix = [&path](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  auto loaded = [&]() -> util::StatusOr<ImplementationLibrary> {
    if (has_suffix(".snap")) {
      return util::RetryCall(retry, [&] {
        return InstrumentedLoad(
            "snapshot", path, [&] { return LoadSnapshotFile(path, options); });
      });
    }
    if (has_suffix(".bin")) {
      return util::RetryCall(
          retry, [&] { return LoadLibraryBinary(path, options); });
    }
    return util::RetryCall(retry,
                           [&] { return LoadLibraryText(path, options); });
  }();
  if (!loaded.ok()) return loaded.status();
  return MakeSnapshot(std::move(loaded).value(), path);
}

}  // namespace goalrec::model
