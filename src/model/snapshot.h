#ifndef GOALREC_MODEL_SNAPSHOT_H_
#define GOALREC_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "model/library.h"

// An immutable, shareable unit of library ownership. The library itself has
// always been immutable-after-Build; LibrarySnapshot adds the two things a
// serving system needs to swap libraries under live traffic:
//
//   * shared ownership — queries hold a std::shared_ptr<const
//     LibrarySnapshot> for their whole lifetime, so a reload can replace the
//     current snapshot without waiting for (or tearing) in-flight readers;
//   * identity — a process-wide monotonically increasing version and a
//     source tag, so logs, metrics and reload audits can say *which*
//     library answered a query.
//
// serve/snapshot_manager.h owns the atomic current-snapshot pointer; the
// loaders (model/library_io.h) and datasets produce snapshots directly.

namespace goalrec::model {

struct LibrarySnapshot {
  ImplementationLibrary library;
  /// Process-wide monotonically increasing build number (1, 2, ...).
  uint64_t version = 0;
  /// Where the library came from: a file path, "builder", a dataset name.
  std::string source;
};

/// Wraps a built library into an immutable snapshot, stamping the next
/// process-wide version. Thread-safe.
std::shared_ptr<const LibrarySnapshot> MakeSnapshot(
    ImplementationLibrary library, std::string source = "builder");

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_SNAPSHOT_H_
