#include "model/delta.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "model/snapshot_io.h"
#include "model/wire_format.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace goalrec::model {
namespace {

using wire::AppendFrame;
using wire::AppendU32;
using wire::AppendU64;
using wire::Cursor;
using wire::ReadU32At;
using wire::ReadU64At;

constexpr char kHeaderMagic[8] = {'G', 'R', 'S', 'D', 'L', 'T', '1', '\n'};
constexpr char kFooterMagic[8] = {'G', 'R', 'S', 'D', 'E', 'N', 'D', '\n'};
// magic, version, flags, base_crc, chain_seq, prev_crc, header crc.
constexpr size_t kHeaderSize = sizeof(kHeaderMagic) + 4 * sizeof(uint32_t) +
                               sizeof(uint64_t) + sizeof(uint32_t);
constexpr size_t kFooterSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(kFooterMagic);

constexpr uint32_t kTagAppended = 1;
constexpr uint32_t kTagTombstonedGoals = 2;
constexpr uint32_t kTagTombstonedImpls = 3;

void AppendName(std::string* payload, std::string_view name) {
  AppendU32(payload, static_cast<uint32_t>(name.size()));
  payload->append(name);
}

util::Status ReadName(Cursor* cur, const LoadLimits& limits,
                      const std::string& name, const char* what,
                      std::string_view* out) {
  uint32_t len = 0;
  if (util::Status s = cur->ReadU32(&len, what); !s.ok()) return s;
  if (len > limits.max_name_bytes) {
    return util::ResourceExhaustedError(
        name + ": " + std::string(what) + " declares " + std::to_string(len) +
        " name bytes, over the cap");
  }
  return cur->ReadBytes(out, len, what);
}

}  // namespace

std::string EncodeDeltaSegment(const DeltaHeader& header,
                               const DeltaOps& ops) {
  std::string out;
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  AppendU32(&out, kDeltaFormatVersion);
  AppendU32(&out, 0);  // flags
  AppendU32(&out, header.base_crc32c);
  AppendU64(&out, header.chain_seq);
  AppendU32(&out, header.prev_crc32c);
  AppendU32(&out, util::MaskCrc32c(util::Crc32c(out)));

  const size_t frames_start = out.size();
  std::string appended;
  AppendU32(&appended, static_cast<uint32_t>(ops.appended.size()));
  for (const DeltaImplementation& impl : ops.appended) {
    AppendName(&appended, impl.goal);
    AppendU32(&appended, static_cast<uint32_t>(impl.actions.size()));
    for (const std::string& action : impl.actions) {
      AppendName(&appended, action);
    }
  }
  AppendFrame(&out, kTagAppended, appended);

  std::string goals;
  AppendU32(&goals, static_cast<uint32_t>(ops.tombstoned_goals.size()));
  for (const std::string& goal : ops.tombstoned_goals) {
    AppendName(&goals, goal);
  }
  AppendFrame(&out, kTagTombstonedGoals, goals);

  std::string impls;
  AppendU32(&impls, static_cast<uint32_t>(ops.tombstoned_impls.size()));
  for (uint32_t id : ops.tombstoned_impls) AppendU32(&impls, id);
  AppendFrame(&out, kTagTombstonedImpls, impls);

  const uint64_t frames_len = out.size() - frames_start;
  uint32_t body_crc =
      util::Crc32c(std::string_view(out.data() + frames_start, frames_len));
  AppendU64(&out, frames_len);
  AppendU32(&out, util::MaskCrc32c(body_crc));
  out.append(kFooterMagic, sizeof(kFooterMagic));
  return out;
}

util::StatusOr<DeltaHeader> ReadDeltaHeader(std::string_view bytes,
                                            const std::string& name) {
  if (bytes.size() < kHeaderSize + kFooterSize) {
    return util::InvalidArgumentError(
        name + ": " + std::to_string(bytes.size()) +
        " bytes is too short for a delta segment (truncated write?)");
  }
  if (std::memcmp(bytes.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return util::InvalidArgumentError(name +
                                      ": bad delta segment header magic");
  }
  size_t at = sizeof(kHeaderMagic);
  uint32_t version = ReadU32At(bytes, at);
  at += sizeof(uint32_t);
  if (version != kDeltaFormatVersion) {
    return util::InvalidArgumentError(
        name + ": unsupported delta segment format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kDeltaFormatVersion) + ")");
  }
  // Version 1 defines no flags; strict zero is what makes bit rot in this
  // field detectable independently of the header CRC diagnostics.
  uint32_t flags = ReadU32At(bytes, at);
  at += sizeof(uint32_t);
  if (flags != 0) {
    return util::InvalidArgumentError(
        name + ": unknown delta segment header flags 0x" + [flags] {
          char buf[9];
          std::snprintf(buf, sizeof(buf), "%08x", flags);
          return std::string(buf);
        }());
  }
  DeltaHeader header;
  header.base_crc32c = ReadU32At(bytes, at);
  at += sizeof(uint32_t);
  header.chain_seq = ReadU64At(bytes, at);
  at += sizeof(uint64_t);
  header.prev_crc32c = ReadU32At(bytes, at);
  at += sizeof(uint32_t);
  uint32_t want_crc = util::UnmaskCrc32c(ReadU32At(bytes, at));
  if (util::Crc32c(bytes.substr(0, at)) != want_crc) {
    return util::InvalidArgumentError(
        name + ": delta segment header CRC mismatch (corrupt write)");
  }
  if (header.chain_seq == 0) {
    return util::InvalidArgumentError(
        name + ": delta segment chain_seq 0 (sequence numbers are 1-based)");
  }
  return header;
}

util::StatusOr<DeltaSegment> DecodeDeltaSegment(std::string_view bytes,
                                                const std::string& name,
                                                const LoadOptions& options) {
  const LoadLimits& limits = options.limits;
  util::StatusOr<DeltaHeader> header = ReadDeltaHeader(bytes, name);
  if (!header.ok()) return header.status();

  // Footer next: end magic then whole-body CRC. Anything torn or truncated
  // dies here, before any frame is trusted.
  const size_t footer_at = bytes.size() - kFooterSize;
  if (std::memcmp(
          bytes.data() + footer_at + sizeof(uint64_t) + sizeof(uint32_t),
          kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return util::InvalidArgumentError(
        name + ": missing delta segment end magic (truncated or torn write)");
  }
  uint64_t frames_len = ReadU64At(bytes, footer_at);
  uint32_t want_crc =
      util::UnmaskCrc32c(ReadU32At(bytes, footer_at + sizeof(uint64_t)));
  if (frames_len != footer_at - kHeaderSize) {
    return util::InvalidArgumentError(
        name + ": footer declares " + std::to_string(frames_len) +
        " frame bytes but the file holds " +
        std::to_string(footer_at - kHeaderSize));
  }
  std::string_view frames = bytes.substr(kHeaderSize, frames_len);
  if (util::Crc32c(frames) != want_crc) {
    return util::InvalidArgumentError(
        name + ": delta segment body CRC mismatch (corrupt or torn write)");
  }

  std::string_view appended_payload, goals_payload, impls_payload;
  util::Status walked = wire::WalkFrames(
      frames, kHeaderSize, name,
      [&](uint32_t tag, std::string_view payload,
          size_t offset) -> util::Status {
        switch (tag) {
          case kTagAppended:
            appended_payload = payload;
            break;
          case kTagTombstonedGoals:
            goals_payload = payload;
            break;
          case kTagTombstonedImpls:
            impls_payload = payload;
            break;
          default:
            return util::InvalidArgumentError(
                name + ": unknown frame tag " + std::to_string(tag) +
                " at offset " + std::to_string(offset));
        }
        return util::Status::Ok();
      });
  if (!walked.ok()) return walked;
  if (appended_payload.data() == nullptr || goals_payload.data() == nullptr ||
      impls_payload.data() == nullptr) {
    return util::InvalidArgumentError(
        name + ": delta segment is missing a required frame");
  }

  DeltaSegment segment;
  segment.header = header.value();

  {
    Cursor cur(appended_payload, name);
    uint32_t count = 0;
    if (util::Status s = cur.ReadU32(&count, "appended count"); !s.ok()) {
      return s;
    }
    // Each record costs at least 8 bytes (goal length + action count), so a
    // declared count is capped by the frame size too.
    if (count > limits.max_implementations ||
        count > appended_payload.size() / 8) {
      return util::ResourceExhaustedError(
          name + ": declared appended implementation count " +
          std::to_string(count) + " exceeds the load cap or the frame size");
    }
    segment.ops.appended.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      DeltaImplementation impl;
      std::string_view goal;
      if (util::Status s =
              ReadName(&cur, limits, name, "appended goal", &goal);
          !s.ok()) {
        return s;
      }
      impl.goal.assign(goal);
      uint32_t actions = 0;
      if (util::Status s = cur.ReadU32(&actions, "appended action count");
          !s.ok()) {
        return s;
      }
      if (actions > limits.max_actions_per_impl ||
          actions > cur.remaining() / 4) {
        return util::ResourceExhaustedError(
            name + ": appended implementation " + std::to_string(i) +
            " declares " + std::to_string(actions) +
            " actions, over the cap or the frame size");
      }
      impl.actions.reserve(actions);
      for (uint32_t j = 0; j < actions; ++j) {
        std::string_view action;
        if (util::Status s =
                ReadName(&cur, limits, name, "appended action", &action);
            !s.ok()) {
          return s;
        }
        impl.actions.emplace_back(action);
      }
      segment.ops.appended.push_back(std::move(impl));
    }
    if (cur.remaining() != 0) {
      return util::InvalidArgumentError(
          name + ": trailing bytes in appended-implementations frame");
    }
  }

  {
    Cursor cur(goals_payload, name);
    uint32_t count = 0;
    if (util::Status s = cur.ReadU32(&count, "tombstoned goal count");
        !s.ok()) {
      return s;
    }
    if (count > limits.max_goals || count > goals_payload.size() / 4) {
      return util::ResourceExhaustedError(
          name + ": declared tombstoned goal count " + std::to_string(count) +
          " exceeds the load cap or the frame size");
    }
    segment.ops.tombstoned_goals.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view goal;
      if (util::Status s =
              ReadName(&cur, limits, name, "tombstoned goal", &goal);
          !s.ok()) {
        return s;
      }
      segment.ops.tombstoned_goals.emplace_back(goal);
    }
    if (cur.remaining() != 0) {
      return util::InvalidArgumentError(
          name + ": trailing bytes in tombstoned-goals frame");
    }
  }

  {
    Cursor cur(impls_payload, name);
    uint32_t count = 0;
    if (util::Status s = cur.ReadU32(&count, "tombstoned impl count");
        !s.ok()) {
      return s;
    }
    if (count > limits.max_implementations ||
        count > impls_payload.size() / 4) {
      return util::ResourceExhaustedError(
          name + ": declared tombstoned implementation count " +
          std::to_string(count) + " exceeds the load cap or the frame size");
    }
    segment.ops.tombstoned_impls.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      if (util::Status s = cur.ReadU32(&id, "tombstoned impl id"); !s.ok()) {
        return s;
      }
      segment.ops.tombstoned_impls.push_back(id);
    }
    if (cur.remaining() != 0) {
      return util::InvalidArgumentError(
          name + ": trailing bytes in tombstoned-implementations frame");
    }
  }

  return segment;
}

util::Status SaveDeltaSegment(const DeltaHeader& header, const DeltaOps& ops,
                              const std::string& path) {
  return AtomicWriteFile(EncodeDeltaSegment(header, ops), path);
}

util::StatusOr<DeltaSegment> LoadDeltaSegmentFile(const std::string& path,
                                                  const LoadOptions& options) {
  util::StatusOr<std::string> bytes =
      ReadFileToString(path, options.limits.max_file_bytes);
  if (!bytes.ok()) return bytes.status();
  return DecodeDeltaSegment(bytes.value(), path, options);
}

}  // namespace goalrec::model
