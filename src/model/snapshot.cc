#include "model/snapshot.h"

#include <atomic>

namespace goalrec::model {

std::shared_ptr<const LibrarySnapshot> MakeSnapshot(
    ImplementationLibrary library, std::string source) {
  static std::atomic<uint64_t> next_version{1};
  auto snapshot = std::make_shared<LibrarySnapshot>();
  snapshot->library = std::move(library);
  snapshot->version = next_version.fetch_add(1, std::memory_order_relaxed);
  snapshot->source = std::move(source);
  return snapshot;
}

}  // namespace goalrec::model
