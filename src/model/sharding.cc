#include "model/sharding.h"

#include <utility>

#include "util/logging.h"

namespace goalrec::model {
namespace {

/// splitmix64 finaliser: cheap, well-mixed, and stable across platforms —
/// the shard of a goal id must not depend on std::hash's implementation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* PartitionPolicyName(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kHashByGoal:
      return "hash_goal";
    case PartitionPolicy::kModuloGoal:
      return "modulo_goal";
  }
  return "?";
}

std::shared_ptr<const ShardedSnapshot> BuildShardedSnapshot(
    const ImplementationLibrary& base, uint32_t num_shards,
    const ShardingOptions& options, uint64_t base_version) {
  if (num_shards == 0) num_shards = 1;
  auto out = std::make_shared<ShardedSnapshot>();
  out->base = &base;
  out->num_shards = num_shards;
  out->base_version = base_version;

  // Materialise the goal → shard assignment once.
  const uint32_t num_goals = base.num_goals();
  out->goal_shard.resize(num_goals);
  if (options.custom) {
    out->policy_name = options.custom_name;
    for (GoalId g = 0; g < num_goals; ++g) {
      uint32_t shard = options.custom(g, base, num_shards);
      GOALREC_CHECK(shard < num_shards);
      out->goal_shard[g] = shard;
    }
  } else {
    out->policy_name = PartitionPolicyName(options.policy);
    for (GoalId g = 0; g < num_goals; ++g) {
      out->goal_shard[g] = options.policy == PartitionPolicy::kModuloGoal
                               ? g % num_shards
                               : static_cast<uint32_t>(Mix64(g) % num_shards);
    }
  }

  // Every shard re-interns the FULL base vocabularies in base id order, so
  // action/goal ids are base ids on every shard — queries fan out and merge
  // without any id translation, and a shard can embed candidates it has
  // never seen in its own implementations (Best Match phase B).
  std::vector<LibraryBuilder> builders(num_shards);
  for (LibraryBuilder& b : builders) {
    b.ReserveActions(base.num_actions());
    b.ReserveGoals(num_goals);
    for (ActionId a = 0; a < base.num_actions(); ++a) {
      ActionId id = b.InternAction(base.actions().Name(a));
      GOALREC_CHECK(id == a);
    }
    for (GoalId g = 0; g < num_goals; ++g) {
      GoalId id = b.InternGoal(base.goals().Name(g));
      GOALREC_CHECK(id == g);
    }
  }

  // Walk implementations in ascending logical id order so shard-local ids
  // are assigned monotonically in logical order — the invariant that makes
  // (score desc, local asc) equal (score desc, logical asc) per shard.
  const uint32_t num_impls = base.num_implementations();
  out->impl_shard.resize(num_impls);
  out->impl_local.resize(num_impls);
  out->local_to_logical.resize(num_shards);
  for (ImplId p = 0; p < num_impls; ++p) {
    const GoalId g = base.GoalOf(p);
    const uint32_t shard = out->goal_shard[g];
    ImplId local = builders[shard].AddImplementationIds(g, base.ActionsOf(p));
    out->impl_shard[p] = shard;
    out->impl_local[p] = local;
    GOALREC_CHECK(local == out->local_to_logical[shard].size());
    out->local_to_logical[shard].push_back(p);
  }

  out->shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    out->shards.push_back(MakeSnapshot(std::move(builders[s]).Build(),
                                       "shard:" + std::to_string(s)));
  }
  return out;
}

}  // namespace goalrec::model
