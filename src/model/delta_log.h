#ifndef GOALREC_MODEL_DELTA_LOG_H_
#define GOALREC_MODEL_DELTA_LOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/delta.h"
#include "model/library.h"
#include "model/library_io.h"
#include "model/merged_view.h"
#include "util/status.h"

// On-disk manager for a delta-snapshot directory:
//
//   <dir>/base.snap                       immutable base (GRSNAP1)
//   <dir>/seg-<basecrc8hex>-<seq>.sdelta  delta chain (GRSDLT1), seq >= 1
//
// Segment filenames embed the base CRC, so after a compaction re-anchors
// the chain the leftovers of the old chain are recognisably stale from the
// name alone — a crash between publishing the new base and unlinking the
// consumed segments recovers by deleting them on the next Open.
//
// Single-writer discipline: exactly one process appends and compacts; any
// number of readers Poll. Every publish (segment or re-anchored base) is a
// POSIX-atomic rename, so readers only ever observe complete files — a
// non-atomic or hostile writer is caught by the CRC envelope instead.
//
// Recovery invariant (docs/data_plane.md): Open applies the longest valid
// prefix of the chain. The first segment that is missing, torn, corrupt,
// stale or out of order quarantines itself AND everything after it (in
// memory — the files are left in place, because a restarted writer rewrites
// the bad sequence number atomically), and the view reopens at the last
// durable prefix. Crash at any byte of any publish therefore loses at most
// the unpublished suffix, never the ability to serve.

namespace goalrec::model {

struct DeltaLogOptions {
  LoadOptions load;
  /// Delete stale-chain segments (crash-mid-compaction leftovers) when they
  /// are found on Open or after a Compact.
  bool remove_stale_segments = true;
};

/// One segment file rejected during recovery or polling, with the reason.
struct QuarantinedSegment {
  std::string file;
  std::string reason;
};

struct DeltaLogStats {
  /// Segments applied on the current chain — the pending-compaction backlog.
  uint64_t segments_active = 0;
  /// Segment files currently present but rejected (torn/corrupt/stale tail).
  uint64_t quarantined_segments = 0;
  /// Stale-chain segment files removed (compaction crash cleanup).
  uint64_t stale_segments_removed = 0;
  uint64_t compactions = 0;
  /// Wall time of the most recent Compact (fold + publish + cleanup).
  int64_t last_compaction_micros = 0;
  /// Merged-view counters (appends, tombstones, live rows, fold time).
  MergedLibraryView::Stats view;
};

class DeltaLog {
 public:
  /// Opens an existing delta directory: loads base.snap, applies the longest
  /// valid chain prefix, quarantines the rest.
  static util::StatusOr<DeltaLog> Open(std::string dir,
                                       DeltaLogOptions options = {});

  /// Creates <dir>/base.snap from `library` (atomically; an existing base
  /// is replaced) and opens the directory.
  static util::StatusOr<DeltaLog> Create(std::string dir,
                                         const ImplementationLibrary& library,
                                         DeltaLogOptions options = {});

  DeltaLog(DeltaLog&&) = default;
  DeltaLog& operator=(DeltaLog&&) = default;

  /// Writer path: validates `ops` against the current view, persists them as
  /// the next segment in the chain (atomic rename), then applies them. On
  /// error nothing is applied; a failed write leaves no visible file.
  util::Status Append(const DeltaOps& ops);

  /// Folds base + applied segments into a fresh base, publishes it
  /// atomically, unlinks the consumed segment files, and re-anchors the
  /// chain at the new base (seq restarts at 1). A crash anywhere leaves a
  /// directory Open recovers: either the old base + old chain, or the new
  /// base with the old chain's files recognisably stale.
  util::Status Compact();

  struct PollResult {
    uint64_t segments_applied = 0;
    bool reopened_base = false;
  };
  /// Reader path: picks up whatever the single writer published since the
  /// last call — newly appended segments applied in order, or a re-anchored
  /// base (detected by CRC change), which reopens the whole directory. A
  /// torn or corrupt published file quarantines the tail and keeps the
  /// current view serving; the error is returned so callers can log it.
  util::StatusOr<PollResult> Poll();

  /// The merged library at the current chain position.
  const ImplementationLibrary& library() const { return view_->library(); }
  const MergedLibraryView& view() const { return *view_; }

  const std::string& dir() const { return dir_; }
  std::string base_path() const;
  /// Path of segment `seq` on the current chain.
  std::string SegmentPath(uint64_t seq) const;

  DeltaLogStats stats() const;
  std::vector<QuarantinedSegment> quarantined() const;

 private:
  DeltaLog(std::string dir, DeltaLogOptions options);

  /// Loads base.snap and replays the chain from disk, replacing the view.
  util::Status Reopen();
  /// Applies chain segments beyond the view's current position; quarantines
  /// the tail on the first bad one. Returns segments applied.
  uint64_t CatchUpChain();

  std::string dir_;
  DeltaLogOptions options_;
  std::optional<MergedLibraryView> view_;
  /// Currently rejected segment files, by filename. Re-examined on every
  /// poll: a restarted writer may atomically replace a bad sequence number
  /// with a good segment.
  std::map<std::string, std::string> quarantined_;
  uint64_t stale_segments_removed_ = 0;
  uint64_t compactions_ = 0;
  int64_t last_compaction_micros_ = 0;
};

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_DELTA_LOG_H_
