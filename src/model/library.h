#ifndef GOALREC_MODEL_LIBRARY_H_
#define GOALREC_MODEL_LIBRARY_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "model/types.h"
#include "model/vocabulary.h"

// The association-based goal model of the paper (§4): a goal implementation
// library L = { p = (g, A) } viewed as a hypergraph whose hyperedges are the
// activities A, labelled with the goal g they fulfil. The library maintains
// the paper's four index structures:
//
//   GI-A-idx : implementation id -> the sorted set of action ids it contains
//   GI-G-idx : implementation id -> the goal id it fulfils
//   A-GI-idx : action id -> the sorted list of implementation ids it occurs in
//   G-GI-idx : goal id  -> the sorted list of implementation ids that fulfil it
//
// and answers the space queries of Definitions 4.1/4.2 (Equations 1–2):
// implementation space IS(H), goal space GS(H) and action space AS(H) of a
// user activity H.
//
// Storage layout. Every index is a flat CSR (compressed sparse row) pair —
// one contiguous offsets[] array and one contiguous postings arena — built
// once by LibraryBuilder::Build(). Accessors return spans into the arenas;
// nothing on the query path chases per-row heap pointers, and a built
// library is a handful of flat allocations that never mutate (docs/model.md
// describes the layout; serve/snapshot_manager.h builds on the immutability
// to hot-swap libraries under live traffic).

namespace goalrec::model {

/// One goal implementation p = (g, A) as an owning record. This is the
/// builder-side (and shrinker-side) representation; a built library stores
/// implementations in its CSR arena and hands out ImplementationView.
struct Implementation {
  GoalId goal = kInvalidId;
  IdSet actions;  // sorted, deduplicated
};

/// Read-only view of one implementation inside a built library. `actions`
/// points into the library's postings arena and is valid for the library's
/// lifetime.
struct ImplementationView {
  GoalId goal = kInvalidId;
  std::span<const ActionId> actions;
};

class ImplementationLibrary;

/// Accumulates implementations and interns names, then produces an immutable
/// ImplementationLibrary. The builder is single-use: Build() consumes it.
class LibraryBuilder {
 public:
  LibraryBuilder() = default;

  /// Seeds a builder with an existing library's vocabularies and
  /// implementations (ids preserved), for the extend-and-rebuild pattern:
  /// libraries are immutable, so growing one means copying it into a
  /// builder, adding, and building again — O(total postings). The serving
  /// layer pairs this with SnapshotManager to swap the rebuilt library in
  /// under live queries.
  static LibraryBuilder FromLibrary(const ImplementationLibrary& library);

  /// Interns an action name (idempotent).
  ActionId InternAction(std::string_view name);

  /// Interns a goal name (idempotent).
  GoalId InternGoal(std::string_view name);

  /// Pre-sizes the vocabularies (used by the loaders, which know the file's
  /// cardinality up front).
  void ReserveActions(size_t n);
  void ReserveGoals(size_t n);

  /// Adds implementation (goal, actions) by name. Duplicate action names
  /// within one implementation are collapsed. Empty activities are legal but
  /// inert (they can never join any implementation space). Returns the new
  /// implementation id.
  ImplId AddImplementation(std::string_view goal,
                           const std::vector<std::string>& actions);

  /// Adds an implementation from already-interned ids. `actions` need not be
  /// sorted. Every id must have been interned. Returns the new impl id.
  ImplId AddImplementationIds(GoalId goal, IdSet actions);

  /// Span overload: copies `actions` (e.g. a posting span of another
  /// library) into an owned set first.
  ImplId AddImplementationIds(GoalId goal, std::span<const ActionId> actions) {
    return AddImplementationIds(goal, IdSet(actions.begin(), actions.end()));
  }

  uint32_t num_implementations() const {
    return static_cast<uint32_t>(impls_.size());
  }

  /// Vocabulary sizes so far (the validated loaders enforce their hard caps
  /// against these as they go).
  uint32_t num_actions() const { return actions_.size(); }
  uint32_t num_goals() const { return goals_.size(); }

  /// Finalises the CSR indexes and produces the immutable library.
  ImplementationLibrary Build() &&;

 private:
  Vocabulary actions_;
  Vocabulary goals_;
  std::vector<Implementation> impls_;
};

/// Immutable goal model. Thread-safe for concurrent reads.
class ImplementationLibrary {
 public:
  /// An empty library (no actions, goals or implementations). Useful as a
  /// placeholder before assigning the result of LibraryBuilder::Build().
  ImplementationLibrary() = default;

  // --- structure ------------------------------------------------------------

  uint32_t num_actions() const { return actions_.size(); }
  uint32_t num_goals() const { return goals_.size(); }
  uint32_t num_implementations() const {
    return static_cast<uint32_t>(impl_goals_.size());
  }

  /// GI-A-idx + GI-G-idx: a view of the implementation record for `id`.
  ImplementationView implementation(ImplId id) const {
    return ImplementationView{GoalOf(id), ActionsOf(id)};
  }

  /// GI-G-idx: the goal fulfilled by implementation `id`.
  GoalId GoalOf(ImplId id) const;

  /// GI-A-idx: the activity (sorted action set) of implementation `id`, as a
  /// span into the postings arena.
  std::span<const ActionId> ActionsOf(ImplId id) const;

  /// |A| of implementation `id` — an O(1) offsets difference.
  uint32_t ImplActionCount(ImplId id) const;

  /// |A| of implementation `id` as a double, precomputed at build time so
  /// the Focus completeness kernel divides without an int→double conversion
  /// in the loop. Bit-identical to static_cast<double>(ImplActionCount(id)).
  double ImplActionCountD(ImplId id) const;

  /// Largest |A| across all implementations (0 for an empty library).
  uint32_t max_implementation_size() const { return max_impl_size_; }

  /// Precomputed 1.0 / r for r ≤ max_implementation_size(); Reciprocal(0)
  /// is 0.0. Each entry is the exact IEEE quotient, so Focus closeness
  /// (1 / |A − H|) reads the table instead of dividing per implementation
  /// and stays bit-identical to the division it replaces.
  double Reciprocal(uint32_t r) const;

  /// A-GI-idx: ids of all implementations where action `a` contributes,
  /// sorted ascending. Empty span for actions in no implementation.
  std::span<const ImplId> ImplsOfAction(ActionId a) const;

  /// G-GI-idx: ids of all implementations of goal `g`, sorted ascending.
  std::span<const ImplId> ImplsOfGoal(GoalId g) const;

  // --- space queries (Definitions 4.1/4.2, Equations 1–2) --------------------
  //
  // These are the allocating convenience forms; the steady-state query path
  // goes through core::QueryContext::Create with a pooled
  // core::QueryWorkspace, which computes the same sets into reused buffers.

  /// IS(H): implementations sharing at least one action with `activity`.
  IdSet ImplementationSpace(const Activity& activity) const;

  /// GS(H): goals fulfilled by some implementation in IS(H).
  IdSet GoalSpace(const Activity& activity) const;

  /// GS(a) for a single action.
  IdSet GoalSpaceOfAction(ActionId a) const;

  /// AS(H) = ∪_{a∈H} AS(a), Definition 4.2: actions co-occurring with some
  /// action of `activity` in an implementation, where AS(a) excludes a
  /// itself. Members of H appear only when they co-occur with a *different*
  /// H action.
  IdSet ActionSpace(const Activity& activity) const;

  /// AS(a) for a single action.
  IdSet ActionSpaceOfAction(ActionId a) const;

  /// Candidate actions for recommendation: AS(H) − H (paper §3: recommend
  /// actions the user has not performed).
  IdSet CandidateActions(const Activity& activity) const;

  // --- vocabularies ----------------------------------------------------------

  const Vocabulary& actions() const { return actions_; }
  const Vocabulary& goals() const { return goals_; }

  // --- statistics -------------------------------------------------------------

  /// Action connectivity: average number of implementations an action
  /// participates in, over actions occurring in at least one implementation
  /// (the statistic the paper reports: 1.2K for FoodMart, 3.84 for 43T).
  double ActionConnectivity() const;

  /// Average number of actions per implementation.
  double AvgImplementationLength() const;

 private:
  friend class LibraryBuilder;
  // The delta fold (model/merged_view.cc) fills the CSR arenas directly —
  // copying base rows and renumbering survivors without re-interning names —
  // and must stay bit-identical to LibraryBuilder::Build().
  friend class MergedLibraryView;

  Vocabulary actions_;
  Vocabulary goals_;
  // GI-A-idx: actions of implementation p live at
  // impl_actions_[impl_offsets_[p] .. impl_offsets_[p + 1]).
  std::vector<uint32_t> impl_offsets_;
  std::vector<ActionId> impl_actions_;
  // GI-G-idx: one goal per implementation.
  std::vector<GoalId> impl_goals_;
  // A-GI-idx: postings of action a live at
  // action_postings_[action_offsets_[a] .. action_offsets_[a + 1]).
  std::vector<uint32_t> action_offsets_;
  std::vector<ImplId> action_postings_;
  // G-GI-idx: postings of goal g live at
  // goal_postings_[goal_offsets_[g] .. goal_offsets_[g + 1]).
  std::vector<uint32_t> goal_offsets_;
  std::vector<ImplId> goal_postings_;
  // Build-time precomputation for the scoring kernels (docs/model.md,
  // "Scoring kernels"): per-implementation |A| as a double, the largest
  // |A|, and a 1/r reciprocal table covering r ∈ [0, max_impl_size_].
  std::vector<double> impl_size_d_;
  std::vector<double> reciprocal_;
  uint32_t max_impl_size_ = 0;

  /// Builds the A-GI/G-GI inverted indexes and the kernel precomputation
  /// from the already-filled GI arenas (impl_offsets_/impl_actions_/
  /// impl_goals_) and vocabularies. Shared by LibraryBuilder::Build() and
  /// the delta fold so both produce bit-identical libraries.
  void BuildDerivedIndexes();
};

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_LIBRARY_H_
