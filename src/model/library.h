#ifndef GOALREC_MODEL_LIBRARY_H_
#define GOALREC_MODEL_LIBRARY_H_

#include <span>
#include <string_view>
#include <vector>

#include "model/types.h"
#include "model/vocabulary.h"

// The association-based goal model of the paper (§4): a goal implementation
// library L = { p = (g, A) } viewed as a hypergraph whose hyperedges are the
// activities A, labelled with the goal g they fulfil. The library maintains
// the paper's four index structures:
//
//   GI-A-idx : implementation id -> the sorted set of action ids it contains
//   GI-G-idx : implementation id -> the goal id it fulfils
//   A-GI-idx : action id -> the sorted list of implementation ids it occurs in
//   G-GI-idx : goal id  -> the sorted list of implementation ids that fulfil it
//
// and answers the space queries of Definitions 4.1/4.2 (Equations 1–2):
// implementation space IS(H), goal space GS(H) and action space AS(H) of a
// user activity H.

namespace goalrec::model {

/// One goal implementation p = (g, A).
struct Implementation {
  GoalId goal = kInvalidId;
  IdSet actions;  // sorted, deduplicated
};

class ImplementationLibrary;

/// Accumulates implementations and interns names, then produces an immutable
/// ImplementationLibrary. The builder is single-use: Build() consumes it.
class LibraryBuilder {
 public:
  LibraryBuilder() = default;

  /// Seeds a builder with an existing library's vocabularies and
  /// implementations (ids preserved), for the extend-and-rebuild pattern:
  /// libraries are immutable, so growing one means copying it into a
  /// builder, adding, and building again — O(total postings).
  static LibraryBuilder FromLibrary(const ImplementationLibrary& library);

  /// Interns an action name (idempotent).
  ActionId InternAction(std::string_view name);

  /// Interns a goal name (idempotent).
  GoalId InternGoal(std::string_view name);

  /// Adds implementation (goal, actions) by name. Duplicate action names
  /// within one implementation are collapsed. Empty activities are legal but
  /// inert (they can never join any implementation space). Returns the new
  /// implementation id.
  ImplId AddImplementation(std::string_view goal,
                           const std::vector<std::string>& actions);

  /// Adds an implementation from already-interned ids. `actions` need not be
  /// sorted. Every id must have been interned. Returns the new impl id.
  ImplId AddImplementationIds(GoalId goal, IdSet actions);

  uint32_t num_implementations() const {
    return static_cast<uint32_t>(impls_.size());
  }

  /// Finalises the inverted indexes and produces the immutable library.
  ImplementationLibrary Build() &&;

 private:
  Vocabulary actions_;
  Vocabulary goals_;
  std::vector<Implementation> impls_;
};

/// Immutable goal model. Thread-safe for concurrent reads.
class ImplementationLibrary {
 public:
  /// An empty library (no actions, goals or implementations). Useful as a
  /// placeholder before assigning the result of LibraryBuilder::Build().
  ImplementationLibrary() = default;

  // --- structure ------------------------------------------------------------

  uint32_t num_actions() const { return actions_.size(); }
  uint32_t num_goals() const { return goals_.size(); }
  uint32_t num_implementations() const {
    return static_cast<uint32_t>(impls_.size());
  }

  /// GI-A-idx + GI-G-idx: the implementation record for `id`.
  const Implementation& implementation(ImplId id) const;

  /// GI-G-idx: the goal fulfilled by implementation `id`.
  GoalId GoalOf(ImplId id) const { return implementation(id).goal; }

  /// GI-A-idx: the activity (sorted action set) of implementation `id`.
  const IdSet& ActionsOf(ImplId id) const { return implementation(id).actions; }

  /// A-GI-idx: ids of all implementations where action `a` contributes,
  /// sorted ascending. Empty span for actions in no implementation.
  std::span<const ImplId> ImplsOfAction(ActionId a) const;

  /// G-GI-idx: ids of all implementations of goal `g`, sorted ascending.
  std::span<const ImplId> ImplsOfGoal(GoalId g) const;

  // --- space queries (Definitions 4.1/4.2, Equations 1–2) --------------------

  /// IS(H): implementations sharing at least one action with `activity`.
  IdSet ImplementationSpace(const Activity& activity) const;

  /// GS(H): goals fulfilled by some implementation in IS(H).
  IdSet GoalSpace(const Activity& activity) const;

  /// GS(a) for a single action.
  IdSet GoalSpaceOfAction(ActionId a) const;

  /// AS(H) = ∪_{a∈H} AS(a), Definition 4.2: actions co-occurring with some
  /// action of `activity` in an implementation, where AS(a) excludes a
  /// itself. Members of H appear only when they co-occur with a *different*
  /// H action.
  IdSet ActionSpace(const Activity& activity) const;

  /// AS(a) for a single action.
  IdSet ActionSpaceOfAction(ActionId a) const;

  /// Candidate actions for recommendation: AS(H) − H (paper §3: recommend
  /// actions the user has not performed).
  IdSet CandidateActions(const Activity& activity) const;

  // --- vocabularies ----------------------------------------------------------

  const Vocabulary& actions() const { return actions_; }
  const Vocabulary& goals() const { return goals_; }

  // --- statistics -------------------------------------------------------------

  /// Action connectivity: average number of implementations an action
  /// participates in, over actions occurring in at least one implementation
  /// (the statistic the paper reports: 1.2K for FoodMart, 3.84 for 43T).
  double ActionConnectivity() const;

  /// Average number of actions per implementation.
  double AvgImplementationLength() const;

 private:
  friend class LibraryBuilder;

  Vocabulary actions_;
  Vocabulary goals_;
  std::vector<Implementation> impls_;              // GI-A-idx / GI-G-idx
  std::vector<std::vector<ImplId>> action_impls_;  // A-GI-idx
  std::vector<std::vector<ImplId>> goal_impls_;    // G-GI-idx
};

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_LIBRARY_H_
