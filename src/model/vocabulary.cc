#include "model/vocabulary.h"

#include "util/logging.h"

namespace goalrec::model {

uint32_t Vocabulary::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> Vocabulary::Find(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void Vocabulary::Reserve(size_t n) {
  names_.reserve(n);
  ids_.reserve(n);
}

const std::string& Vocabulary::Name(uint32_t id) const {
  GOALREC_CHECK_LT(id, names_.size())
      << "name id " << id << " out of range (vocabulary has " << names_.size()
      << " entries)";
  return names_[id];
}

}  // namespace goalrec::model
