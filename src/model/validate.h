#ifndef GOALREC_MODEL_VALIDATE_H_
#define GOALREC_MODEL_VALIDATE_H_

#include "model/library.h"
#include "util/status.h"

// Structural validation of an implementation library: confirms every
// invariant the rest of the code base assumes. Builders established these by
// construction, but libraries can also arrive from files or foreign code;
// run ValidateLibrary after loading untrusted data to fail fast with a
// precise diagnostic instead of corrupting a downstream query.

namespace goalrec::model {

/// Checks, in order:
///   * every implementation's goal id is < num_goals;
///   * every implementation's action set is strictly sorted with ids
///     < num_actions;
///   * the A-GI index lists exactly the implementations containing each
///     action, ascending;
///   * the G-GI index lists exactly the implementations of each goal,
///     ascending.
/// Returns OK or kFailedPrecondition naming the first violation.
util::Status ValidateLibrary(const ImplementationLibrary& library);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_VALIDATE_H_
