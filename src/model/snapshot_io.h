#ifndef GOALREC_MODEL_SNAPSHOT_IO_H_
#define GOALREC_MODEL_SNAPSHOT_IO_H_

#include <string>

#include "model/library.h"
#include "model/library_io.h"
#include "util/status.h"

// Crash-consistent snapshot persistence for implementation libraries.
//
// This is the format serving reload paths persist and poll ("*.snap").
// Unlike the text and binary formats (model/library_io.h), it is designed
// for the failure modes of a file being replaced under a live reader:
// truncated writes, torn renames, bit rot. Layout (all integers
// little-endian):
//
//   header   "GRSNAP1\n"  u32 format_version  u32 flags
//   frames   repeated { u32 tag  u64 payload_len  payload
//                       u32 masked_crc32c(tag | payload_len | payload) }
//              tag 1: action vocabulary (u32 count, length-prefixed names)
//              tag 2: goal vocabulary   (same encoding)
//              tag 3: implementations   (u32 count, then per record
//                                        u32 goal, u32 len, len action ids)
//   footer   u64 frames_len  u32 masked_crc32c(all frame bytes)  "GRSNEND\n"
//
// The loader verifies the footer (end magic + whole-body CRC) BEFORE
// parsing any frame, so a torn or truncated write is rejected
// deterministically — there is no prefix of a valid snapshot that is itself
// a valid snapshot. Per-frame CRCs then localise corruption for
// diagnostics. CRCs are masked (LevelDB-style) so a snapshot embedded in a
// CRC-ed transport does not degenerate.
//
// SaveSnapshot is atomic on POSIX: the bytes go to a temp file in the same
// directory, are fsync()ed, renamed over `path`, and the parent directory
// is fsync()ed. A crash at any byte leaves either the old file or the new
// one, never a hybrid. Readers polling `path` therefore see only complete
// snapshots (or, with a non-atomic writer, a file the CRC rejects).
//
// Unlike text round-trips, snapshots preserve vocabularies and numeric ids
// exactly: LoadSnapshotFile(SaveSnapshot(L)) is bit-identical to L.

namespace goalrec::model {

/// Current (and only) snapshot format version.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Serialises `library` into the snapshot wire format (header + frames +
/// footer), returning the bytes. Exposed for tests and for writers that
/// want to corrupt/stage bytes themselves (the chaos harness).
std::string EncodeSnapshot(const ImplementationLibrary& library);

/// Parses snapshot bytes produced by EncodeSnapshot. Verifies the footer
/// CRC before any parsing and every frame CRC during it; allocation is
/// bounded by `options.limits`. `name` is used in diagnostics only.
util::StatusOr<ImplementationLibrary> DecodeSnapshot(
    std::string_view bytes, const std::string& name,
    const LoadOptions& options = {});

/// Writes `library` to `path` crash-consistently: temp file + fsync +
/// rename + parent-directory fsync. On failure the previous `path` content
/// (if any) is untouched.
util::Status SaveSnapshot(const ImplementationLibrary& library,
                          const std::string& path);

/// Loads a snapshot written by SaveSnapshot. Either returns the complete
/// library or fails cleanly (kInvalidArgument for corrupt/torn bytes,
/// kIoError for filesystem trouble) — never a partial library.
util::StatusOr<ImplementationLibrary> LoadSnapshotFile(
    const std::string& path, const LoadOptions& options = {});

/// Writes `bytes` to `path` crash-consistently: same-directory temp file +
/// fsync + rename + parent-directory fsync. A crash at any byte leaves
/// either the old `path` content or the new one, never a hybrid. Shared by
/// SaveSnapshot and the delta-segment writer (model/delta.h).
util::Status AtomicWriteFile(std::string_view bytes, const std::string& path);

/// Reads the whole file into a string, rejecting files over `max_bytes`
/// before the proportional allocation. kIoError for filesystem trouble.
util::StatusOr<std::string> ReadFileToString(const std::string& path,
                                             uint64_t max_bytes);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_SNAPSHOT_IO_H_
