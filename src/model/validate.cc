#include "model/validate.h"

#include <string>

#include "util/set_ops.h"

namespace goalrec::model {

util::Status ValidateLibrary(const ImplementationLibrary& library) {
  // Implementation records.
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    ImplementationView impl = library.implementation(p);
    if (impl.goal >= library.num_goals()) {
      return util::FailedPreconditionError(
          "implementation " + std::to_string(p) + " has goal id " +
          std::to_string(impl.goal) + " >= num_goals");
    }
    if (!util::IsSortedSet(impl.actions)) {
      return util::FailedPreconditionError(
          "implementation " + std::to_string(p) +
          " has an unsorted or duplicated action set");
    }
    for (ActionId a : impl.actions) {
      if (a >= library.num_actions()) {
        return util::FailedPreconditionError(
            "implementation " + std::to_string(p) + " references action " +
            std::to_string(a) + " >= num_actions");
      }
    }
  }

  // A-GI index against the forward records.
  for (ActionId a = 0; a < library.num_actions(); ++a) {
    std::span<const ImplId> postings = library.ImplsOfAction(a);
    if (!util::IsSortedSet(postings)) {
      return util::FailedPreconditionError(
          "A-GI postings of action " + std::to_string(a) +
          " are not strictly ascending");
    }
    for (ImplId p : postings) {
      if (p >= library.num_implementations() ||
          !util::Contains(library.ActionsOf(p), a)) {
        return util::FailedPreconditionError(
            "A-GI postings of action " + std::to_string(a) +
            " reference implementation " + std::to_string(p) +
            " that does not contain it");
      }
    }
  }
  // Posting completeness: every containment appears in the index.
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    for (ActionId a : library.ActionsOf(p)) {
      if (!util::Contains(library.ImplsOfAction(a), p)) {
        return util::FailedPreconditionError(
            "implementation " + std::to_string(p) + " contains action " +
            std::to_string(a) + " but is missing from its A-GI postings");
      }
    }
  }

  // G-GI index.
  size_t goal_posting_total = 0;
  for (GoalId g = 0; g < library.num_goals(); ++g) {
    std::span<const ImplId> postings = library.ImplsOfGoal(g);
    goal_posting_total += postings.size();
    if (!util::IsSortedSet(postings)) {
      return util::FailedPreconditionError(
          "G-GI postings of goal " + std::to_string(g) +
          " are not strictly ascending");
    }
    for (ImplId p : postings) {
      if (p >= library.num_implementations() || library.GoalOf(p) != g) {
        return util::FailedPreconditionError(
            "G-GI postings of goal " + std::to_string(g) +
            " reference implementation " + std::to_string(p) +
            " with a different goal");
      }
    }
  }
  if (goal_posting_total != library.num_implementations()) {
    return util::FailedPreconditionError(
        "G-GI index covers " + std::to_string(goal_posting_total) +
        " implementations, expected " +
        std::to_string(library.num_implementations()));
  }
  return util::Status::Ok();
}

}  // namespace goalrec::model
