#ifndef GOALREC_MODEL_TYPES_H_
#define GOALREC_MODEL_TYPES_H_

#include <cstdint>
#include <limits>

#include "util/set_ops.h"

// Identifier types of the association-based goal model (paper §4). Actions,
// goals and goal implementations each live in their own dense id space,
// assigned by interning tables, so every index is a plain vector of postings.

namespace goalrec::model {

/// Identifier of an action (paper: element of the action set 𝒜).
using ActionId = uint32_t;

/// Identifier of a goal (paper: element of the goal set 𝒢).
using GoalId = uint32_t;

/// Identifier of a goal implementation p = (g, A) in the library L.
using ImplId = uint32_t;

inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/// A set of ids in canonical form: strictly increasing sorted vector.
using IdSet = util::IdVector;

/// A user activity H: the sorted set of actions the user has performed.
using Activity = IdSet;

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_TYPES_H_
