#include "model/library.h"

#include <algorithm>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::model {

LibraryBuilder LibraryBuilder::FromLibrary(
    const ImplementationLibrary& library) {
  LibraryBuilder builder;
  builder.actions_ = library.actions_;
  builder.goals_ = library.goals_;
  builder.impls_ = library.impls_;
  return builder;
}

ActionId LibraryBuilder::InternAction(std::string_view name) {
  return actions_.Intern(name);
}

GoalId LibraryBuilder::InternGoal(std::string_view name) {
  return goals_.Intern(name);
}

ImplId LibraryBuilder::AddImplementation(
    std::string_view goal, const std::vector<std::string>& actions) {
  IdSet ids;
  ids.reserve(actions.size());
  for (const std::string& a : actions) ids.push_back(actions_.Intern(a));
  return AddImplementationIds(goals_.Intern(goal), std::move(ids));
}

ImplId LibraryBuilder::AddImplementationIds(GoalId goal, IdSet actions) {
  GOALREC_CHECK_LT(goal, goals_.size());
  util::Normalize(actions);
  for (ActionId a : actions) GOALREC_CHECK_LT(a, actions_.size());
  ImplId id = static_cast<ImplId>(impls_.size());
  impls_.push_back(Implementation{goal, std::move(actions)});
  return id;
}

ImplementationLibrary LibraryBuilder::Build() && {
  ImplementationLibrary lib;
  lib.actions_ = std::move(actions_);
  lib.goals_ = std::move(goals_);
  lib.impls_ = std::move(impls_);
  lib.action_impls_.resize(lib.actions_.size());
  lib.goal_impls_.resize(lib.goals_.size());
  for (ImplId p = 0; p < lib.impls_.size(); ++p) {
    const Implementation& impl = lib.impls_[p];
    lib.goal_impls_[impl.goal].push_back(p);
    for (ActionId a : impl.actions) lib.action_impls_[a].push_back(p);
  }
  // Postings are already ascending because impls were appended in id order;
  // assert rather than re-sort.
  return lib;
}

const Implementation& ImplementationLibrary::implementation(ImplId id) const {
  GOALREC_CHECK_LT(id, impls_.size());
  return impls_[id];
}

std::span<const ImplId> ImplementationLibrary::ImplsOfAction(
    ActionId a) const {
  GOALREC_CHECK_LT(a, action_impls_.size());
  return action_impls_[a];
}

std::span<const ImplId> ImplementationLibrary::ImplsOfGoal(GoalId g) const {
  GOALREC_CHECK_LT(g, goal_impls_.size());
  return goal_impls_[g];
}

IdSet ImplementationLibrary::ImplementationSpace(
    const Activity& activity) const {
  IdSet result;
  for (ActionId a : activity) {
    if (a >= action_impls_.size()) continue;  // action unseen by the library
    const std::vector<ImplId>& postings = action_impls_[a];
    result.insert(result.end(), postings.begin(), postings.end());
  }
  util::Normalize(result);
  return result;
}

IdSet ImplementationLibrary::GoalSpace(const Activity& activity) const {
  IdSet goals;
  for (ImplId p : ImplementationSpace(activity)) {
    goals.push_back(impls_[p].goal);
  }
  util::Normalize(goals);
  return goals;
}

IdSet ImplementationLibrary::GoalSpaceOfAction(ActionId a) const {
  return GoalSpace(Activity{a});
}

IdSet ImplementationLibrary::ActionSpace(const Activity& activity) const {
  // Union of the actions of every implementation in IS(H) ...
  IdSet space;
  IdSet impl_space = ImplementationSpace(activity);
  for (ImplId p : impl_space) {
    const IdSet& acts = impls_[p].actions;
    space.insert(space.end(), acts.begin(), acts.end());
  }
  util::Normalize(space);
  // ... minus H members that never co-occur with a *different* H action
  // (Definition 4.2 excludes a from AS(a), so h ∈ AS(H) only via another
  // action of H sharing an implementation with it).
  IdSet filtered;
  filtered.reserve(space.size());
  for (ActionId x : space) {
    if (!util::Contains(activity, x)) {
      filtered.push_back(x);
      continue;
    }
    bool co_occurs = false;
    for (ImplId p : action_impls_[x]) {
      const IdSet& acts = impls_[p].actions;
      size_t common = util::IntersectionSize(acts, activity);
      // `acts` contains x ∈ H, so common >= 1; a second common action is a
      // different member of H.
      if (common >= 2) {
        co_occurs = true;
        break;
      }
    }
    if (co_occurs) filtered.push_back(x);
  }
  return filtered;
}

IdSet ImplementationLibrary::ActionSpaceOfAction(ActionId a) const {
  return ActionSpace(Activity{a});
}

IdSet ImplementationLibrary::CandidateActions(const Activity& activity) const {
  return util::Difference(ActionSpace(activity), activity);
}

double ImplementationLibrary::ActionConnectivity() const {
  size_t postings = 0;
  size_t active_actions = 0;
  for (const std::vector<ImplId>& p : action_impls_) {
    if (p.empty()) continue;
    postings += p.size();
    ++active_actions;
  }
  if (active_actions == 0) return 0.0;
  return static_cast<double>(postings) / static_cast<double>(active_actions);
}

double ImplementationLibrary::AvgImplementationLength() const {
  if (impls_.empty()) return 0.0;
  size_t total = 0;
  for (const Implementation& impl : impls_) total += impl.actions.size();
  return static_cast<double>(total) / static_cast<double>(impls_.size());
}

}  // namespace goalrec::model
