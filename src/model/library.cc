#include "model/library.h"

#include <algorithm>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::model {

LibraryBuilder LibraryBuilder::FromLibrary(
    const ImplementationLibrary& library) {
  LibraryBuilder builder;
  builder.actions_ = library.actions_;
  builder.goals_ = library.goals_;
  builder.impls_.reserve(library.num_implementations());
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    std::span<const ActionId> actions = library.ActionsOf(p);
    builder.impls_.push_back(Implementation{
        library.GoalOf(p), IdSet(actions.begin(), actions.end())});
  }
  return builder;
}

ActionId LibraryBuilder::InternAction(std::string_view name) {
  return actions_.Intern(name);
}

GoalId LibraryBuilder::InternGoal(std::string_view name) {
  return goals_.Intern(name);
}

void LibraryBuilder::ReserveActions(size_t n) { actions_.Reserve(n); }

void LibraryBuilder::ReserveGoals(size_t n) { goals_.Reserve(n); }

ImplId LibraryBuilder::AddImplementation(
    std::string_view goal, const std::vector<std::string>& actions) {
  IdSet ids;
  ids.reserve(actions.size());
  for (const std::string& a : actions) ids.push_back(actions_.Intern(a));
  return AddImplementationIds(goals_.Intern(goal), std::move(ids));
}

ImplId LibraryBuilder::AddImplementationIds(GoalId goal, IdSet actions) {
  GOALREC_CHECK_LT(goal, goals_.size());
  util::Normalize(actions);
  for (ActionId a : actions) GOALREC_CHECK_LT(a, actions_.size());
  ImplId id = static_cast<ImplId>(impls_.size());
  impls_.push_back(Implementation{goal, std::move(actions)});
  return id;
}

ImplementationLibrary LibraryBuilder::Build() && {
  ImplementationLibrary lib;
  lib.actions_ = std::move(actions_);
  lib.goals_ = std::move(goals_);
  const size_t num_impls = impls_.size();

  // GI-A-idx / GI-G-idx: pack the per-implementation action sets into one
  // contiguous arena.
  size_t total_postings = 0;
  for (const Implementation& impl : impls_) total_postings += impl.actions.size();
  lib.impl_offsets_.resize(num_impls + 1, 0);
  lib.impl_actions_.reserve(total_postings);
  lib.impl_goals_.reserve(num_impls);
  for (size_t p = 0; p < num_impls; ++p) {
    const Implementation& impl = impls_[p];
    lib.impl_offsets_[p] = static_cast<uint32_t>(lib.impl_actions_.size());
    lib.impl_actions_.insert(lib.impl_actions_.end(), impl.actions.begin(),
                             impl.actions.end());
    lib.impl_goals_.push_back(impl.goal);
  }
  lib.impl_offsets_[num_impls] = static_cast<uint32_t>(lib.impl_actions_.size());

  lib.BuildDerivedIndexes();
  return lib;
}

void ImplementationLibrary::BuildDerivedIndexes() {
  const size_t num_impls = impl_goals_.size();
  const size_t num_actions = actions_.size();
  const size_t num_goals = goals_.size();
  const size_t total_postings = impl_actions_.size();

  // A-GI-idx / G-GI-idx: classic two-pass CSR build — count degrees, prefix
  // sum, then fill with a moving cursor. Postings come out ascending because
  // implementations are visited in id order.
  action_offsets_.assign(num_actions + 1, 0);
  goal_offsets_.assign(num_goals + 1, 0);
  for (size_t p = 0; p < num_impls; ++p) {
    ++goal_offsets_[impl_goals_[p] + 1];
    for (uint32_t at = impl_offsets_[p]; at < impl_offsets_[p + 1]; ++at) {
      ++action_offsets_[impl_actions_[at] + 1];
    }
  }
  for (size_t a = 0; a < num_actions; ++a) {
    action_offsets_[a + 1] += action_offsets_[a];
  }
  for (size_t g = 0; g < num_goals; ++g) {
    goal_offsets_[g + 1] += goal_offsets_[g];
  }
  action_postings_.resize(total_postings);
  goal_postings_.resize(num_impls);
  std::vector<uint32_t> action_cursor(action_offsets_.begin(),
                                      action_offsets_.end() - 1);
  std::vector<uint32_t> goal_cursor(goal_offsets_.begin(),
                                    goal_offsets_.end() - 1);
  for (size_t p = 0; p < num_impls; ++p) {
    goal_postings_[goal_cursor[impl_goals_[p]]++] = static_cast<ImplId>(p);
    for (uint32_t at = impl_offsets_[p]; at < impl_offsets_[p + 1]; ++at) {
      action_postings_[action_cursor[impl_actions_[at]]++] =
          static_cast<ImplId>(p);
    }
  }

  // Kernel precomputation: |A| per implementation as a double and the 1/r
  // reciprocal table. Both are exact IEEE values (int→double conversion and
  // division computed once here), so the kernels that read them stay
  // bit-identical to code that computes them inline.
  impl_size_d_.clear();
  impl_size_d_.reserve(num_impls);
  max_impl_size_ = 0;
  for (size_t p = 0; p < num_impls; ++p) {
    uint32_t size = impl_offsets_[p + 1] - impl_offsets_[p];
    max_impl_size_ = std::max(max_impl_size_, size);
    impl_size_d_.push_back(static_cast<double>(size));
  }
  reciprocal_.assign(static_cast<size_t>(max_impl_size_) + 1, 0.0);
  for (uint32_t r = 1; r <= max_impl_size_; ++r) {
    reciprocal_[r] = 1.0 / static_cast<double>(r);
  }
}

uint32_t ImplementationLibrary::ImplActionCount(ImplId id) const {
  GOALREC_CHECK_LT(id, impl_goals_.size())
      << "implementation id " << id << " out of range (library has "
      << impl_goals_.size() << " implementations)";
  return impl_offsets_[id + 1] - impl_offsets_[id];
}

double ImplementationLibrary::ImplActionCountD(ImplId id) const {
  GOALREC_CHECK_LT(id, impl_size_d_.size())
      << "implementation id " << id << " out of range (library has "
      << impl_size_d_.size() << " implementations)";
  return impl_size_d_[id];
}

double ImplementationLibrary::Reciprocal(uint32_t r) const {
  GOALREC_CHECK_LT(r, reciprocal_.size())
      << "reciprocal index " << r << " beyond the largest implementation ("
      << max_impl_size_ << " actions)";
  return reciprocal_[r];
}

GoalId ImplementationLibrary::GoalOf(ImplId id) const {
  GOALREC_CHECK_LT(id, impl_goals_.size())
      << "implementation id " << id << " out of range (library has "
      << impl_goals_.size() << " implementations)";
  return impl_goals_[id];
}

std::span<const ActionId> ImplementationLibrary::ActionsOf(ImplId id) const {
  GOALREC_CHECK_LT(id, impl_goals_.size())
      << "implementation id " << id << " out of range (library has "
      << impl_goals_.size() << " implementations)";
  return std::span<const ActionId>(impl_actions_.data() + impl_offsets_[id],
                                   impl_offsets_[id + 1] - impl_offsets_[id]);
}

std::span<const ImplId> ImplementationLibrary::ImplsOfAction(
    ActionId a) const {
  GOALREC_CHECK_LT(a, actions_.size())
      << "action id " << a << " out of range (library has "
      << actions_.size() << " actions)";
  return std::span<const ImplId>(
      action_postings_.data() + action_offsets_[a],
      action_offsets_[a + 1] - action_offsets_[a]);
}

std::span<const ImplId> ImplementationLibrary::ImplsOfGoal(GoalId g) const {
  GOALREC_CHECK_LT(g, goals_.size())
      << "goal id " << g << " out of range (library has " << goals_.size()
      << " goals)";
  return std::span<const ImplId>(goal_postings_.data() + goal_offsets_[g],
                                 goal_offsets_[g + 1] - goal_offsets_[g]);
}

IdSet ImplementationLibrary::ImplementationSpace(
    const Activity& activity) const {
  IdSet result;
  for (ActionId a : activity) {
    if (a >= actions_.size()) continue;  // action unseen by the library
    std::span<const ImplId> postings = ImplsOfAction(a);
    result.insert(result.end(), postings.begin(), postings.end());
  }
  util::Normalize(result);
  return result;
}

IdSet ImplementationLibrary::GoalSpace(const Activity& activity) const {
  IdSet goals;
  for (ImplId p : ImplementationSpace(activity)) {
    goals.push_back(impl_goals_[p]);
  }
  util::Normalize(goals);
  return goals;
}

IdSet ImplementationLibrary::GoalSpaceOfAction(ActionId a) const {
  return GoalSpace(Activity{a});
}

IdSet ImplementationLibrary::ActionSpace(const Activity& activity) const {
  // Union of the actions of every implementation in IS(H) ...
  IdSet space;
  IdSet impl_space = ImplementationSpace(activity);
  for (ImplId p : impl_space) {
    std::span<const ActionId> acts = ActionsOf(p);
    space.insert(space.end(), acts.begin(), acts.end());
  }
  util::Normalize(space);
  // ... minus H members that never co-occur with a *different* H action
  // (Definition 4.2 excludes a from AS(a), so h ∈ AS(H) only via another
  // action of H sharing an implementation with it).
  IdSet filtered;
  filtered.reserve(space.size());
  for (ActionId x : space) {
    if (!util::Contains(activity, x)) {
      filtered.push_back(x);
      continue;
    }
    bool co_occurs = false;
    for (ImplId p : ImplsOfAction(x)) {
      size_t common = util::IntersectionSize(ActionsOf(p), activity);
      // ActionsOf(p) contains x ∈ H, so common >= 1; a second common action
      // is a different member of H.
      if (common >= 2) {
        co_occurs = true;
        break;
      }
    }
    if (co_occurs) filtered.push_back(x);
  }
  return filtered;
}

IdSet ImplementationLibrary::ActionSpaceOfAction(ActionId a) const {
  return ActionSpace(Activity{a});
}

IdSet ImplementationLibrary::CandidateActions(const Activity& activity) const {
  return util::Difference(ActionSpace(activity), activity);
}

double ImplementationLibrary::ActionConnectivity() const {
  size_t postings = action_postings_.size();
  size_t active_actions = 0;
  for (size_t a = 0; a + 1 < action_offsets_.size(); ++a) {
    if (action_offsets_[a + 1] > action_offsets_[a]) ++active_actions;
  }
  if (active_actions == 0) return 0.0;
  return static_cast<double>(postings) / static_cast<double>(active_actions);
}

double ImplementationLibrary::AvgImplementationLength() const {
  if (impl_goals_.empty()) return 0.0;
  return static_cast<double>(impl_actions_.size()) /
         static_cast<double>(impl_goals_.size());
}

}  // namespace goalrec::model
