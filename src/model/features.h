#ifndef GOALREC_MODEL_FEATURES_H_
#define GOALREC_MODEL_FEATURES_H_

#include <cstdint>
#include <vector>

#include "model/types.h"

// Domain-specific action features — for FoodMart, the 128 product
// (sub)categories ("baking goods", "seafood", ...). The content-based
// baseline profiles users in this space, and Table 5 measures pairwise
// feature similarity of recommended actions. The 43T dataset has no widely
// accepted features (paper §6), so its feature table is empty.

namespace goalrec::model {

/// Sparse binary feature assignment: features[a] is the sorted set of
/// feature ids describing action a (single-label for FoodMart products, but
/// multi-label assignments are supported).
struct ActionFeatureTable {
  std::vector<IdSet> features;
  uint32_t num_features = 0;

  uint32_t num_actions() const {
    return static_cast<uint32_t>(features.size());
  }
  bool empty() const { return features.empty(); }
};

/// Cosine similarity between the binary feature sets of actions `a` and `b`
/// (the pairwise action similarity of Table 5). Zero if either set is empty.
double FeatureSimilarity(const ActionFeatureTable& table, ActionId a,
                         ActionId b);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_FEATURES_H_
