#include "model/delta_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "model/snapshot_io.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace goalrec::model {
namespace {

constexpr char kBaseFileName[] = "base.snap";
constexpr char kSegmentSuffix[] = ".sdelta";

std::string SegmentFileName(uint32_t base_crc, uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%08x-%06llu%s", base_crc,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return buf;
}

/// Parses "seg-<8 hex>-<digits>.sdelta"; false for anything else.
bool ParseSegmentFileName(std::string_view name, uint32_t* base_crc,
                          uint64_t* seq) {
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = kSegmentSuffix;
  if (name.size() < kPrefix.size() + 8 + 1 + 1 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  std::string_view body =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (body.size() < 8 + 2 || body[8] != '-') return false;
  uint32_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    char c = body[i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    crc = (crc << 4) | digit;
  }
  uint64_t s = 0;
  std::string_view digits = body.substr(9);
  if (digits.empty() || digits.size() > 19) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    s = s * 10 + static_cast<uint64_t>(c - '0');
  }
  *base_crc = crc;
  *seq = s;
  return true;
}

util::Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return util::IoError("open directory " + dir + ": " +
                         std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    util::Status status =
        util::IoError("fsync directory " + dir + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return util::Status::Ok();
}

struct DirScan {
  /// Current-chain segment files by sequence number.
  std::map<uint64_t, std::string> chain;  // seq -> filename
  /// Parseable segment files of another chain (stale after compaction).
  std::vector<std::string> stale;
  /// Files ending in .sdelta whose name does not parse.
  std::vector<std::string> foreign;
};

DirScan ScanSegments(const std::string& dir, uint32_t base_crc) {
  DirScan scan;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < sizeof(kSegmentSuffix) ||
        name.substr(name.size() - (sizeof(kSegmentSuffix) - 1)) !=
            kSegmentSuffix) {
      continue;
    }
    uint32_t crc = 0;
    uint64_t seq = 0;
    if (!ParseSegmentFileName(name, &crc, &seq)) {
      scan.foreign.push_back(name);
      continue;
    }
    if (crc != base_crc) {
      scan.stale.push_back(name);
      continue;
    }
    scan.chain[seq] = name;
  }
  return scan;
}

}  // namespace

DeltaLog::DeltaLog(std::string dir, DeltaLogOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

std::string DeltaLog::base_path() const { return dir_ + "/" + kBaseFileName; }

std::string DeltaLog::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + SegmentFileName(view_->base_crc32c(), seq);
}

util::StatusOr<DeltaLog> DeltaLog::Open(std::string dir,
                                        DeltaLogOptions options) {
  DeltaLog log(std::move(dir), std::move(options));
  if (util::Status s = log.Reopen(); !s.ok()) return s;
  return log;
}

util::StatusOr<DeltaLog> DeltaLog::Create(std::string dir,
                                          const ImplementationLibrary& library,
                                          DeltaLogOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::IoError("create directory " + dir + ": " + ec.message());
  }
  util::Status saved = SaveSnapshot(library, dir + "/" + kBaseFileName);
  if (!saved.ok()) return saved;
  return Open(std::move(dir), std::move(options));
}

util::Status DeltaLog::Reopen() {
  const std::string base = base_path();
  util::StatusOr<std::string> bytes =
      ReadFileToString(base, options_.load.limits.max_file_bytes);
  if (!bytes.ok()) return bytes.status();
  util::StatusOr<ImplementationLibrary> library =
      DecodeSnapshot(bytes.value(), base, options_.load);
  if (!library.ok()) return library.status();
  view_.emplace(std::move(library).value(), util::Crc32c(bytes.value()));
  quarantined_.clear();
  CatchUpChain();
  return util::Status::Ok();
}

uint64_t DeltaLog::CatchUpChain() {
  DirScan scan = ScanSegments(dir_, view_->base_crc32c());
  quarantined_.clear();
  for (const std::string& name : scan.foreign) {
    quarantined_[name] = "unrecognised segment filename";
  }
  for (const std::string& name : scan.stale) {
    if (options_.remove_stale_segments) {
      if (::unlink((dir_ + "/" + name).c_str()) == 0) {
        ++stale_segments_removed_;
      }
    } else {
      quarantined_[name] = "stale chain (awaiting compaction cleanup)";
    }
  }
  if (options_.remove_stale_segments && !scan.stale.empty()) {
    // Persist the cleanup; best effort — a crash simply re-runs it.
    FsyncDir(dir_);
  }

  uint64_t applied = 0;
  uint64_t seq = view_->next_chain_seq();
  std::string broken_reason;
  for (;; ++seq) {
    auto it = scan.chain.find(seq);
    if (it == scan.chain.end()) break;
    const std::string path = dir_ + "/" + it->second;
    util::StatusOr<std::string> bytes =
        ReadFileToString(path, options_.load.limits.max_file_bytes);
    if (!bytes.ok()) {
      broken_reason = bytes.status().ToString();
      quarantined_[it->second] = broken_reason;
      break;
    }
    // Header first (36 bytes): a stale or out-of-order segment is rejected
    // here, before any frame is parsed.
    util::StatusOr<DeltaHeader> header = ReadDeltaHeader(bytes.value(), path);
    util::Status status = header.ok() ? util::Status::Ok() : header.status();
    if (status.ok()) {
      DeltaHeader want = view_->NextHeader();
      if (header.value().base_crc32c != want.base_crc32c ||
          header.value().chain_seq != want.chain_seq ||
          header.value().prev_crc32c != want.prev_crc32c) {
        status = util::FailedPreconditionError(
            path + ": segment header does not chain to the current view");
      }
    }
    if (status.ok()) {
      util::StatusOr<DeltaSegment> segment =
          DecodeDeltaSegment(bytes.value(), path, options_.load);
      status = segment.ok()
                   ? view_->ApplySegment(segment.value(),
                                         util::Crc32c(bytes.value()), path)
                   : segment.status();
    }
    if (!status.ok()) {
      broken_reason = status.ToString();
      quarantined_[it->second] = broken_reason;
      break;
    }
    ++applied;
  }

  // Everything past the break is unreachable: either the chain has a gap at
  // `seq` or the segment there was rejected. The files stay on disk — a
  // restarted writer rewrites the bad sequence number atomically.
  for (const auto& [s, name] : scan.chain) {
    if (s <= seq) continue;
    quarantined_[name] =
        broken_reason.empty()
            ? "unreachable: chain has no segment at seq " + std::to_string(seq)
            : "unreachable: chain broken at seq " + std::to_string(seq);
  }
  return applied;
}

util::Status DeltaLog::Append(const DeltaOps& ops) {
  DeltaHeader header = view_->NextHeader();
  DeltaSegment segment{header, ops};
  const std::string path = SegmentPath(header.chain_seq);
  if (util::Status s = view_->ValidateSegment(segment, path); !s.ok()) {
    return s;
  }
  std::string bytes = EncodeDeltaSegment(header, ops);
  if (util::Status s = AtomicWriteFile(bytes, path); !s.ok()) return s;
  if (util::Status s =
          view_->ApplySegment(segment, util::Crc32c(bytes), path);
      !s.ok()) {
    return util::InternalError(
        path + ": segment validated but failed to apply: " + s.ToString());
  }
  return util::Status::Ok();
}

util::Status DeltaLog::Compact() {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t consumed = view_->stats().segments_applied;
  const uint32_t old_crc = view_->base_crc32c();

  std::string bytes = EncodeSnapshot(view_->library());
  const uint32_t new_crc = util::Crc32c(bytes);
  if (util::Status s = AtomicWriteFile(bytes, base_path()); !s.ok()) return s;

  // The consumed segments are folded into the published base; remove them.
  // A crash before (or during) these unlinks leaves files whose embedded
  // CRC no longer matches the base — recognisably stale, cleaned on the
  // next Open/CatchUpChain.
  for (uint64_t seq = 1; seq <= consumed; ++seq) {
    ::unlink((dir_ + "/" + SegmentFileName(old_crc, seq)).c_str());
  }
  if (util::Status s = FsyncDir(dir_); !s.ok()) return s;

  // Re-anchor the chain at the new base. The merged library IS the new base
  // (same bytes just published), so no re-decode is needed.
  ImplementationLibrary merged = view_->library();
  view_.emplace(std::move(merged), new_crc);
  quarantined_.clear();
  CatchUpChain();  // cleans any remaining stale files; no chain yet

  ++compactions_;
  last_compaction_micros_ =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  return util::Status::Ok();
}

util::StatusOr<DeltaLog::PollResult> DeltaLog::Poll() {
  PollResult result;
  util::StatusOr<std::string> bytes =
      ReadFileToString(base_path(), options_.load.limits.max_file_bytes);
  if (!bytes.ok()) return bytes.status();
  const uint32_t crc = util::Crc32c(bytes.value());
  if (crc != view_->base_crc32c()) {
    // The writer re-anchored (compaction). Decode the new base before
    // touching the view: a torn non-atomic publish keeps the old view
    // serving and surfaces the error to the caller.
    util::StatusOr<ImplementationLibrary> library =
        DecodeSnapshot(bytes.value(), base_path(), options_.load);
    if (!library.ok()) return library.status();
    view_.emplace(std::move(library).value(), crc);
    quarantined_.clear();
    result.reopened_base = true;
  }
  result.segments_applied = CatchUpChain();
  return result;
}

DeltaLogStats DeltaLog::stats() const {
  DeltaLogStats stats;
  stats.view = view_->stats();
  stats.segments_active = stats.view.segments_applied;
  stats.quarantined_segments = quarantined_.size();
  stats.stale_segments_removed = stale_segments_removed_;
  stats.compactions = compactions_;
  stats.last_compaction_micros = last_compaction_micros_;
  return stats;
}

std::vector<QuarantinedSegment> DeltaLog::quarantined() const {
  std::vector<QuarantinedSegment> out;
  out.reserve(quarantined_.size());
  for (const auto& [file, reason] : quarantined_) {
    out.push_back(QuarantinedSegment{file, reason});
  }
  return out;
}

}  // namespace goalrec::model
