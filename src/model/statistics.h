#ifndef GOALREC_MODEL_STATISTICS_H_
#define GOALREC_MODEL_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "model/library.h"

// Descriptive statistics of a goal model — the quantities the paper reports
// when characterising its two datasets (§6, "Dataset Description") and that
// drive the complexity analysis of §5.4.

namespace goalrec::model {

struct LibraryStats {
  uint32_t num_actions = 0;
  uint32_t num_goals = 0;
  uint32_t num_implementations = 0;
  /// Actions occurring in at least one implementation.
  uint32_t active_actions = 0;
  /// Mean implementations per active action (paper: "connectivity").
  double connectivity = 0.0;
  /// Largest number of implementations any single action occurs in.
  uint32_t max_connectivity = 0;
  /// Mean actions per implementation.
  double avg_implementation_length = 0.0;
  uint32_t max_implementation_length = 0;
  /// Mean implementations per goal (alternative ways to fulfil a goal).
  double avg_implementations_per_goal = 0.0;
  /// Estimated resident size of the index structures in bytes: the forward
  /// implementation records (GI-A/GI-G) plus the inverted postings
  /// (A-GI/G-GI), excluding the name tables.
  size_t index_bytes = 0;
};

/// Computes all statistics in one pass over the library.
LibraryStats ComputeStats(const ImplementationLibrary& library);

/// Multi-line human-readable rendering for reports and examples.
std::string StatsToString(const LibraryStats& stats);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_STATISTICS_H_
