#include "model/subset.h"

#include "util/set_ops.h"

namespace goalrec::model {

ImplementationLibrary FilterByGoal(const ImplementationLibrary& library,
                                   const GoalPredicate& keep) {
  LibraryBuilder builder;
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    GoalId goal = library.GoalOf(p);
    if (!keep(goal, library.goals().Name(goal))) continue;
    std::vector<std::string> actions;
    actions.reserve(library.ActionsOf(p).size());
    for (ActionId a : library.ActionsOf(p)) {
      actions.push_back(library.actions().Name(a));
    }
    builder.AddImplementation(library.goals().Name(goal), actions);
  }
  return std::move(builder).Build();
}

ImplementationLibrary FilterByGoalIds(const ImplementationLibrary& library,
                                      const IdSet& goals) {
  return FilterByGoal(library, [&goals](GoalId goal, const std::string&) {
    return util::Contains(goals, goal);
  });
}

}  // namespace goalrec::model
