#include "model/export_dot.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/set_ops.h"

namespace goalrec::model {
namespace {

// DOT string literals: escape quotes and backslashes.
std::string Quote(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string ToDot(const ImplementationLibrary& library,
                  const DotOptions& options) {
  std::ostringstream out;
  out << "graph " << Quote(options.graph_name) << " {\n";
  out << "  graph [rankdir=LR];\n";
  out << "  node [fontsize=10];\n";

  auto keep = [&](GoalId g) {
    return options.goals.empty() || util::Contains(options.goals, g);
  };

  // (goal, action) -> number of implementations of that goal containing the
  // action. std::map keeps the output deterministic.
  std::map<std::pair<GoalId, ActionId>, uint32_t> edges;
  IdSet used_goals;
  IdSet used_actions;
  for (ImplId p = 0; p < library.num_implementations(); ++p) {
    GoalId g = library.GoalOf(p);
    if (!keep(g)) continue;
    used_goals.push_back(g);
    for (ActionId a : library.ActionsOf(p)) {
      ++edges[{g, a}];
      used_actions.push_back(a);
    }
  }
  util::Normalize(used_goals);
  util::Normalize(used_actions);

  for (GoalId g : used_goals) {
    out << "  g" << g << " [shape=box, style=filled, fillcolor=lightblue, "
        << "label=" << Quote(library.goals().Name(g)) << "];\n";
  }
  for (ActionId a : used_actions) {
    out << "  a" << a << " [shape=ellipse, label="
        << Quote(library.actions().Name(a)) << "];\n";
  }
  for (const auto& [edge, count] : edges) {
    out << "  g" << edge.first << " -- a" << edge.second;
    if (count > 1) out << " [label=\"x" << count << "\"]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

util::Status ExportDot(const ImplementationLibrary& library,
                       const std::string& path, const DotOptions& options) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << ToDot(library, options);
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace goalrec::model
