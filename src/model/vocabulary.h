#ifndef GOALREC_MODEL_VOCABULARY_H_
#define GOALREC_MODEL_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

// String-interning table mapping external names to dense ids. Instances back
// the paper's A-idx (action dictionary) and G-idx (goal dictionary).

namespace goalrec::model {

class Vocabulary {
 public:
  /// Returns the id of `name`, interning it if unseen. Ids are assigned
  /// densely in first-seen order starting from 0. Heterogeneous lookup: the
  /// probe never constructs a temporary std::string — a copy is made only
  /// when the name is genuinely new.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` if already interned. Like Intern, the lookup
  /// is allocation-free.
  std::optional<uint32_t> Find(std::string_view name) const;

  /// Pre-sizes both the name table and the id map for `n` entries. The
  /// loaders call this with the file's cardinality so bulk interning does
  /// not rehash/reallocate its way up.
  void Reserve(size_t n);

  /// Returns the name for `id`. Requires id < size().
  const std::string& Name(uint32_t id) const;

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }
  bool empty() const { return names_.empty(); }

 private:
  // Heterogeneous (string_view) lookup: Find takes no temporary-allocation
  // hit, which matters when resolving large activity CSVs.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      ids_;
};

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_VOCABULARY_H_
