#ifndef GOALREC_MODEL_SHARDING_H_
#define GOALREC_MODEL_SHARDING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/library.h"
#include "model/snapshot.h"
#include "model/types.h"

// Goal-partitioned library sharding. A ShardedSnapshot splits one
// ImplementationLibrary into N per-shard immutable CSR libraries so the
// serving layer can fan a query out across shards and merge per-shard
// results at the root (serve/sharded.h).
//
// The partition unit is the GOAL, not the implementation: every
// implementation of a goal lands on that goal's shard. This is the property
// the bit-identical merge rests on (docs/model.md, "Partitioning"):
//
//   * GS(H) partitions disjointly across shards, so Best Match's goal-space
//     profile decomposes into per-shard sub-vectors and every distance is a
//     sum of exact-integer per-shard partials;
//   * |A_p ∩ H| is computed entirely within p's shard, so Focus scores and
//     Breadth's per-implementation credits are bit-identical to the
//     unsharded kernels;
//   * an action's global posting count is the sum of its per-shard posting
//     counts (each implementation lives on exactly one shard).
//
// Id spaces. Every shard re-interns the base library's full action and goal
// vocabularies in base id order, so action/goal ids are IDENTICAL across
// the base and all shards — queries and merged results never translate
// them. Implementation ids are shard-local; the snapshot carries the stable
// logical→(shard, local) map and its per-shard inverse. Local ids are
// assigned in ascending logical order, so (score desc, local id asc) within
// a shard equals (score desc, logical id asc) — the tie order the root
// merge preserves.

namespace goalrec::model {

/// Built-in goal→shard assignment policies.
enum class PartitionPolicy {
  /// Default: splitmix64 hash of the goal id, modulo shard count. Balanced
  /// for adversarially clustered goal ids.
  kHashByGoal,
  /// goal id modulo shard count. Deterministically striped; useful in tests
  /// that want to pin which shard a goal lands on.
  kModuloGoal,
};

const char* PartitionPolicyName(PartitionPolicy policy);

struct ShardingOptions {
  PartitionPolicy policy = PartitionPolicy::kHashByGoal;
  /// Overrides `policy` when set: full custom goal→shard assignment. Must
  /// return a value < num_shards for every goal id < num_goals. The library
  /// reference allows name-based policies (goal ids renumber across
  /// reloads; names are the stable vocabulary).
  std::function<uint32_t(GoalId, const ImplementationLibrary&,
                         uint32_t num_shards)>
      custom;
  /// Label reported on statusz for a custom policy.
  std::string custom_name = "custom";
};

/// One library, partitioned by goal into `num_shards` immutable per-shard
/// libraries. Shard libraries share the base vocabularies (re-interned in
/// base id order), so action and goal ids are base ids everywhere; only
/// implementation ids are shard-local. Immutable after construction.
struct ShardedSnapshot {
  /// The unpartitioned library this snapshot was built from. Not owned:
  /// the caller (ServingSnapshot, a test fixture) must keep it alive for
  /// the snapshot's lifetime. The root uses it for the popularity floor
  /// and Best Match's dense-fallback path.
  const ImplementationLibrary* base = nullptr;

  /// Per-shard libraries, index = shard id. Never empty; a shard may hold
  /// zero implementations when goals are fewer than shards.
  std::vector<std::shared_ptr<const LibrarySnapshot>> shards;

  /// Logical (base) implementation id → owning shard / local id there.
  std::vector<uint32_t> impl_shard;
  std::vector<uint32_t> impl_local;
  /// Per-shard inverse: local implementation id → logical id. Strictly
  /// increasing per shard (locals are assigned in ascending logical order).
  std::vector<std::vector<uint32_t>> local_to_logical;
  /// Goal id → owning shard (the materialised partition policy).
  std::vector<uint32_t> goal_shard;

  uint32_t num_shards = 0;
  /// Display name of the policy that produced goal_shard.
  std::string policy_name;
  /// Version of the base snapshot this partition was derived from (0 when
  /// built from a bare library).
  uint64_t base_version = 0;

  uint32_t shard_of_impl(ImplId logical) const { return impl_shard[logical]; }
  uint32_t local_of_impl(ImplId logical) const { return impl_local[logical]; }
  ImplId logical_of(uint32_t shard, uint32_t local) const {
    return local_to_logical[shard][local];
  }
  const ImplementationLibrary& shard_library(uint32_t shard) const {
    return shards[shard]->library;
  }
};

/// Partitions `base` into `num_shards` per-shard libraries (num_shards >= 1;
/// clamped to >= 1). `base` must outlive the returned snapshot.
/// `base_version` stamps ShardedSnapshot::base_version for audit trails.
std::shared_ptr<const ShardedSnapshot> BuildShardedSnapshot(
    const ImplementationLibrary& base, uint32_t num_shards,
    const ShardingOptions& options = {}, uint64_t base_version = 0);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_SHARDING_H_
