#ifndef GOALREC_MODEL_WIRE_FORMAT_H_
#define GOALREC_MODEL_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/crc32c.h"
#include "util/status.h"

// Internal little-endian framing helpers shared by the snapshot codec
// (model/snapshot_io.cc) and the delta segment codec (model/delta.cc). Both
// formats use the same discipline: masked-CRC32C frames between a fixed
// header and a footer that carries the frame-region length, a whole-body
// CRC, and an end magic — verified before any frame is parsed, so no strict
// prefix of a valid file is itself valid. Not part of the public model API.

namespace goalrec::model::wire {

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, sizeof(buf));
}

inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, sizeof(buf));
}

inline uint32_t ReadU32At(std::string_view bytes, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

inline uint64_t ReadU64At(std::string_view bytes, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

// tag + payload_len + crc
inline constexpr size_t kFrameOverhead =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);

/// Appends one frame: tag, payload length, payload, masked CRC over the
/// first three (so a frame shifted or spliced from another file fails its
/// own check even if the payload is intact).
inline void AppendFrame(std::string* out, uint32_t tag,
                        const std::string& payload) {
  size_t frame_start = out->size();
  AppendU32(out, tag);
  AppendU64(out, payload.size());
  out->append(payload);
  uint32_t crc = util::Crc32c(
      std::string_view(out->data() + frame_start, out->size() - frame_start));
  AppendU32(out, util::MaskCrc32c(crc));
}

/// Walks the verified frame region, checking each frame CRC (localising
/// corruption the body CRC would have caught anyway) and handing each
/// (tag, payload) to `on_frame`. `region_offset` is where `frames` starts in
/// the whole file, for diagnostics. Unknown-tag policy belongs to the
/// caller's on_frame.
template <typename OnFrame>
util::Status WalkFrames(std::string_view frames, size_t region_offset,
                        const std::string& name, OnFrame&& on_frame) {
  size_t at = 0;
  while (at < frames.size()) {
    if (frames.size() - at < kFrameOverhead) {
      return util::InvalidArgumentError(
          name + ": trailing garbage after last frame at offset " +
          std::to_string(region_offset + at));
    }
    uint32_t tag = ReadU32At(frames, at);
    uint64_t payload_len = ReadU64At(frames, at + sizeof(uint32_t));
    size_t payload_at = at + sizeof(uint32_t) + sizeof(uint64_t);
    if (payload_len > frames.size() - payload_at - sizeof(uint32_t)) {
      return util::InvalidArgumentError(
          name + ": frame at offset " + std::to_string(region_offset + at) +
          " declares " + std::to_string(payload_len) +
          " payload bytes past the end of the body");
    }
    std::string_view framed = frames.substr(at, payload_at - at + payload_len);
    uint32_t frame_crc =
        util::UnmaskCrc32c(ReadU32At(frames, payload_at + payload_len));
    if (util::Crc32c(framed) != frame_crc) {
      return util::InvalidArgumentError(
          name + ": frame CRC mismatch at offset " +
          std::to_string(region_offset + at));
    }
    std::string_view payload = frames.substr(payload_at, payload_len);
    if (util::Status s = on_frame(tag, payload, region_offset + at); !s.ok()) {
      return s;
    }
    at = payload_at + payload_len + sizeof(uint32_t);
  }
  return util::Status::Ok();
}

/// Forward cursor over payload bytes with bounds-checked reads; every
/// failure carries the byte offset for diagnostics.
class Cursor {
 public:
  Cursor(std::string_view bytes, const std::string& name)
      : bytes_(bytes), name_(name) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  util::Status ReadU32(uint32_t* v, const char* what) {
    if (remaining() < sizeof(uint32_t)) return Truncated(what);
    *v = ReadU32At(bytes_, pos_);
    pos_ += sizeof(uint32_t);
    return util::Status::Ok();
  }

  util::Status ReadBytes(std::string_view* out, size_t n, const char* what) {
    if (remaining() < n) return Truncated(what);
    *out = bytes_.substr(pos_, n);
    pos_ += n;
    return util::Status::Ok();
  }

 private:
  util::Status Truncated(const char* what) const {
    return util::InvalidArgumentError(name_ + ": truncated " +
                                      std::string(what) + " at offset " +
                                      std::to_string(pos_));
  }

  std::string_view bytes_;
  const std::string& name_;
  size_t pos_ = 0;
};

}  // namespace goalrec::model::wire

#endif  // GOALREC_MODEL_WIRE_FORMAT_H_
