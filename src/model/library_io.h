#ifndef GOALREC_MODEL_LIBRARY_IO_H_
#define GOALREC_MODEL_LIBRARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/library.h"
#include "model/snapshot.h"
#include "util/retry.h"
#include "util/status.h"

// Serialisation of implementation libraries.
//
// Text format (one implementation per line, tab-separated):
//   # goalrec-library v1            <- required header
//   <goal name>\t<action>\t<action>...
// Lines starting with '#' after the header are comments.
//
// Binary format: compact length-prefixed encoding for large synthetic
// libraries (the Figure 7 scaling sweep reaches millions of implementations).
//
// Caveats of the text format: ids are assigned in file order, so a
// save/load round-trip preserves names and structure but not numeric ids;
// and actions/goals interned but never referenced by an implementation are
// not written (they are unreachable by every query anyway). The binary
// format preserves both the full vocabularies and the exact ids. The
// checksummed snapshot format (model/snapshot_io.h) is the crash-safe
// variant serving reload paths should persist.
//
// Validation. Library files are untrusted input — they arrive from text
// miners, generators, other processes mid-write. Every loader validates
// record-by-record against LoadOptions: hard caps bound what a hostile
// declared count can make the parser allocate, and per-record checks catch
// malformed lines with file/line/token provenance. Two modes:
//
//   * kStrict (default): the first bad record fails the whole load with a
//     precise diagnostic ("path:line: reason near 'token'").
//   * kQuarantine: bad records are dropped, recorded in the LoadReport, and
//     the rest of the file loads. For operators who would rather serve
//     99.9% of a library than none of it.
//
// Hard caps (LoadLimits) are never quarantinable: a file claiming 2^32
// implementations is rejected outright in both modes, before any
// proportional allocation happens.

namespace goalrec::model {

/// Upper bounds a load is allowed to allocate towards. All checks happen
/// BEFORE the proportional allocation, so an adversarial header cannot OOM
/// the parser. Defaults are far above any real library but far below
/// memory-exhaustion scale.
struct LoadLimits {
  uint64_t max_file_bytes = 1ull << 32;       // 4 GiB
  uint32_t max_actions = 1u << 26;            // 67M interned action names
  uint32_t max_goals = 1u << 26;
  uint32_t max_implementations = 1u << 27;    // 134M records
  uint32_t max_actions_per_impl = 1u << 16;   // 65k actions in one activity
  uint32_t max_name_bytes = 4096;             // one interned name
};

enum class ValidationMode {
  kStrict,      // first bad record fails the load
  kQuarantine,  // bad records dropped + reported, rest loads
};

struct LoadOptions {
  ValidationMode mode = ValidationMode::kStrict;
  LoadLimits limits;
  /// Also drop records that duplicate an earlier (goal, action-set) record.
  /// Duplicates are structurally legal (two users can describe the same
  /// implementation) so they are reported but kept by default.
  bool drop_duplicates = false;
  /// Issues recorded in the report beyond this many are counted, not stored.
  size_t max_reported_issues = 64;
};

/// One bad (or suspicious) record, with enough provenance to act on: which
/// file, which line, what the offending token was and why it was rejected.
struct LoadIssue {
  std::string file;
  size_t line = 0;     // 1-based; 0 when the issue is file-level
  std::string token;   // the offending token/field, clipped for display
  std::string reason;

  /// "file:line: reason near 'token'".
  std::string ToString() const;
};

/// Outcome summary of one validated load.
struct LoadReport {
  size_t records_total = 0;        // data lines / records seen
  size_t records_loaded = 0;       // records that made it into the library
  size_t records_quarantined = 0;  // dropped (kQuarantine or duplicates)
  size_t duplicates = 0;           // duplicate (goal, action-set) records seen
  size_t issues_total = 0;         // all issues, stored or not
  std::vector<LoadIssue> issues;   // first max_reported_issues of them

  /// One-line summary for logs.
  std::string Summary() const;
};

/// Writes `library` in the text format. Overwrites `path`.
util::Status SaveLibraryText(const ImplementationLibrary& library,
                             const std::string& path);

/// Reads a text-format library with default strict validation.
util::StatusOr<ImplementationLibrary> LoadLibraryText(const std::string& path);

/// Reads a text-format library under `options`. When `report` is non-null it
/// receives per-record provenance for everything dropped or flagged; in
/// quarantine mode the returned library contains every record that passed.
util::StatusOr<ImplementationLibrary> LoadLibraryText(const std::string& path,
                                                      const LoadOptions& options,
                                                      LoadReport* report = nullptr);

/// Writes `library` in the binary format. Overwrites `path`.
util::Status SaveLibraryBinary(const ImplementationLibrary& library,
                               const std::string& path);

/// Reads a binary-format library. The binary format is structural (ids, not
/// names), so validation is always strict; LoadOptions caps still bound every
/// allocation against the declared counts and the real file size.
util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path);

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const LoadOptions& options,
    LoadReport* report = nullptr);

// Retry-aware variants: transient failures (kIoError/kUnavailable — NFS
// hiccups, files mid-rotation) are retried with jittered backoff per
// `retry`; structural errors (bad magic, malformed lines) are returned
// immediately. Serving paths that load libraries at startup or on reload
// should prefer these.

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path, const util::RetryOptions& retry);

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const util::RetryOptions& retry);

/// Loads `path` (CRC-framed snapshot if it ends in ".snap", binary if it
/// ends in ".bin", text otherwise) and wraps the result in a versioned
/// LibrarySnapshot whose source is `path`. This is the entry point serving
/// reload paths use (serve/snapshot_manager.h).
util::StatusOr<std::shared_ptr<const LibrarySnapshot>> LoadLibrarySnapshot(
    const std::string& path, const util::RetryOptions& retry = {},
    const LoadOptions& options = {});

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_LIBRARY_IO_H_
