#ifndef GOALREC_MODEL_LIBRARY_IO_H_
#define GOALREC_MODEL_LIBRARY_IO_H_

#include <string>

#include "model/library.h"
#include "util/status.h"

// Serialisation of implementation libraries.
//
// Text format (one implementation per line, tab-separated):
//   # goalrec-library v1            <- required header
//   <goal name>\t<action>\t<action>...
// Lines starting with '#' after the header are comments.
//
// Binary format: compact length-prefixed encoding for large synthetic
// libraries (the Figure 7 scaling sweep reaches millions of implementations).
//
// Caveats of the text format: ids are assigned in file order, so a
// save/load round-trip preserves names and structure but not numeric ids;
// and actions/goals interned but never referenced by an implementation are
// not written (they are unreachable by every query anyway). The binary
// format preserves both the full vocabularies and the exact ids.

namespace goalrec::model {

/// Writes `library` in the text format. Overwrites `path`.
util::Status SaveLibraryText(const ImplementationLibrary& library,
                             const std::string& path);

/// Reads a text-format library.
util::StatusOr<ImplementationLibrary> LoadLibraryText(const std::string& path);

/// Writes `library` in the binary format. Overwrites `path`.
util::Status SaveLibraryBinary(const ImplementationLibrary& library,
                               const std::string& path);

/// Reads a binary-format library.
util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path);

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_LIBRARY_IO_H_
