#ifndef GOALREC_MODEL_LIBRARY_IO_H_
#define GOALREC_MODEL_LIBRARY_IO_H_

#include <memory>
#include <string>

#include "model/library.h"
#include "model/snapshot.h"
#include "util/retry.h"
#include "util/status.h"

// Serialisation of implementation libraries.
//
// Text format (one implementation per line, tab-separated):
//   # goalrec-library v1            <- required header
//   <goal name>\t<action>\t<action>...
// Lines starting with '#' after the header are comments.
//
// Binary format: compact length-prefixed encoding for large synthetic
// libraries (the Figure 7 scaling sweep reaches millions of implementations).
//
// Caveats of the text format: ids are assigned in file order, so a
// save/load round-trip preserves names and structure but not numeric ids;
// and actions/goals interned but never referenced by an implementation are
// not written (they are unreachable by every query anyway). The binary
// format preserves both the full vocabularies and the exact ids.

namespace goalrec::model {

/// Writes `library` in the text format. Overwrites `path`.
util::Status SaveLibraryText(const ImplementationLibrary& library,
                             const std::string& path);

/// Reads a text-format library.
util::StatusOr<ImplementationLibrary> LoadLibraryText(const std::string& path);

/// Writes `library` in the binary format. Overwrites `path`.
util::Status SaveLibraryBinary(const ImplementationLibrary& library,
                               const std::string& path);

/// Reads a binary-format library.
util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path);

// Retry-aware variants: transient failures (kIoError/kUnavailable — NFS
// hiccups, files mid-rotation) are retried with jittered backoff per
// `retry`; structural errors (bad magic, malformed lines) are returned
// immediately. Serving paths that load libraries at startup or on reload
// should prefer these.

util::StatusOr<ImplementationLibrary> LoadLibraryText(
    const std::string& path, const util::RetryOptions& retry);

util::StatusOr<ImplementationLibrary> LoadLibraryBinary(
    const std::string& path, const util::RetryOptions& retry);

/// Loads `path` (binary if it ends in ".bin", text otherwise) and wraps the
/// result in a versioned LibrarySnapshot whose source is `path`. This is the
/// entry point serving reload paths use (serve/snapshot_manager.h).
util::StatusOr<std::shared_ptr<const LibrarySnapshot>> LoadLibrarySnapshot(
    const std::string& path, const util::RetryOptions& retry = {});

}  // namespace goalrec::model

#endif  // GOALREC_MODEL_LIBRARY_IO_H_
