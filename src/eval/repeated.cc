#include "eval/repeated.h"

#include <cmath>

#include "data/splitter.h"
#include "eval/reports.h"
#include "eval/table.h"
#include "util/logging.h"
#include "util/stats.h"

namespace goalrec::eval {
namespace {

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd result;
  result.mean = util::Mean(values);
  result.std_dev = std::sqrt(util::Variance(values));
  return result;
}

}  // namespace

std::vector<RepeatedRow> RunRepeated(const data::Dataset& dataset,
                                     const RepeatedOptions& options) {
  GOALREC_CHECK(!options.split_seeds.empty());
  // per-method metric series across seeds
  std::vector<std::string> names;
  std::vector<std::vector<double>> tpr_series;
  std::vector<std::vector<double>> completeness_series;

  for (uint64_t seed : options.split_seeds) {
    std::vector<data::EvalUser> users =
        data::SplitDataset(dataset, options.visible_fraction, seed);
    std::vector<model::Activity> inputs;
    inputs.reserve(users.size());
    for (const data::EvalUser& user : users) inputs.push_back(user.visible);

    Suite suite(&dataset, inputs, options.suite);
    std::vector<MethodResult> results = suite.RunAll(inputs, options.k);

    std::vector<TprRow> tpr = ComputeTpr(users, results);
    std::vector<CompletenessRow> completeness =
        ComputeCompleteness(dataset.library, users, results);

    if (names.empty()) {
      names = suite.names();
      tpr_series.resize(names.size());
      completeness_series.resize(names.size());
    }
    GOALREC_CHECK_EQ(tpr.size(), names.size());
    for (size_t m = 0; m < names.size(); ++m) {
      tpr_series[m].push_back(tpr[m].avg_tpr);
      completeness_series[m].push_back(completeness[m].avg_avg);
    }
  }

  std::vector<RepeatedRow> rows;
  rows.reserve(names.size());
  for (size_t m = 0; m < names.size(); ++m) {
    RepeatedRow row;
    row.name = names[m];
    row.tpr = Aggregate(tpr_series[m]);
    row.completeness_avg_avg = Aggregate(completeness_series[m]);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderRepeated(const std::vector<RepeatedRow>& rows) {
  TextTable table({"method", "AvgTPR", "completeness AvgAvg"});
  for (const RepeatedRow& row : rows) {
    table.AddRow({row.name,
                  FormatDouble(row.tpr.mean, 3) + " ± " +
                      FormatDouble(row.tpr.std_dev, 3),
                  FormatDouble(row.completeness_avg_avg.mean, 3) + " ± " +
                      FormatDouble(row.completeness_avg_avg.std_dev, 3)});
  }
  return table.ToString();
}

}  // namespace goalrec::eval
