#ifndef GOALREC_EVAL_EXPORT_H_
#define GOALREC_EVAL_EXPORT_H_

#include <string>
#include <vector>

#include "data/splitter.h"
#include "eval/reports.h"
#include "eval/suite.h"
#include "util/status.h"

// Machine-readable export of a full evaluation run: one CSV per paper
// metric, written into a directory, ready for a plotting pipeline. The
// CLI's `evaluate --out=<dir>` drives this.

namespace goalrec::eval {

struct ExportOptions {
  /// The lists' k (recorded only; lists carry their own lengths).
  size_t k = 10;
  /// Write pairwise_similarity.csv (needs a non-empty feature table).
  bool include_similarity = true;
};

/// Computes overlap, popularity correlation, completeness, TPR (and, with
/// features, pairwise similarity) from `results` and writes
/// overlap.csv / popularity_correlation.csv / completeness.csv / tpr.csv /
/// pairwise_similarity.csv into `directory` (which must exist).
/// Returns the first failure, if any.
util::Status ExportReportsCsv(const std::string& directory,
                              const data::Dataset& dataset,
                              const std::vector<data::EvalUser>& users,
                              const std::vector<model::Activity>& inputs,
                              const std::vector<MethodResult>& results,
                              const ExportOptions& options = {});

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_EXPORT_H_
