#include "eval/leave_one_out.h"

#include <algorithm>
#include <cmath>

#include "eval/table.h"
#include "util/logging.h"

namespace goalrec::eval {

LeaveOneOutResult RunLeaveOneOut(const core::Recommender& recommender,
                                 const std::vector<model::Activity>& users,
                                 const LeaveOneOutOptions& options) {
  GOALREC_CHECK_GT(options.k, 0u);
  GOALREC_CHECK_GE(options.min_activity_size, 2u);
  LeaveOneOutResult result;
  double hits = 0.0;
  double reciprocal_sum = 0.0;
  double ndcg_sum = 0.0;
  for (const model::Activity& activity : users) {
    if (activity.size() < options.min_activity_size) continue;
    size_t holdouts = activity.size();
    if (options.max_holdouts_per_user > 0) {
      holdouts = std::min(holdouts, options.max_holdouts_per_user);
    }
    for (size_t h = 0; h < holdouts; ++h) {
      model::ActionId hidden = activity[h];
      model::Activity visible;
      visible.reserve(activity.size() - 1);
      for (size_t i = 0; i < activity.size(); ++i) {
        if (i != h) visible.push_back(activity[i]);
      }
      core::RecommendationList list =
          recommender.Recommend(visible, options.k);
      ++result.num_trials;
      for (size_t rank = 0; rank < list.size(); ++rank) {
        if (list[rank].action == hidden) {
          hits += 1.0;
          reciprocal_sum += 1.0 / static_cast<double>(rank + 1);
          ndcg_sum += 1.0 / std::log2(static_cast<double>(rank + 2));
          break;
        }
      }
    }
  }
  if (result.num_trials > 0) {
    result.hit_rate = hits / static_cast<double>(result.num_trials);
    result.mean_reciprocal_rank =
        reciprocal_sum / static_cast<double>(result.num_trials);
    result.ndcg = ndcg_sum / static_cast<double>(result.num_trials);
  }
  return result;
}

std::string RenderLeaveOneOut(const std::vector<LeaveOneOutRow>& rows,
                              size_t k) {
  TextTable table({"method", "hit@" + std::to_string(k), "MRR",
                   "NDCG@" + std::to_string(k), "trials"});
  for (const LeaveOneOutRow& row : rows) {
    table.AddRow({row.name, FormatDouble(row.result.hit_rate, 3),
                  FormatDouble(row.result.mean_reciprocal_rank, 3),
                  FormatDouble(row.result.ndcg, 3),
                  std::to_string(row.result.num_trials)});
  }
  return table.ToString();
}

}  // namespace goalrec::eval
