#ifndef GOALREC_EVAL_SUITE_H_
#define GOALREC_EVAL_SUITE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/als.h"
#include "baselines/knn.h"
#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_workspace.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "model/snapshot.h"
#include "model/types.h"

// Assembles the full roster of recommenders the paper compares (§6): the
// four goal-based strategies, CF kNN, CF matrix factorisation, content-based
// filtering (when the dataset has domain features), and the optional
// popularity / association-rule anchors. Handles baseline training on the
// visible user activities and owns everything the recommenders borrow.

namespace goalrec::eval {

struct SuiteOptions {
  bool include_goal_based = true;
  bool include_cf_knn = true;
  bool include_cf_mf = true;
  /// Skipped automatically when the dataset has no feature table (43T).
  bool include_content = true;
  bool include_popularity = false;
  bool include_association_rules = false;
  /// Item-based CF (extension; off to keep the paper's roster by default).
  bool include_cf_item_knn = false;
  /// Hybrid(Breadth) — requires a feature table; skipped without one.
  bool include_hybrid = false;
  /// MMR(Breadth) diversity re-ranker — requires a feature table.
  bool include_mmr = false;
  baselines::KnnOptions knn;
  baselines::AlsOptions als;
  double hybrid_alpha = 0.3;
  double mmr_lambda = 0.7;
};

/// One run output: the method name and one list per evaluation user.
struct MethodResult {
  std::string name;
  std::vector<core::RecommendationList> lists;
};

class Suite {
 public:
  /// `dataset` must outlive the suite. `training_activities` are the visible
  /// activities available as collaborative history (baselines train on them
  /// immediately; goal-based strategies ignore them by design).
  Suite(const data::Dataset* dataset,
        std::vector<model::Activity> training_activities,
        SuiteOptions options = {});

  /// Snapshot-pinned suite: co-owns `snapshot` for its whole lifetime, so a
  /// run keeps evaluating one immutable library even while reloads publish
  /// newer versions elsewhere. Feature-dependent methods (content, hybrid,
  /// MMR) are skipped — a bare snapshot carries no feature table.
  Suite(std::shared_ptr<const model::LibrarySnapshot> snapshot,
        std::vector<model::Activity> training_activities,
        SuiteOptions options = {});

  Suite(const Suite&) = delete;
  Suite& operator=(const Suite&) = delete;

  size_t size() const { return recommenders_.size(); }
  const core::Recommender& recommender(size_t i) const;
  std::vector<std::string> names() const;

  /// Runs every recommender over every input activity in parallel and
  /// returns one MethodResult per recommender. Deterministic regardless of
  /// thread count. The goal-based strategies share one pooled QueryContext
  /// per user, so their common spaces are computed once and the scratch
  /// buffers are reused across users (no steady-state allocation).
  std::vector<MethodResult> RunAll(
      const std::vector<model::Activity>& inputs, size_t k,
      size_t num_threads = 0) const;

  /// Workspaces minted by RunAll so far — bounded by peak thread count.
  size_t workspaces_created() const { return workspace_pool_.created(); }

 private:
  /// Builds the roster against `library` (shared constructor body).
  void Init(std::vector<model::Activity> training_activities,
            const SuiteOptions& options);

  /// Null for snapshot-pinned suites (no feature table).
  const data::Dataset* dataset_ = nullptr;
  /// Non-null for snapshot-pinned suites; keeps the library alive.
  std::shared_ptr<const model::LibrarySnapshot> snapshot_;
  /// The evaluated library: &dataset_->library or &snapshot_->library.
  const model::ImplementationLibrary* library_ = nullptr;
  /// Per-thread scratch for the goal-based context path.
  mutable core::QueryWorkspacePool workspace_pool_;
  std::unique_ptr<baselines::InteractionData> interactions_;
  /// Base strategy borrowed by the hybrid/MMR wrappers (kept out of the
  /// roster vector so its address is stable).
  std::unique_ptr<core::Recommender> wrapper_base_;
  std::vector<std::unique_ptr<core::Recommender>> recommenders_;
  /// Typed views into recommenders_ for the context-sharing fast path;
  /// entries are null when the roster omits the strategy.
  const core::FocusRecommender* focus_cmp_ = nullptr;
  const core::FocusRecommender* focus_cl_ = nullptr;
  const core::BreadthRecommender* breadth_ = nullptr;
  const core::BestMatchRecommender* best_match_ = nullptr;
};

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_SUITE_H_
