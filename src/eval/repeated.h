#ifndef GOALREC_EVAL_REPEATED_H_
#define GOALREC_EVAL_REPEATED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/suite.h"

// Repeated-split evaluation: the paper reports single-split numbers; this
// utility re-runs the 30/70 protocol under several split seeds and reports
// mean ± standard deviation per method, quantifying how sensitive each
// metric is to the hidden/visible partition.

namespace goalrec::eval {

struct RepeatedOptions {
  std::vector<uint64_t> split_seeds = {11, 22, 33, 44, 55};
  double visible_fraction = 0.3;
  size_t k = 10;
  SuiteOptions suite;
};

struct MeanStd {
  double mean = 0.0;
  double std_dev = 0.0;
};

struct RepeatedRow {
  std::string name;
  MeanStd tpr;                   // Figure 4 metric
  MeanStd completeness_avg_avg;  // Table 4 metric
};

/// Runs the full suite once per split seed and aggregates across runs.
/// Baselines are retrained on each split's visible activities.
std::vector<RepeatedRow> RunRepeated(const data::Dataset& dataset,
                                     const RepeatedOptions& options = {});

/// Renders "method  tpr mean±std  completeness mean±std".
std::string RenderRepeated(const std::vector<RepeatedRow>& rows);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_REPEATED_H_
