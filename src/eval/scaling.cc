#include "eval/scaling.h"

#include <algorithm>
#include <memory>

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "eval/table.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/set_ops.h"
#include "util/timer.h"

namespace goalrec::eval {

model::ImplementationLibrary BuildScalingLibrary(
    const ScalingWorkload& workload, uint64_t seed) {
  GOALREC_CHECK_GT(workload.num_actions, 0u);
  GOALREC_CHECK_GE(workload.num_actions, workload.implementation_size);
  GOALREC_CHECK_GT(workload.implementations_per_goal, 0u);
  util::Rng rng(seed);
  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < workload.num_actions; ++a) {
    builder.InternAction("a" + std::to_string(a));
  }
  uint32_t num_goals =
      std::max(1u, workload.num_implementations /
                       workload.implementations_per_goal);
  for (uint32_t g = 0; g < num_goals; ++g) {
    builder.InternGoal("g" + std::to_string(g));
  }
  for (uint32_t p = 0; p < workload.num_implementations; ++p) {
    model::IdSet actions;
    actions.reserve(workload.implementation_size);
    while (actions.size() < workload.implementation_size) {
      model::ActionId a = rng.UniformUint32(workload.num_actions);
      if (!util::Contains(actions, a)) {
        actions.push_back(a);
        std::sort(actions.begin(), actions.end());
      }
    }
    builder.AddImplementationIds(p % num_goals, std::move(actions));
  }
  return std::move(builder).Build();
}

ScalingOptions DefaultImplCountSweep() {
  ScalingOptions options;
  // Fixed connectivity regime: actions scale with implementations so each
  // point has connectivity ≈ impls · 6 / actions = 12.
  for (uint32_t impls : {20000u, 100000u, 500000u, 2000000u}) {
    ScalingWorkload w;
    w.num_implementations = impls;
    w.num_actions = impls / 2;
    w.implementation_size = 6;
    options.workloads.push_back(w);
  }
  return options;
}

ScalingOptions DefaultConnectivitySweep() {
  ScalingOptions options;
  // Fixed implementation count; shrinking the action space raises
  // connectivity (impls · 6 / actions).
  for (uint32_t actions : {600000u, 120000u, 24000u, 4800u, 960u}) {
    ScalingWorkload w;
    w.num_implementations = 120000;
    w.num_actions = actions;
    w.implementation_size = 6;
    options.workloads.push_back(w);
  }
  return options;
}

std::vector<ScalingRow> RunScaling(const ScalingOptions& options) {
  std::vector<ScalingRow> rows;
  for (size_t i = 0; i < options.workloads.size(); ++i) {
    const ScalingWorkload& workload = options.workloads[i];
    model::ImplementationLibrary library =
        BuildScalingLibrary(workload, options.seed + i);

    ScalingRow row;
    row.workload = workload;
    row.measured_connectivity = library.ActionConnectivity();

    std::vector<std::unique_ptr<core::Recommender>> strategies;
    strategies.push_back(std::make_unique<core::FocusRecommender>(
        &library, core::FocusVariant::kCompleteness));
    strategies.push_back(std::make_unique<core::FocusRecommender>(
        &library, core::FocusVariant::kCloseness));
    strategies.push_back(std::make_unique<core::BreadthRecommender>(&library));
    strategies.push_back(
        std::make_unique<core::BestMatchRecommender>(&library));

    // Shared query activities so every strategy sees identical inputs.
    util::Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<model::Activity> queries;
    queries.reserve(options.num_queries);
    for (uint32_t q = 0; q < options.num_queries; ++q) {
      model::Activity activity;
      while (activity.size() < options.activity_size) {
        model::ActionId a = rng.UniformUint32(workload.num_actions);
        if (!util::Contains(activity, a)) {
          activity.push_back(a);
          std::sort(activity.begin(), activity.end());
        }
      }
      queries.push_back(std::move(activity));
    }

    for (const auto& strategy : strategies) {
      util::WallTimer timer;
      for (const model::Activity& query : queries) {
        core::RecommendationList list = strategy->Recommend(query, options.k);
        // Fold the result into a sink so the call cannot be optimised away.
        if (!list.empty() && list[0].action == model::kInvalidId) {
          GOALREC_CHECK(false);
        }
      }
      double total_ms = timer.ElapsedSeconds() * 1000.0;
      row.method_names.push_back(strategy->name());
      row.mean_ms.push_back(total_ms /
                            static_cast<double>(options.num_queries));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderScaling(const std::vector<ScalingRow>& rows) {
  if (rows.empty()) return "";
  std::vector<std::string> headers = {"impls", "actions", "connectivity"};
  for (const std::string& name : rows[0].method_names) {
    headers.push_back(name + " ms");
  }
  TextTable table(std::move(headers));
  for (const ScalingRow& row : rows) {
    std::vector<std::string> cells = {
        std::to_string(row.workload.num_implementations),
        std::to_string(row.workload.num_actions),
        FormatDouble(row.measured_connectivity, 2)};
    for (double ms : row.mean_ms) cells.push_back(FormatDouble(ms, 3));
    table.AddRow(std::move(cells));
  }
  return table.ToString();
}

}  // namespace goalrec::eval
