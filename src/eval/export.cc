#include "eval/export.h"

#include <fstream>

namespace goalrec::eval {
namespace {

util::Status WriteCsv(const std::string& path, const TextTable& table) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << table.ToCsv();
  if (!out) return util::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace

util::Status ExportReportsCsv(const std::string& directory,
                              const data::Dataset& dataset,
                              const std::vector<data::EvalUser>& users,
                              const std::vector<model::Activity>& inputs,
                              const std::vector<MethodResult>& results,
                              const ExportOptions& options) {
  util::Status status = WriteCsv(directory + "/overlap.csv",
                                 BuildOverlapTable(ComputeOverlap(results)));
  if (!status.ok()) return status;

  status = WriteCsv(directory + "/popularity_correlation.csv",
                    BuildCorrelationTable(
                        ComputePopularityCorrelations(inputs, results)));
  if (!status.ok()) return status;

  status = WriteCsv(directory + "/completeness.csv",
                    BuildCompletenessTable(ComputeCompleteness(
                        dataset.library, users, results)));
  if (!status.ok()) return status;

  std::vector<TprRow> tpr = ComputeTpr(users, results);
  status = WriteCsv(directory + "/tpr.csv", BuildTprTable(tpr, tpr));
  if (!status.ok()) return status;

  if (options.include_similarity && !dataset.features.empty()) {
    status = WriteCsv(directory + "/pairwise_similarity.csv",
                      BuildSimilarityTable(ComputePairwiseSimilarity(
                          dataset.features, results)));
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

}  // namespace goalrec::eval
