#ifndef GOALREC_EVAL_REPORTS_H_
#define GOALREC_EVAL_REPORTS_H_

#include <string>
#include <vector>

#include "data/splitter.h"
#include "eval/suite.h"
#include "eval/table.h"
#include "model/features.h"
#include "model/library.h"
#include "util/stats.h"

// Aggregated per-experiment reports. Each Compute* function maps run results
// (one MethodResult per recommender) to the numbers a paper table/figure
// reports; each Render* function prints them in the paper's shape. The bench
// binaries in bench/ drive these against the full-size synthetic datasets.

namespace goalrec::eval {

// --- Tables 2 & 6: list overlap -------------------------------------------

/// Mean pairwise top-k overlap between every pair of methods.
struct OverlapReport {
  std::vector<std::string> names;
  /// matrix[i][j] = mean overlap of method i's and method j's lists.
  std::vector<std::vector<double>> matrix;
};

OverlapReport ComputeOverlap(const std::vector<MethodResult>& results);
TextTable BuildOverlapTable(const OverlapReport& report);
std::string RenderOverlap(const OverlapReport& report);

// --- Table 3: popularity correlation ---------------------------------------

struct CorrelationRow {
  std::string name;
  double correlation = 0.0;
};

/// Pearson correlation between the activity frequency and list frequency of
/// the top-20 most popular actions, per method (Table 3).
std::vector<CorrelationRow> ComputePopularityCorrelations(
    const std::vector<model::Activity>& activities,
    const std::vector<MethodResult>& results);
TextTable BuildCorrelationTable(const std::vector<CorrelationRow>& rows);
std::string RenderCorrelations(const std::vector<CorrelationRow>& rows);

// --- Table 4 / Figure 3: goal completeness ----------------------------------

struct CompletenessRow {
  std::string name;
  double avg_avg = 0.0;  // mean over lists of the per-list average
  double min_avg = 0.0;  // mean over lists of the per-list minimum
  double max_avg = 0.0;  // mean over lists of the per-list maximum
};

/// Goal completeness after following each list (Table 4). For each user the
/// evaluated goals are `true_goals` when known (43T) and the goal space of
/// the visible activity otherwise (FoodMart), exactly as §6.1.1 C.1.3.
std::vector<CompletenessRow> ComputeCompleteness(
    const model::ImplementationLibrary& library,
    const std::vector<data::EvalUser>& users,
    const std::vector<MethodResult>& results);
TextTable BuildCompletenessTable(const std::vector<CompletenessRow>& rows);
std::string RenderCompleteness(const std::vector<CompletenessRow>& rows);

// --- Table 5: pairwise feature similarity -----------------------------------

struct SimilarityRow {
  std::string name;
  double avg_avg = 0.0;
  double avg_max = 0.0;
  double avg_min = 0.0;
};

/// Mean over lists of the per-list min/avg/max pairwise feature similarity
/// (Table 5; FoodMart only — requires a non-empty feature table).
std::vector<SimilarityRow> ComputePairwiseSimilarity(
    const model::ActionFeatureTable& features,
    const std::vector<MethodResult>& results);
TextTable BuildSimilarityTable(const std::vector<SimilarityRow>& rows);
std::string RenderSimilarity(const std::vector<SimilarityRow>& rows);

// --- Figure 4: average true-positive rate ------------------------------------

struct TprRow {
  std::string name;
  double avg_tpr = 0.0;
};

/// Mean fraction of recommended actions found in the hidden 70% (Figure 4).
std::vector<TprRow> ComputeTpr(const std::vector<data::EvalUser>& users,
                               const std::vector<MethodResult>& results);
TextTable BuildTprTable(const std::vector<TprRow>& top5,
                        const std::vector<TprRow>& top10);
std::string RenderTpr(const std::vector<TprRow>& top5,
                      const std::vector<TprRow>& top10);

// --- Figures 5 & 6: frequency distributions ----------------------------------

struct FrequencyRow {
  std::string name;
  util::Histogram histogram;
  /// Fraction of actions with frequency below 0.2 (the paper's headline).
  double below_02 = 0.0;
  double max_frequency = 0.0;
};

/// Figure 5: distribution of per-action frequency across the method's lists.
std::vector<FrequencyRow> ComputeRecListFrequency(
    const std::vector<MethodResult>& results, size_t num_buckets = 5);

/// Figure 6: distribution of the implementation-set frequency of retrieved
/// actions.
std::vector<FrequencyRow> ComputeImplSetFrequency(
    const model::ImplementationLibrary& library,
    const std::vector<MethodResult>& results, size_t num_buckets = 5);

std::string RenderFrequency(const std::vector<FrequencyRow>& rows);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_REPORTS_H_
