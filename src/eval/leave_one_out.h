#ifndef GOALREC_EVAL_LEAVE_ONE_OUT_H_
#define GOALREC_EVAL_LEAVE_ONE_OUT_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "model/types.h"

// Leave-one-out evaluation: the standard recommender-systems protocol that
// complements the paper's 30/70 split. For each user, each action of the
// activity is hidden in turn; the recommender sees the rest and is scored on
// whether the hidden action lands in its top-k (hit rate) and where
// (mean reciprocal rank).

namespace goalrec::eval {

struct LeaveOneOutResult {
  /// Fraction of (user, held-out action) trials where the held-out action
  /// appeared in the top-k.
  double hit_rate = 0.0;
  /// Mean of 1/rank over hits (0 contribution for misses).
  double mean_reciprocal_rank = 0.0;
  /// Mean NDCG@k: with a single relevant item this is 1/log2(rank+1) for
  /// hits and 0 for misses.
  double ndcg = 0.0;
  size_t num_trials = 0;
};

struct LeaveOneOutOptions {
  size_t k = 10;
  /// Activities smaller than this are skipped (hiding the only action
  /// leaves no evidence).
  size_t min_activity_size = 2;
  /// Cap on held-out trials per user, taken from the start of the sorted
  /// activity (0 = all actions). Bounds cost on large activities.
  size_t max_holdouts_per_user = 0;
};

/// Runs the protocol for one recommender over the given activities.
LeaveOneOutResult RunLeaveOneOut(const core::Recommender& recommender,
                                 const std::vector<model::Activity>& users,
                                 const LeaveOneOutOptions& options = {});

/// Renders "hit@k  MRR  trials" rows for several methods.
struct LeaveOneOutRow {
  std::string name;
  LeaveOneOutResult result;
};
std::string RenderLeaveOneOut(const std::vector<LeaveOneOutRow>& rows,
                              size_t k);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_LEAVE_ONE_OUT_H_
