#ifndef GOALREC_EVAL_SIGNIFICANCE_H_
#define GOALREC_EVAL_SIGNIFICANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Paired bootstrap significance testing for per-user metrics. The paper
// reports point estimates; when two methods are close (e.g. Breadth vs
// Best Match completeness), a paired bootstrap over users quantifies
// whether the gap survives resampling: resample users with replacement,
// recompute the mean difference, and read off the confidence interval and
// the fraction of resamples where the sign flips.

namespace goalrec::eval {

struct BootstrapResult {
  /// Mean of (a − b) over the original users.
  double mean_difference = 0.0;
  /// Percentile bootstrap confidence-interval bounds for the difference.
  double ci_low = 0.0;
  double ci_high = 0.0;
  /// Fraction of resamples with mean difference <= 0 (one-sided
  /// "probability a is not better"). Values near 0 = a reliably better.
  double p_not_better = 0.0;
  size_t num_users = 0;
  size_t num_resamples = 0;
};

struct BootstrapOptions {
  size_t num_resamples = 2000;
  /// Two-sided confidence level for [ci_low, ci_high].
  double confidence = 0.95;
  uint64_t seed = 1234;
};

/// Paired bootstrap of mean(a − b). `a` and `b` are per-user values of the
/// same metric (same users, same order); requires equal non-zero sizes.
BootstrapResult PairedBootstrap(const std::vector<double>& a,
                                const std::vector<double>& b,
                                const BootstrapOptions& options = {});

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_SIGNIFICANCE_H_
