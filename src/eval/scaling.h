#ifndef GOALREC_EVAL_SCALING_H_
#define GOALREC_EVAL_SCALING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/library.h"

// The Figure 7 scalability study: per-strategy recommendation latency as the
// implementation library grows (to millions of implementations) and as
// action connectivity varies. §5.4's analysis predicts (a) Breadth fastest,
// (b) Focus_cl cheaper than Focus_cmp (set difference vs intersection),
// (c) Best Match slowest (vectorisation of the whole action space), and
// (d) connectivity, not raw implementation count, driving the cost.

namespace goalrec::eval {

struct ScalingWorkload {
  /// Number of implementations in the synthetic library.
  uint32_t num_implementations = 100000;
  /// Number of distinct actions; connectivity ≈ impls · size / actions.
  uint32_t num_actions = 50000;
  /// Actions per implementation.
  uint32_t implementation_size = 6;
  /// Implementations per goal (goals = impls / this).
  uint32_t implementations_per_goal = 4;
};

/// Builds a uniform random library matching the workload, seeded.
model::ImplementationLibrary BuildScalingLibrary(
    const ScalingWorkload& workload, uint64_t seed);

struct ScalingOptions {
  std::vector<ScalingWorkload> workloads;
  /// Random user activities per workload; reported times are per-query means.
  uint32_t num_queries = 30;
  uint32_t activity_size = 8;
  size_t k = 10;
  uint64_t seed = 7;
};

/// Defaults: an implementation-count sweep at fixed connectivity and a
/// connectivity sweep at a fixed implementation count.
ScalingOptions DefaultImplCountSweep();
ScalingOptions DefaultConnectivitySweep();

struct ScalingRow {
  ScalingWorkload workload;
  double measured_connectivity = 0.0;
  std::vector<std::string> method_names;
  /// Mean milliseconds per Recommend call, aligned with method_names.
  std::vector<double> mean_ms;
};

/// Runs all four goal-based strategies on every workload.
std::vector<ScalingRow> RunScaling(const ScalingOptions& options);

/// Paper-shaped rendering: one row per workload, one column per strategy.
std::string RenderScaling(const std::vector<ScalingRow>& rows);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_SCALING_H_
