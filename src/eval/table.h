#ifndef GOALREC_EVAL_TABLE_H_
#define GOALREC_EVAL_TABLE_H_

#include <string>
#include <vector>

// Plain-text table rendering used by the experiment binaries to print rows in
// the shape of the paper's tables.

namespace goalrec::eval {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; it may have fewer cells than there are headers (the rest
  /// render empty) but not more.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column-aligned padding and a header separator.
  std::string ToString() const;

  /// Renders as CSV (header row + data rows), for plotting pipelines.
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering ("0.348").
std::string FormatDouble(double value, int precision = 3);

/// Percent rendering ("34.8%").
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_TABLE_H_
