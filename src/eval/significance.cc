#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace goalrec::eval {

BootstrapResult PairedBootstrap(const std::vector<double>& a,
                                const std::vector<double>& b,
                                const BootstrapOptions& options) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  GOALREC_CHECK(!a.empty());
  GOALREC_CHECK_GT(options.num_resamples, 0u);
  GOALREC_CHECK_GT(options.confidence, 0.0);
  GOALREC_CHECK_LT(options.confidence, 1.0);

  std::vector<double> differences(a.size());
  for (size_t i = 0; i < a.size(); ++i) differences[i] = a[i] - b[i];

  BootstrapResult result;
  result.num_users = a.size();
  result.num_resamples = options.num_resamples;
  result.mean_difference = util::Mean(differences);

  util::Rng rng(options.seed);
  std::vector<double> resampled_means;
  resampled_means.reserve(options.num_resamples);
  size_t not_better = 0;
  uint32_t n = static_cast<uint32_t>(differences.size());
  for (size_t r = 0; r < options.num_resamples; ++r) {
    double sum = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += differences[rng.UniformUint32(n)];
    }
    double mean = sum / static_cast<double>(n);
    if (mean <= 0.0) ++not_better;
    resampled_means.push_back(mean);
  }
  result.p_not_better =
      static_cast<double>(not_better) /
      static_cast<double>(options.num_resamples);

  std::sort(resampled_means.begin(), resampled_means.end());
  double alpha = (1.0 - options.confidence) / 2.0;
  auto percentile = [&](double q) {
    double position = q * static_cast<double>(resampled_means.size() - 1);
    size_t low = static_cast<size_t>(std::floor(position));
    size_t high = std::min(low + 1, resampled_means.size() - 1);
    double fraction = position - static_cast<double>(low);
    return resampled_means[low] * (1.0 - fraction) +
           resampled_means[high] * fraction;
  };
  result.ci_low = percentile(alpha);
  result.ci_high = percentile(1.0 - alpha);
  return result;
}

}  // namespace goalrec::eval
