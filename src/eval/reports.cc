#include "eval/reports.h"

#include <algorithm>

#include "eval/metrics.h"
#include "eval/table.h"
#include "util/logging.h"

namespace goalrec::eval {

OverlapReport ComputeOverlap(const std::vector<MethodResult>& results) {
  OverlapReport report;
  size_t n = results.size();
  report.matrix.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    report.names.push_back(results[i].name);
    report.matrix[i][i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      double overlap = MeanListOverlap(results[i].lists, results[j].lists);
      report.matrix[i][j] = overlap;
      report.matrix[j][i] = overlap;
    }
  }
  return report;
}

TextTable BuildOverlapTable(const OverlapReport& report) {
  std::vector<std::string> headers = {"method"};
  headers.insert(headers.end(), report.names.begin(), report.names.end());
  TextTable table(std::move(headers));
  for (size_t i = 0; i < report.names.size(); ++i) {
    std::vector<std::string> row = {report.names[i]};
    for (size_t j = 0; j < report.names.size(); ++j) {
      row.push_back(FormatPercent(report.matrix[i][j], 2));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::string RenderOverlap(const OverlapReport& report) {
  return BuildOverlapTable(report).ToString();
}

std::vector<CorrelationRow> ComputePopularityCorrelations(
    const std::vector<model::Activity>& activities,
    const std::vector<MethodResult>& results) {
  std::vector<CorrelationRow> rows;
  rows.reserve(results.size());
  for (const MethodResult& result : results) {
    rows.push_back(CorrelationRow{
        result.name, PopularityCorrelation(activities, result.lists)});
  }
  return rows;
}

TextTable BuildCorrelationTable(const std::vector<CorrelationRow>& rows) {
  TextTable table({"method", "correlation"});
  for (const CorrelationRow& row : rows) {
    table.AddRow({row.name, FormatDouble(row.correlation, 3)});
  }
  return table;
}

std::string RenderCorrelations(const std::vector<CorrelationRow>& rows) {
  return BuildCorrelationTable(rows).ToString();
}

std::vector<CompletenessRow> ComputeCompleteness(
    const model::ImplementationLibrary& library,
    const std::vector<data::EvalUser>& users,
    const std::vector<MethodResult>& results) {
  std::vector<CompletenessRow> rows;
  rows.reserve(results.size());
  for (const MethodResult& result : results) {
    GOALREC_CHECK_EQ(result.lists.size(), users.size());
    CompletenessRow row;
    row.name = result.name;
    std::vector<double> avgs, mins, maxs;
    for (size_t u = 0; u < users.size(); ++u) {
      const data::EvalUser& user = users[u];
      model::IdSet goals = user.true_goals.empty()
                               ? library.GoalSpace(user.visible)
                               : user.true_goals;
      if (goals.empty()) continue;
      util::Summary summary = CompletenessAfterList(
          library, goals, user.visible, result.lists[u]);
      avgs.push_back(summary.avg);
      mins.push_back(summary.min);
      maxs.push_back(summary.max);
    }
    row.avg_avg = util::Mean(avgs);
    row.min_avg = util::Mean(mins);
    row.max_avg = util::Mean(maxs);
    rows.push_back(std::move(row));
  }
  return rows;
}

TextTable BuildCompletenessTable(const std::vector<CompletenessRow>& rows) {
  TextTable table({"method", "AvgAvg", "MinAvg", "MaxAvg"});
  for (const CompletenessRow& row : rows) {
    table.AddRow({row.name, FormatDouble(row.avg_avg, 3),
                  FormatDouble(row.min_avg, 3), FormatDouble(row.max_avg, 3)});
  }
  return table;
}

std::string RenderCompleteness(const std::vector<CompletenessRow>& rows) {
  return BuildCompletenessTable(rows).ToString();
}

std::vector<SimilarityRow> ComputePairwiseSimilarity(
    const model::ActionFeatureTable& features,
    const std::vector<MethodResult>& results) {
  std::vector<SimilarityRow> rows;
  rows.reserve(results.size());
  for (const MethodResult& result : results) {
    SimilarityRow row;
    row.name = result.name;
    std::vector<double> avgs, maxs, mins;
    for (const core::RecommendationList& list : result.lists) {
      util::Summary summary = PairwiseFeatureSimilarity(features, list);
      if (summary.count == 0) continue;  // fewer than two recommendations
      avgs.push_back(summary.avg);
      maxs.push_back(summary.max);
      mins.push_back(summary.min);
    }
    row.avg_avg = util::Mean(avgs);
    row.avg_max = util::Mean(maxs);
    row.avg_min = util::Mean(mins);
    rows.push_back(std::move(row));
  }
  return rows;
}

TextTable BuildSimilarityTable(const std::vector<SimilarityRow>& rows) {
  TextTable table({"method", "AvgAvg", "AvgMax", "AvgMin"});
  for (const SimilarityRow& row : rows) {
    table.AddRow({row.name, FormatDouble(row.avg_avg, 3),
                  FormatDouble(row.avg_max, 3), FormatDouble(row.avg_min, 3)});
  }
  return table;
}

std::string RenderSimilarity(const std::vector<SimilarityRow>& rows) {
  return BuildSimilarityTable(rows).ToString();
}

std::vector<TprRow> ComputeTpr(const std::vector<data::EvalUser>& users,
                               const std::vector<MethodResult>& results) {
  std::vector<TprRow> rows;
  rows.reserve(results.size());
  for (const MethodResult& result : results) {
    GOALREC_CHECK_EQ(result.lists.size(), users.size());
    std::vector<double> tprs;
    tprs.reserve(users.size());
    for (size_t u = 0; u < users.size(); ++u) {
      if (users[u].hidden.empty()) continue;
      tprs.push_back(TruePositiveRate(result.lists[u], users[u].hidden));
    }
    rows.push_back(TprRow{result.name, util::Mean(tprs)});
  }
  return rows;
}

TextTable BuildTprTable(const std::vector<TprRow>& top5,
                        const std::vector<TprRow>& top10) {
  GOALREC_CHECK_EQ(top5.size(), top10.size());
  TextTable table({"method", "AvgTPR top-5", "AvgTPR top-10"});
  for (size_t i = 0; i < top5.size(); ++i) {
    GOALREC_CHECK(top5[i].name == top10[i].name);
    table.AddRow({top5[i].name, FormatDouble(top5[i].avg_tpr, 3),
                  FormatDouble(top10[i].avg_tpr, 3)});
  }
  return table;
}

std::string RenderTpr(const std::vector<TprRow>& top5,
                      const std::vector<TprRow>& top10) {
  return BuildTprTable(top5, top10).ToString();
}

namespace {

void FinishFrequencyRow(FrequencyRow& row) {
  row.below_02 = row.histogram.FractionBelow(0.2);
}

}  // namespace

std::vector<FrequencyRow> ComputeRecListFrequency(
    const std::vector<MethodResult>& results, size_t num_buckets) {
  std::vector<FrequencyRow> rows;
  for (const MethodResult& result : results) {
    FrequencyRow row{result.name, util::Histogram(num_buckets), 0.0, 0.0};
    AddRecListFrequencies(result.lists, row.histogram);
    // Max frequency: recompute directly for exactness.
    std::unordered_map<model::ActionId, size_t> counts;
    for (const core::RecommendationList& list : result.lists) {
      model::IdSet distinct;
      for (const core::ScoredAction& e : list) distinct.push_back(e.action);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (model::ActionId a : distinct) ++counts[a];
    }
    for (const auto& [action, count] : counts) {
      row.max_frequency =
          std::max(row.max_frequency,
                   static_cast<double>(count) /
                       static_cast<double>(result.lists.size()));
    }
    FinishFrequencyRow(row);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<FrequencyRow> ComputeImplSetFrequency(
    const model::ImplementationLibrary& library,
    const std::vector<MethodResult>& results, size_t num_buckets) {
  std::vector<FrequencyRow> rows;
  for (const MethodResult& result : results) {
    FrequencyRow row{result.name, util::Histogram(num_buckets), 0.0, 0.0};
    AddImplSetFrequencies(library, result.lists, row.histogram);
    for (const core::RecommendationList& list : result.lists) {
      for (const core::ScoredAction& e : list) {
        if (e.action >= library.num_actions() ||
            library.num_implementations() == 0) {
          continue;
        }
        row.max_frequency = std::max(
            row.max_frequency,
            static_cast<double>(library.ImplsOfAction(e.action).size()) /
                static_cast<double>(library.num_implementations()));
      }
    }
    FinishFrequencyRow(row);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderFrequency(const std::vector<FrequencyRow>& rows) {
  if (rows.empty()) return "";
  size_t buckets = rows[0].histogram.num_buckets();
  std::vector<std::string> headers = {"method"};
  double width = 1.0 / static_cast<double>(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    std::string header = "[";
    header += FormatDouble(width * static_cast<double>(b), 1);
    header += ",";
    header += FormatDouble(width * static_cast<double>(b + 1), 1);
    header += ")";
    headers.push_back(std::move(header));
  }
  headers.push_back("<0.2");
  headers.push_back("max");
  TextTable table(std::move(headers));
  for (const FrequencyRow& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (size_t b = 0; b < buckets; ++b) {
      cells.push_back(FormatPercent(row.histogram.Fraction(b), 1));
    }
    cells.push_back(FormatPercent(row.below_02, 1));
    cells.push_back(FormatDouble(row.max_frequency, 4));
    table.AddRow(std::move(cells));
  }
  return table.ToString();
}

}  // namespace goalrec::eval
