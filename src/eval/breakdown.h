#ifndef GOALREC_EVAL_BREAKDOWN_H_
#define GOALREC_EVAL_BREAKDOWN_H_

#include <string>
#include <vector>

#include "data/splitter.h"
#include "eval/suite.h"
#include "model/library.h"

// Per-goal-count breakdown. The paper characterises 43Things users by how
// many goals they pursue (5047 / 1806 / 623 / 595 pursuing 1 / 2 / 3 / >3)
// but reports only aggregate metrics; this analysis splits the Figure 4 and
// Table 4 metrics by that distribution, answering "whom does each strategy
// serve best?" — Focus should shine for single-goal users, Breadth for
// multi-goal ones.

namespace goalrec::eval {

/// Buckets: 1, 2, 3, and ≥4 pursued goals. Users with unknown goals
/// (empty true_goals — e.g. FoodMart carts) are excluded.
inline constexpr size_t kGoalCountBuckets = 4;

struct BreakdownCell {
  double avg_tpr = 0.0;
  double completeness_avg_avg = 0.0;
  size_t num_users = 0;
};

struct BreakdownRow {
  std::string name;
  /// cells[b]: users pursuing b+1 goals (last bucket: ≥ 4).
  BreakdownCell cells[kGoalCountBuckets];
};

/// Computes the breakdown for every method of a finished run.
std::vector<BreakdownRow> ComputeGoalCountBreakdown(
    const model::ImplementationLibrary& library,
    const std::vector<data::EvalUser>& users,
    const std::vector<MethodResult>& results);

/// Renders one table per metric ("TPR by pursued goals", "completeness ...").
std::string RenderGoalCountBreakdown(const std::vector<BreakdownRow>& rows);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_BREAKDOWN_H_
