#ifndef GOALREC_EVAL_METRICS_H_
#define GOALREC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/recommender.h"
#include "model/features.h"
#include "model/library.h"
#include "model/types.h"
#include "util/stats.h"

// The measurements of the paper's evaluation (§6.1): list overlap (Tables 2
// and 6), popularity correlation (Table 3), goal completeness (Table 4 /
// Figure 3), pairwise feature similarity (Table 5), average true-positive
// rate (Figure 4) and the two frequency distributions (Figures 5 and 6).

namespace goalrec::eval {

/// Fraction of actions two recommendation lists share:
/// |A ∩ B| / max(|A|, |B|); 0 when both lists are empty. With equally sized
/// top-k lists this is the paper's "percentage of common actions".
double ListOverlap(const core::RecommendationList& a,
                   const core::RecommendationList& b);

/// Mean ListOverlap across paired lists of two methods (same users, same
/// order). Requires equal sizes.
double MeanListOverlap(const std::vector<core::RecommendationList>& a,
                       const std::vector<core::RecommendationList>& b);

/// Completeness of goal `g` given the performed actions: the best coverage
/// over all of g's implementations, max_p |A_p ∩ performed| / |A_p|.
double GoalCompleteness(const model::ImplementationLibrary& library,
                        model::GoalId g, const model::Activity& performed);

/// Per-list goal-completeness summary (Table 4): for each goal in `goals`,
/// the completeness after the user performs `activity` ∪ `recommended`;
/// returns the min/avg/max over the goals. `goals` is the user's true goals
/// for 43T, or the whole goal space GS(activity) for FoodMart.
util::Summary CompletenessAfterList(
    const model::ImplementationLibrary& library, const model::IdSet& goals,
    const model::Activity& activity, const core::RecommendationList& list);

/// True-positive rate of one list: fraction of recommended actions present
/// in the user's hidden actions (Figure 4's Avg TPR, averaged by the
/// caller). 0 for an empty list.
double TruePositiveRate(const core::RecommendationList& list,
                        const model::Activity& hidden);

/// Pairwise feature-similarity summary of one list (Table 5): min/avg/max
/// over all unordered action pairs. Lists with fewer than two actions give
/// an empty (count == 0) summary.
util::Summary PairwiseFeatureSimilarity(const model::ActionFeatureTable& table,
                                        const core::RecommendationList& list);

/// Popularity correlation (Table 3): finds the `top_n` most frequent actions
/// across `activities`, counts each one's appearances in `lists`, and
/// returns the Pearson correlation between activity counts and list counts.
double PopularityCorrelation(
    const std::vector<model::Activity>& activities,
    const std::vector<core::RecommendationList>& lists, size_t top_n = 20);

/// Figure 5: for every action appearing in at least one list, its frequency
/// = (#lists containing it) / (#lists), accumulated into `histogram`.
void AddRecListFrequencies(const std::vector<core::RecommendationList>& lists,
                           util::Histogram& histogram);

/// Figure 6: for every *distinct* action retrieved by any list, its
/// implementation-set frequency |ImplsOfAction(a)| / #implementations,
/// accumulated into `histogram`.
void AddImplSetFrequencies(const model::ImplementationLibrary& library,
                           const std::vector<core::RecommendationList>& lists,
                           util::Histogram& histogram);

// --- supplementary diversity metrics (not in the paper, but standard
// recommender-systems measurements that sharpen the Figure 5 analysis) -------

/// Catalogue coverage: fraction of the `num_actions` catalogue recommended
/// to at least one user. Low coverage = the method funnels everyone to the
/// same items.
double CatalogCoverage(const std::vector<core::RecommendationList>& lists,
                       uint32_t num_actions);

/// Gini index of the distribution of recommendation counts over the
/// catalogue, in [0, 1]: 0 = perfectly even exposure, ->1 = a few actions
/// monopolise the lists. Actions never recommended count as zero exposure.
double RecommendationGini(const std::vector<core::RecommendationList>& lists,
                          uint32_t num_actions);

}  // namespace goalrec::eval

#endif  // GOALREC_EVAL_METRICS_H_
