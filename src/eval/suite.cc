#include "eval/suite.h"

#include "baselines/association_rules.h"
#include "baselines/content_based.h"
#include "baselines/item_knn.h"
#include "baselines/popularity.h"
#include "core/best_match.h"
#include "core/breadth.h"
#include "core/diversity.h"
#include "core/focus.h"
#include "core/hybrid.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace goalrec::eval {

Suite::Suite(const data::Dataset* dataset,
             std::vector<model::Activity> training_activities,
             SuiteOptions options)
    : dataset_(dataset) {
  GOALREC_CHECK(dataset_ != nullptr);
  library_ = &dataset_->library;
  Init(std::move(training_activities), options);
}

Suite::Suite(std::shared_ptr<const model::LibrarySnapshot> snapshot,
             std::vector<model::Activity> training_activities,
             SuiteOptions options)
    : snapshot_(std::move(snapshot)) {
  GOALREC_CHECK(snapshot_ != nullptr);
  library_ = &snapshot_->library;
  // No dataset: nothing can carry a feature table.
  options.include_content = false;
  options.include_hybrid = false;
  options.include_mmr = false;
  Init(std::move(training_activities), options);
}

void Suite::Init(std::vector<model::Activity> training_activities,
                 const SuiteOptions& options) {
  const model::ImplementationLibrary& library = *library_;

  bool needs_interactions = options.include_cf_knn || options.include_cf_mf ||
                            options.include_popularity ||
                            options.include_association_rules ||
                            options.include_cf_item_knn;
  if (needs_interactions) {
    interactions_ = std::make_unique<baselines::InteractionData>(
        std::move(training_activities), library.num_actions());
  }

  if (options.include_goal_based) {
    auto focus_cmp = std::make_unique<core::FocusRecommender>(
        &library, core::FocusVariant::kCompleteness);
    auto focus_cl = std::make_unique<core::FocusRecommender>(
        &library, core::FocusVariant::kCloseness);
    auto breadth = std::make_unique<core::BreadthRecommender>(&library);
    auto best_match = std::make_unique<core::BestMatchRecommender>(&library);
    focus_cmp_ = focus_cmp.get();
    focus_cl_ = focus_cl.get();
    breadth_ = breadth.get();
    best_match_ = best_match.get();
    recommenders_.push_back(std::move(focus_cmp));
    recommenders_.push_back(std::move(focus_cl));
    recommenders_.push_back(std::move(breadth));
    recommenders_.push_back(std::move(best_match));
  }
  if (options.include_cf_knn) {
    recommenders_.push_back(std::make_unique<baselines::KnnRecommender>(
        interactions_.get(), options.knn));
  }
  if (options.include_cf_mf) {
    recommenders_.push_back(std::make_unique<baselines::AlsRecommender>(
        interactions_.get(), options.als));
  }
  if (options.include_content && dataset_ != nullptr &&
      !dataset_->features.empty()) {
    recommenders_.push_back(std::make_unique<baselines::ContentRecommender>(
        &dataset_->features));
  }
  if (options.include_popularity) {
    recommenders_.push_back(std::make_unique<baselines::PopularityRecommender>(
        interactions_.get()));
  }
  if (options.include_association_rules) {
    recommenders_.push_back(
        std::make_unique<baselines::AssociationRuleRecommender>(
            interactions_.get()));
  }
  if (options.include_cf_item_knn) {
    recommenders_.push_back(std::make_unique<baselines::ItemKnnRecommender>(
        interactions_.get()));
  }
  bool has_features = dataset_ != nullptr && !dataset_->features.empty();
  if ((options.include_hybrid || options.include_mmr) && has_features) {
    wrapper_base_ = std::make_unique<core::BreadthRecommender>(&library);
    if (options.include_hybrid) {
      core::HybridOptions hybrid_options;
      hybrid_options.alpha = options.hybrid_alpha;
      recommenders_.push_back(std::make_unique<core::HybridRecommender>(
          wrapper_base_.get(), &dataset_->features, hybrid_options));
    }
    if (options.include_mmr) {
      core::DiversityOptions mmr_options;
      mmr_options.lambda = options.mmr_lambda;
      recommenders_.push_back(std::make_unique<core::DiversityReranker>(
          wrapper_base_.get(), &dataset_->features, mmr_options));
    }
  }
}

const core::Recommender& Suite::recommender(size_t i) const {
  GOALREC_CHECK_LT(i, recommenders_.size());
  return *recommenders_[i];
}

std::vector<std::string> Suite::names() const {
  std::vector<std::string> names;
  names.reserve(recommenders_.size());
  for (const auto& r : recommenders_) names.push_back(r->name());
  return names;
}

std::vector<MethodResult> Suite::RunAll(
    const std::vector<model::Activity>& inputs, size_t k,
    size_t num_threads) const {
  std::vector<MethodResult> results(recommenders_.size());
  for (size_t m = 0; m < recommenders_.size(); ++m) {
    results[m].name = recommenders_[m]->name();
    results[m].lists.resize(inputs.size());
  }
  bool context_path = focus_cmp_ != nullptr;
  const model::ImplementationLibrary& library = *library_;
  util::ParallelFor(
      inputs.size(),
      [&](size_t u) {
        // One pooled context per user, shared by the goal-based strategies:
        // the spaces are computed once, into workspace buffers reused across
        // users (each worker thread ends up with its own workspace).
        core::QueryWorkspacePool::Lease lease;
        core::QueryContext context;
        if (context_path) {
          lease = workspace_pool_.Acquire();
          context = core::QueryContext::Create(library, inputs[u], *lease);
        }
        for (size_t m = 0; m < recommenders_.size(); ++m) {
          const core::Recommender* rec = recommenders_[m].get();
          core::RecommendationList& slot = results[m].lists[u];
          if (rec == focus_cmp_ && context_path) {
            focus_cmp_->RecommendInContext(context, k, slot);
          } else if (rec == focus_cl_ && context_path) {
            focus_cl_->RecommendInContext(context, k, slot);
          } else if (rec == breadth_ && context_path) {
            breadth_->RecommendInContext(context, k, slot);
          } else if (rec == best_match_ && context_path) {
            best_match_->RecommendInContext(context, k, slot);
          } else {
            slot = rec->Recommend(inputs[u], k);
          }
        }
      },
      num_threads);
  return results;
}

}  // namespace goalrec::eval
