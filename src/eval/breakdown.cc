#include "eval/breakdown.h"

#include <algorithm>

#include "eval/metrics.h"
#include "eval/table.h"
#include "util/logging.h"
#include "util/stats.h"

namespace goalrec::eval {
namespace {

size_t BucketOf(size_t goal_count) {
  GOALREC_CHECK_GE(goal_count, 1u);
  return std::min(goal_count, kGoalCountBuckets) - 1;
}

}  // namespace

std::vector<BreakdownRow> ComputeGoalCountBreakdown(
    const model::ImplementationLibrary& library,
    const std::vector<data::EvalUser>& users,
    const std::vector<MethodResult>& results) {
  std::vector<BreakdownRow> rows;
  rows.reserve(results.size());
  for (const MethodResult& result : results) {
    GOALREC_CHECK_EQ(result.lists.size(), users.size());
    BreakdownRow row;
    row.name = result.name;
    std::vector<double> tpr[kGoalCountBuckets];
    std::vector<double> completeness[kGoalCountBuckets];
    for (size_t u = 0; u < users.size(); ++u) {
      const data::EvalUser& user = users[u];
      if (user.true_goals.empty()) continue;  // unknown pursued goals
      size_t bucket = BucketOf(user.true_goals.size());
      if (!user.hidden.empty()) {
        tpr[bucket].push_back(
            TruePositiveRate(result.lists[u], user.hidden));
      }
      util::Summary summary = CompletenessAfterList(
          library, user.true_goals, user.visible, result.lists[u]);
      completeness[bucket].push_back(summary.avg);
    }
    for (size_t b = 0; b < kGoalCountBuckets; ++b) {
      row.cells[b].avg_tpr = util::Mean(tpr[b]);
      row.cells[b].completeness_avg_avg = util::Mean(completeness[b]);
      row.cells[b].num_users = completeness[b].size();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderGoalCountBreakdown(const std::vector<BreakdownRow>& rows) {
  std::string out;
  const char* bucket_labels[kGoalCountBuckets] = {"1 goal", "2 goals",
                                                  "3 goals", ">=4 goals"};
  {
    TextTable table({"method (AvgTPR)", bucket_labels[0], bucket_labels[1],
                     bucket_labels[2], bucket_labels[3]});
    for (const BreakdownRow& row : rows) {
      std::vector<std::string> cells = {row.name};
      for (size_t b = 0; b < kGoalCountBuckets; ++b) {
        cells.push_back(FormatDouble(row.cells[b].avg_tpr, 3));
      }
      table.AddRow(std::move(cells));
    }
    out += table.ToString();
  }
  out += "\n";
  {
    TextTable table({"method (completeness)", bucket_labels[0],
                     bucket_labels[1], bucket_labels[2], bucket_labels[3]});
    for (const BreakdownRow& row : rows) {
      std::vector<std::string> cells = {row.name};
      for (size_t b = 0; b < kGoalCountBuckets; ++b) {
        cells.push_back(
            FormatDouble(row.cells[b].completeness_avg_avg, 3));
      }
      table.AddRow(std::move(cells));
    }
    out += table.ToString();
  }
  if (!rows.empty()) {
    out += "\nusers per bucket:";
    for (size_t b = 0; b < kGoalCountBuckets; ++b) {
      out += " " + std::to_string(rows[0].cells[b].num_users);
    }
    out += "\n";
  }
  return out;
}

}  // namespace goalrec::eval
