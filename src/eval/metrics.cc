#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::eval {
namespace {

model::IdSet SortedActions(const core::RecommendationList& list) {
  model::IdSet actions = core::ActionsOf(list);
  util::Normalize(actions);
  return actions;
}

}  // namespace

double ListOverlap(const core::RecommendationList& a,
                   const core::RecommendationList& b) {
  if (a.empty() && b.empty()) return 0.0;
  model::IdSet sa = SortedActions(a);
  model::IdSet sb = SortedActions(b);
  size_t common = util::IntersectionSize(sa, sb);
  return static_cast<double>(common) /
         static_cast<double>(std::max(sa.size(), sb.size()));
}

double MeanListOverlap(const std::vector<core::RecommendationList>& a,
                       const std::vector<core::RecommendationList>& b) {
  GOALREC_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += ListOverlap(a[i], b[i]);
  return total / static_cast<double>(a.size());
}

double GoalCompleteness(const model::ImplementationLibrary& library,
                        model::GoalId g, const model::Activity& performed) {
  double best = 0.0;
  for (model::ImplId p : library.ImplsOfGoal(g)) {
    std::span<const model::ActionId> actions = library.ActionsOf(p);
    if (actions.empty()) continue;
    double completeness =
        static_cast<double>(util::IntersectionSize(actions, performed)) /
        static_cast<double>(actions.size());
    best = std::max(best, completeness);
  }
  return best;
}

util::Summary CompletenessAfterList(
    const model::ImplementationLibrary& library, const model::IdSet& goals,
    const model::Activity& activity, const core::RecommendationList& list) {
  model::Activity performed = activity;
  for (const core::ScoredAction& entry : list) performed.push_back(entry.action);
  util::Normalize(performed);
  std::vector<double> values;
  values.reserve(goals.size());
  for (model::GoalId g : goals) {
    values.push_back(GoalCompleteness(library, g, performed));
  }
  return util::Summarize(values);
}

double TruePositiveRate(const core::RecommendationList& list,
                        const model::Activity& hidden) {
  if (list.empty()) return 0.0;
  size_t hits = 0;
  for (const core::ScoredAction& entry : list) {
    if (util::Contains(hidden, entry.action)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(list.size());
}

util::Summary PairwiseFeatureSimilarity(const model::ActionFeatureTable& table,
                                        const core::RecommendationList& list) {
  std::vector<double> sims;
  for (size_t i = 0; i < list.size(); ++i) {
    for (size_t j = i + 1; j < list.size(); ++j) {
      sims.push_back(
          model::FeatureSimilarity(table, list[i].action, list[j].action));
    }
  }
  return util::Summarize(sims);
}

double PopularityCorrelation(
    const std::vector<model::Activity>& activities,
    const std::vector<core::RecommendationList>& lists, size_t top_n) {
  // Count activity appearances per action.
  std::unordered_map<model::ActionId, size_t> activity_counts;
  for (const model::Activity& activity : activities) {
    for (model::ActionId a : activity) ++activity_counts[a];
  }
  // The top_n most popular actions, ties broken by ascending id for
  // determinism.
  std::vector<std::pair<model::ActionId, size_t>> ranked(
      activity_counts.begin(), activity_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);
  if (ranked.size() < 2) return 0.0;

  // Appearances of those actions across the recommendation lists.
  std::unordered_map<model::ActionId, size_t> list_counts;
  for (const core::RecommendationList& list : lists) {
    for (const core::ScoredAction& entry : list) ++list_counts[entry.action];
  }
  std::vector<double> x, y;
  x.reserve(ranked.size());
  y.reserve(ranked.size());
  for (const auto& [action, count] : ranked) {
    x.push_back(static_cast<double>(count));
    auto it = list_counts.find(action);
    y.push_back(it == list_counts.end() ? 0.0
                                        : static_cast<double>(it->second));
  }
  return util::PearsonCorrelation(x, y);
}

void AddRecListFrequencies(const std::vector<core::RecommendationList>& lists,
                           util::Histogram& histogram) {
  if (lists.empty()) return;
  std::unordered_map<model::ActionId, size_t> list_counts;
  for (const core::RecommendationList& list : lists) {
    model::IdSet distinct = SortedActions(list);
    for (model::ActionId a : distinct) ++list_counts[a];
  }
  double denom = static_cast<double>(lists.size());
  for (const auto& [action, count] : list_counts) {
    histogram.Add(static_cast<double>(count) / denom);
  }
}

void AddImplSetFrequencies(const model::ImplementationLibrary& library,
                           const std::vector<core::RecommendationList>& lists,
                           util::Histogram& histogram) {
  if (library.num_implementations() == 0) return;
  model::IdSet retrieved;
  for (const core::RecommendationList& list : lists) {
    for (const core::ScoredAction& entry : list) {
      retrieved.push_back(entry.action);
    }
  }
  util::Normalize(retrieved);
  double denom = static_cast<double>(library.num_implementations());
  for (model::ActionId a : retrieved) {
    if (a >= library.num_actions()) continue;
    histogram.Add(static_cast<double>(library.ImplsOfAction(a).size()) /
                  denom);
  }
}

double CatalogCoverage(const std::vector<core::RecommendationList>& lists,
                       uint32_t num_actions) {
  if (num_actions == 0) return 0.0;
  model::IdSet recommended;
  for (const core::RecommendationList& list : lists) {
    for (const core::ScoredAction& entry : list) {
      recommended.push_back(entry.action);
    }
  }
  util::Normalize(recommended);
  return static_cast<double>(recommended.size()) /
         static_cast<double>(num_actions);
}

double RecommendationGini(const std::vector<core::RecommendationList>& lists,
                          uint32_t num_actions) {
  if (num_actions == 0) return 0.0;
  std::vector<double> counts(num_actions, 0.0);
  double total = 0.0;
  for (const core::RecommendationList& list : lists) {
    for (const core::ScoredAction& entry : list) {
      if (entry.action >= num_actions) continue;
      counts[entry.action] += 1.0;
      total += 1.0;
    }
  }
  if (total == 0.0) return 0.0;
  // Gini = (Σ_i (2i - n - 1) x_(i)) / (n Σ x) with x sorted ascending.
  std::sort(counts.begin(), counts.end());
  double weighted = 0.0;
  double n = static_cast<double>(num_actions);
  for (uint32_t i = 0; i < num_actions; ++i) {
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * counts[i];
  }
  return weighted / (n * total);
}

}  // namespace goalrec::eval
