#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"

namespace goalrec::eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GOALREC_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  GOALREC_CHECK_LE(cells.size(), headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::string out = util::FormatCsvLine(headers_);
  out += '\n';
  for (const auto& row : rows_) {
    out += util::FormatCsvLine(row);
    out += '\n';
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace goalrec::eval
