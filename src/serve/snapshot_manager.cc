#include "serve/snapshot_manager.h"

#include <chrono>
#include <utility>

#include "model/library_io.h"
#include "util/logging.h"

namespace goalrec::serve {

SnapshotManager::SnapshotManager(
    std::shared_ptr<const model::LibrarySnapshot> initial,
    LadderFactory factory, obs::MetricRegistry* metrics)
    : factory_(std::move(factory)) {
  GOALREC_CHECK(initial != nullptr);
  GOALREC_CHECK(factory_ != nullptr);
  obs::MetricRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricRegistry::Default();
  reload_ok_ = registry.GetCounter("goalrec_library_reload_total",
                                   {{"result", "ok"}},
                                   "Library reload attempts, by result");
  reload_error_ = registry.GetCounter("goalrec_library_reload_total",
                                      {{"result", "error"}},
                                      "Library reload attempts, by result");
  reload_latency_us_ = registry.GetHistogram(
      "goalrec_library_reload_latency_us", obs::DefaultLatencyBucketsUs(), {},
      "Reload latency: load + ladder build + swap (microseconds)");
  library_version_ =
      registry.GetGauge("goalrec_library_version", {},
                        "Version of the currently served library snapshot");
  library_impls_ =
      registry.GetGauge("goalrec_library_implementations", {},
                        "Implementations in the currently served library");

  auto serving = BuildServing(std::move(initial));
  GOALREC_CHECK(serving.ok()) << serving.status().ToString();
  const ServingSnapshot& built = *serving.value();
  GOALREC_CHECK(!built.rungs.empty())
      << "LadderFactory produced an empty ladder";
  expected_rungs_.reserve(built.rungs.size());
  for (const ServingEngine::Rung& rung : built.rungs) {
    expected_rungs_.push_back(rung.name);
  }
  library_version_->Set(static_cast<int64_t>(built.library->version));
  library_impls_->Set(
      static_cast<int64_t>(built.library->library.num_implementations()));
  current_.store(std::move(serving).value(), std::memory_order_release);
}

util::StatusOr<std::shared_ptr<const ServingSnapshot>>
SnapshotManager::BuildServing(
    std::shared_ptr<const model::LibrarySnapshot> snapshot) const {
  GOALREC_CHECK(snapshot != nullptr);
  auto serving = std::make_shared<ServingSnapshot>();
  serving->library = std::move(snapshot);
  factory_(serving->library->library, *serving);
  for (const ServingEngine::Rung& rung : serving->rungs) {
    if (rung.recommender == nullptr) {
      return util::FailedPreconditionError(
          "LadderFactory left rung '" + rung.name + "' without a recommender");
    }
  }
  if (!expected_rungs_.empty()) {
    if (serving->rungs.size() != expected_rungs_.size()) {
      return util::FailedPreconditionError(
          "LadderFactory changed the ladder shape: expected " +
          std::to_string(expected_rungs_.size()) + " rungs, got " +
          std::to_string(serving->rungs.size()));
    }
    for (size_t i = 0; i < expected_rungs_.size(); ++i) {
      if (serving->rungs[i].name != expected_rungs_[i]) {
        return util::FailedPreconditionError(
            "LadderFactory changed rung " + std::to_string(i) + " from '" +
            expected_rungs_[i] + "' to '" + serving->rungs[i].name + "'");
      }
    }
  }
  return std::shared_ptr<const ServingSnapshot>(std::move(serving));
}

util::Status SnapshotManager::Reload(
    std::shared_ptr<const model::LibrarySnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  auto start = std::chrono::steady_clock::now();
  auto serving = BuildServing(std::move(snapshot));
  double elapsed_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  reload_latency_us_->Observe(elapsed_us);
  if (!serving.ok()) {
    reload_error_->Increment();
    GOALREC_LOG(WARN) << "library reload rejected"
                      << util::Kv("status", serving.status().ToString());
    return serving.status();
  }
  const ServingSnapshot& built = *serving.value();
  uint64_t version = built.library->version;
  size_t impls = built.library->library.num_implementations();
  // The swap: in-flight queries keep the snapshot they acquired; new
  // queries see the replacement from the next Acquire() on.
  current_.store(std::move(serving).value(), std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  reload_ok_->Increment();
  library_version_->Set(static_cast<int64_t>(version));
  library_impls_->Set(static_cast<int64_t>(impls));
  GOALREC_LOG(INFO) << "library reloaded" << util::Kv("version", version)
                    << util::Kv("implementations", impls);
  return util::Status::Ok();
}

util::StatusOr<uint64_t> SnapshotManager::ReloadFromFile(
    const std::string& path, const util::RetryOptions& retry) {
  auto loaded = model::LoadLibrarySnapshot(path, retry);
  if (!loaded.ok()) {
    reload_error_->Increment();
    return loaded.status();
  }
  uint64_t version = loaded.value()->version;
  util::Status status = Reload(std::move(loaded).value());
  if (!status.ok()) return status;
  return version;
}

}  // namespace goalrec::serve
