#include "serve/snapshot_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/recommender.h"
#include "model/library_io.h"
#include "model/validate.h"
#include "obs/recorder.h"
#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::serve {

SnapshotManager::SnapshotManager(
    std::shared_ptr<const model::LibrarySnapshot> initial,
    LadderFactory factory, ReloadGuardOptions guard,
    obs::MetricRegistry* metrics)
    : factory_(std::move(factory)), guard_(std::move(guard)) {
  GOALREC_CHECK(initial != nullptr);
  GOALREC_CHECK(factory_ != nullptr);
  obs::MetricRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricRegistry::Default();
  reload_ok_ = registry.GetCounter("goalrec_library_reload_total",
                                   {{"result", "ok"}},
                                   "Library reload attempts, by result");
  reload_error_ = registry.GetCounter("goalrec_library_reload_total",
                                      {{"result", "error"}},
                                      "Library reload attempts, by result");
  reload_latency_us_ = registry.GetHistogram(
      "goalrec_library_reload_latency_us", obs::DefaultLatencyBucketsUs(), {},
      "Reload latency: load + ladder build + swap (microseconds)");
  library_version_ =
      registry.GetGauge("goalrec_library_version", {},
                        "Version of the currently served library snapshot");
  library_impls_ =
      registry.GetGauge("goalrec_library_implementations", {},
                        "Implementations in the currently served library");
  snapshot_age_seconds_ = registry.GetGauge(
      "goalrec_snapshot_age_seconds", {},
      "Seconds since the serving snapshot was last swapped in "
      "(refreshed on swap and on every periodic export)");
  constexpr char kFailureHelp[] =
      "Rejected reload candidates, by guard stage";
  failure_load_ = registry.GetCounter("goalrec_reload_failure_total",
                                      {{"reason", "load"}}, kFailureHelp);
  failure_ladder_ = registry.GetCounter("goalrec_reload_failure_total",
                                        {{"reason", "ladder"}}, kFailureHelp);
  failure_validate_ = registry.GetCounter("goalrec_reload_failure_total",
                                          {{"reason", "validate"}},
                                          kFailureHelp);
  failure_canary_ = registry.GetCounter("goalrec_reload_failure_total",
                                        {{"reason", "canary"}}, kFailureHelp);
  failure_delta_ = registry.GetCounter("goalrec_reload_failure_total",
                                       {{"reason", "delta"}}, kFailureHelp);
  failure_compact_ = registry.GetCounter("goalrec_reload_failure_total",
                                         {{"reason", "compact"}}, kFailureHelp);
  delta_segments_ = registry.GetGauge(
      "goalrec_delta_segments_active", {},
      "Delta segments applied on top of the serving base "
      "(the compaction backlog)");
  delta_tombstones_ = registry.GetGauge(
      "goalrec_delta_tombstoned_implementations", {},
      "Tombstoned implementations in the merged delta view");

  if (guard_.validate) {
    util::Status valid = model::ValidateLibrary(initial->library);
    GOALREC_CHECK(valid.ok()) << "initial library snapshot is invalid: "
                              << valid.ToString();
  }
  auto serving = BuildServing(std::move(initial));
  GOALREC_CHECK(serving.ok()) << serving.status().ToString();
  const ServingSnapshot& built = *serving.value();
  GOALREC_CHECK(!built.rungs.empty())
      << "LadderFactory produced an empty ladder";
  expected_rungs_.reserve(built.rungs.size());
  for (const ServingEngine::Rung& rung : built.rungs) {
    expected_rungs_.push_back(rung.name);
  }
  library_version_->Set(static_cast<int64_t>(built.library->version));
  library_impls_->Set(
      static_cast<int64_t>(built.library->library.num_implementations()));
  uint64_t version = built.library->version;
  current_.store(std::move(serving).value(), std::memory_order_release);
  last_swap_ns_.store(obs::FlightRecorder::NowNs(), std::memory_order_relaxed);
  snapshot_age_seconds_->Set(0);
  obs::FlightRecorder::Default().Record(obs::RecorderEventType::kSnapshotSwap,
                                        0, 0, version);
  // Last: the hook may fire from a scraping thread as soon as it is
  // registered, so everything it reads must already be initialised.
  registry_ = &registry;
  age_hook_id_ = registry.AddScrapeHook([this] { RefreshAgeGauge(); });
}

SnapshotManager::~SnapshotManager() {
  if (registry_ != nullptr) registry_->RemoveScrapeHook(age_hook_id_);
}

double SnapshotManager::snapshot_age_seconds() const {
  int64_t since =
      obs::FlightRecorder::NowNs() - last_swap_ns_.load(std::memory_order_relaxed);
  return since <= 0 ? 0.0 : static_cast<double>(since) / 1e9;
}

void SnapshotManager::RefreshAgeGauge() const {
  snapshot_age_seconds_->Set(static_cast<int64_t>(snapshot_age_seconds()));
}

util::StatusOr<std::shared_ptr<const ServingSnapshot>>
SnapshotManager::BuildServing(
    std::shared_ptr<const model::LibrarySnapshot> snapshot) const {
  GOALREC_CHECK(snapshot != nullptr);
  auto serving = std::make_shared<ServingSnapshot>();
  serving->library = std::move(snapshot);
  factory_(serving->library->library, *serving);
  for (const ServingEngine::Rung& rung : serving->rungs) {
    if (rung.recommender == nullptr) {
      return util::FailedPreconditionError(
          "LadderFactory left rung '" + rung.name + "' without a recommender");
    }
  }
  if (!expected_rungs_.empty()) {
    if (serving->rungs.size() != expected_rungs_.size()) {
      return util::FailedPreconditionError(
          "LadderFactory changed the ladder shape: expected " +
          std::to_string(expected_rungs_.size()) + " rungs, got " +
          std::to_string(serving->rungs.size()));
    }
    for (size_t i = 0; i < expected_rungs_.size(); ++i) {
      if (serving->rungs[i].name != expected_rungs_[i]) {
        return util::FailedPreconditionError(
            "LadderFactory changed rung " + std::to_string(i) + " from '" +
            expected_rungs_[i] + "' to '" + serving->rungs[i].name + "'");
      }
    }
  }
  return std::shared_ptr<const ServingSnapshot>(std::move(serving));
}

util::Status SnapshotManager::RunGuard(const ServingSnapshot& built,
                                       obs::Counter** reason) const {
  if (guard_.validate) {
    util::Status valid = model::ValidateLibrary(built.library->library);
    if (!valid.ok()) {
      *reason = failure_validate_;
      return util::Status(valid.code(),
                          "candidate failed validation: " + valid.message());
    }
  }
  if (guard_.canary_probes.empty()) return util::Status::Ok();

  const model::ImplementationLibrary& library = built.library->library;
  const core::Recommender& top = *built.rungs.front().recommender;
  size_t passes = 0;
  size_t first_failed = guard_.canary_probes.size();
  for (size_t i = 0; i < guard_.canary_probes.size(); ++i) {
    model::Activity activity;
    for (const std::string& name : guard_.canary_probes[i]) {
      if (std::optional<uint32_t> id = library.actions().Find(name);
          id.has_value()) {
        activity.push_back(*id);
      }
    }
    util::Normalize(activity);
    bool passed = false;
    if (!activity.empty()) {
      passed = !top.Recommend(activity, guard_.canary_k).empty();
    }
    if (passed) {
      ++passes;
    } else if (first_failed == guard_.canary_probes.size()) {
      first_failed = i;
    }
  }
  size_t need =
      std::min(guard_.min_canary_passes, guard_.canary_probes.size());
  if (passes < need) {
    *reason = failure_canary_;
    return util::FailedPreconditionError(
        "candidate failed canary: " + std::to_string(passes) + "/" +
        std::to_string(guard_.canary_probes.size()) +
        " probes passed (need " + std::to_string(need) +
        "; first failing probe " + std::to_string(first_failed) + ")");
  }
  return util::Status::Ok();
}

util::Status SnapshotManager::CountFailure(obs::Counter* reason_counter,
                                           util::Status status) {
  reason_counter->Increment();
  reload_error_->Increment();
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  GOALREC_LOG(WARN) << "library reload rejected"
                    << util::Kv("status", status.ToString());
  return status;
}

util::Status SnapshotManager::Reload(
    std::shared_ptr<const model::LibrarySnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  auto start = std::chrono::steady_clock::now();
  auto serving = BuildServing(std::move(snapshot));
  obs::Counter* guard_reason = failure_validate_;
  util::Status guard_status = serving.ok()
                                  ? RunGuard(*serving.value(), &guard_reason)
                                  : serving.status();
  double elapsed_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  reload_latency_us_->Observe(elapsed_us);
  if (!serving.ok()) {
    return CountFailure(failure_ladder_, serving.status());
  }
  if (!guard_status.ok()) {
    return CountFailure(guard_reason, guard_status);
  }
  const ServingSnapshot& built = *serving.value();
  uint64_t version = built.library->version;
  size_t impls = built.library->library.num_implementations();
  // The swap: in-flight queries keep the snapshot they acquired; new
  // queries see the replacement from the next Acquire() on.
  current_.store(std::move(serving).value(), std::memory_order_release);
  last_swap_ns_.store(obs::FlightRecorder::NowNs(), std::memory_order_relaxed);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  reload_ok_->Increment();
  library_version_->Set(static_cast<int64_t>(version));
  library_impls_->Set(static_cast<int64_t>(impls));
  snapshot_age_seconds_->Set(0);
  obs::FlightRecorder::Default().Record(obs::RecorderEventType::kSnapshotSwap,
                                        0, 0, version);
  GOALREC_LOG(INFO) << "library reloaded" << util::Kv("version", version)
                    << util::Kv("implementations", impls);
  return util::Status::Ok();
}

util::StatusOr<uint64_t> SnapshotManager::ReloadFromFile(
    const std::string& path, const util::RetryOptions& retry,
    const model::LoadOptions& load_options) {
  auto loaded = model::LoadLibrarySnapshot(path, retry, load_options);
  if (!loaded.ok()) {
    return CountFailure(failure_load_, loaded.status());
  }
  uint64_t version = loaded.value()->version;
  util::Status status = Reload(std::move(loaded).value());
  if (!status.ok()) return status;
  return version;
}

util::StatusOr<uint64_t> SnapshotManager::ReloadFromDeltaLog(
    model::DeltaLog& log) {
  std::vector<model::QuarantinedSegment> before = log.quarantined();
  util::StatusOr<model::DeltaLog::PollResult> poll = log.Poll();
  if (!poll.ok()) {
    // Base-level failure: the base snapshot is unreadable or a re-anchored
    // base failed to decode. The log kept its previous view; we keep our
    // previous snapshot.
    return CountFailure(failure_compact_, poll.status());
  }

  // Segments quarantined by this poll (torn/corrupt/out-of-order tail) are
  // the designed degradation: the valid prefix still publishes below, but
  // each fresh quarantine is counted and logged so dashboards see it.
  int64_t fresh = 0;
  for (const model::QuarantinedSegment& q : log.quarantined()) {
    bool seen = false;
    for (const model::QuarantinedSegment& b : before) {
      if (b.file == q.file) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    ++fresh;
    GOALREC_LOG(WARN) << "delta segment quarantined"
                      << util::Kv("file", q.file)
                      << util::Kv("reason", q.reason);
  }
  if (fresh > 0) failure_delta_->Increment(fresh);

  const model::DeltaLogStats stats = log.stats();
  delta_segments_->Set(static_cast<int64_t>(stats.segments_active));
  delta_tombstones_->Set(
      static_cast<int64_t>(stats.view.tombstoned_implementations));

  if (poll.value().segments_applied == 0 && !poll.value().reopened_base) {
    return current_version();  // no-op poll: nothing new to publish
  }
  auto snapshot = model::MakeSnapshot(log.library(), log.dir());
  uint64_t version = snapshot->version;
  if (util::Status status = Reload(std::move(snapshot)); !status.ok()) {
    return status;
  }
  return version;
}

util::Status SnapshotManager::CountDeltaFailure(util::Status status) {
  return CountFailure(failure_delta_, std::move(status));
}

util::Status SnapshotManager::CountCompactFailure(util::Status status) {
  return CountFailure(failure_compact_, std::move(status));
}

}  // namespace goalrec::serve
