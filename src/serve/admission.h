#ifndef GOALREC_SERVE_ADMISSION_H_
#define GOALREC_SERVE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "util/deadline.h"
#include "util/status.h"

// Overload protection in front of the serving engine. Under a traffic
// spike an unbounded engine slows every query down together until all of
// them miss their deadlines; the admission controller instead keeps the
// concurrency at the sustainable level and *sheds* the excess, so admitted
// queries keep their latency and rejected ones fail fast with
// kResourceExhausted (cheap for the caller to retry elsewhere or surface).
//
// Three cooperating pieces:
//
//  * A bounded, deadline-aware wait queue with two priority classes.
//    Interactive queries queue ahead of batch ones and batch is shed
//    first; a query whose remaining deadline budget cannot cover the
//    EWMA-predicted queue wait is rejected on arrival instead of timing
//    out inside a strategy.
//  * An adaptive concurrency limiter (AIMD): the in-flight cap creeps up
//    by one after a streak of queries whose latency stayed near the EWMA
//    no-load baseline, and backs off multiplicatively when latency
//    inflates past `latency_threshold` × baseline — discovering the
//    sustainable parallelism instead of requiring a hand-tuned count.
//  * Metrics: admitted/rejected counters (by priority and reason), queue
//    depth and in-flight gauges, the live concurrency limit, and a queue
//    wait histogram, all through src/obs/.
//
// The controller is deliberately engine-agnostic: Admit() blocks until a
// slot is granted (or sheds), Release() returns the slot and feeds the
// limiter one latency sample. The per-rung circuit breakers
// (serve/circuit_breaker.h) live in the engine itself, since they gate
// individual rungs, not whole queries.

namespace goalrec::serve {

/// Who is asking. Interactive traffic (a user waiting on the answer) is
/// admitted ahead of batch/eval traffic and shed last.
enum class QueryPriority { kInteractive = 0, kBatch = 1 };

const char* QueryPriorityLabel(QueryPriority priority);

/// Why an admission was refused (the `reason` metric label).
enum class AdmissionRejectReason {
  kQueueFull,      // the priority class's queue is at capacity
  kDeadline,       // predicted queue wait exceeds the remaining budget
  kQueueTimeout,   // budget expired while waiting in the queue
  kCancelled,      // caller cancelled while waiting
};

struct AdmissionOptions {
  /// Starting in-flight cap; the limiter adapts from here.
  int initial_limit = 8;
  int min_limit = 1;
  int max_limit = 128;
  /// Disables adaptation: the limit stays at initial_limit.
  bool adaptive = true;
  /// EWMA smoothing factor for the no-load latency baseline.
  double baseline_alpha = 0.2;
  /// Multiplicative backoff fires when a sample exceeds
  /// latency_threshold × baseline.
  double latency_threshold = 2.0;
  /// New limit on backoff: max(min_limit, limit × backoff_ratio).
  double backoff_ratio = 0.9;
  /// Consecutive in-threshold samples before an additive +1 increase.
  int increase_after = 16;
  /// Wait-queue capacity per priority class. Zero means that class is
  /// never queued: it is admitted immediately or shed.
  size_t max_queue_interactive = 64;
  size_t max_queue_batch = 16;
  /// Reject on arrival when the EWMA-predicted queue wait plus the
  /// service-time estimate (the limiter's latency baseline) exceeds the
  /// query's remaining deadline budget — a budget that only covers the
  /// wait admits a query that is already doomed.
  bool deadline_aware = true;
  /// EWMA smoothing factor for the predicted queue wait.
  double queue_wait_alpha = 0.3;
  /// Operator-provided service-time estimate that seeds the latency
  /// baseline (and therefore the deadline-aware service estimate) before
  /// the first sample arrives. Zero means learn from the first Release().
  /// Seeding matters under a cold-start burst: with no baseline the
  /// controller admits everything and the first round of queries discovers
  /// the overload by missing their deadlines.
  std::chrono::nanoseconds initial_baseline{0};
  /// Registry for the admission metrics; null means
  /// obs::MetricRegistry::Default(). Not owned; must outlive the
  /// controller.
  obs::MetricRegistry* metrics = nullptr;
  /// Test seam: the controller's notion of "now" for queue-wait
  /// accounting. Defaults to the steady clock. (Blocking waits still use
  /// the real clock; tests that need exact wait control drive Release()
  /// from a second thread instead.)
  std::function<std::chrono::steady_clock::time_point()> now;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Admits one query or sheds it. Returns OK once an in-flight slot is
  /// held; every OK return must be paired with exactly one Release().
  /// Sheds with kResourceExhausted when the class queue is full, when the
  /// predicted queue wait cannot fit in `deadline`, or when the budget
  /// expires while queued; returns kCancelled when `cancel` fires while
  /// waiting. Thread-safe; interactive waiters are granted before batch
  /// waiters regardless of arrival order.
  util::Status Admit(QueryPriority priority, const util::Deadline& deadline,
                     const util::CancellationToken& cancel = {});

  /// Returns the slot taken by a successful Admit() and feeds the limiter
  /// one latency sample. Pass service time only (the engine passes ladder
  /// time, not queue wait): the limiter's congestion signal and the
  /// admission service estimate must not count the controller's own
  /// queueing against the workload. `deadline_met` is informational
  /// (goodput counter); the limiter keys off latency alone. Pass
  /// `limiter_sample = false` to return the slot without feeding the
  /// limiter — the engine does this for breaker-gated queries, whose
  /// skip-to-the-floor latencies say nothing about the workload's service
  /// time and would otherwise drag the baseline down to microseconds.
  void Release(std::chrono::nanoseconds latency, bool deadline_met,
               bool limiter_sample = true);

  /// Current adaptive in-flight cap.
  int concurrency_limit() const;
  /// Queries currently holding slots.
  int in_flight() const;
  /// Waiters currently queued in `priority`'s class.
  size_t queue_depth(QueryPriority priority) const;
  /// The limiter's current no-load latency estimate (0 until the first
  /// sample).
  std::chrono::nanoseconds latency_baseline() const;

 private:
  struct ClassState {
    size_t waiting = 0;  // waiters in this class (FIFO within the class)
    obs::Gauge* depth = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected[4] = {nullptr, nullptr, nullptr, nullptr};
  };

  /// True when a waiter of `priority` may take a slot now. Caller holds
  /// mutex_.
  bool CanGrantLocked(QueryPriority priority) const;
  /// Feeds one latency sample to the AIMD limiter. Caller holds mutex_.
  void UpdateLimitLocked(std::chrono::nanoseconds latency);
  void RejectLocked(QueryPriority priority, AdmissionRejectReason reason);

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  int limit_ = 0;
  int in_flight_ = 0;
  int good_streak_ = 0;
  double baseline_us_ = 0.0;
  double predicted_wait_us_ = 0.0;
  ClassState classes_[2];

  obs::Gauge* limit_gauge_ = nullptr;
  obs::Gauge* in_flight_gauge_ = nullptr;
  obs::Counter* limit_increases_ = nullptr;
  obs::Counter* limit_backoffs_ = nullptr;
  obs::Counter* deadline_met_ = nullptr;
  obs::Counter* deadline_missed_ = nullptr;
  obs::Histogram* queue_wait_us_ = nullptr;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_ADMISSION_H_
