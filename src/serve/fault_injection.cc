#include "serve/fault_injection.h"

namespace goalrec::serve {

FaultInjector::FaultInjector(FaultInjectionOptions options)
    : options_(options), rng_(options.seed) {}

util::Status FaultInjector::MaybeFail(std::string_view op) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (!rng_.Bernoulli(options_.error_rate)) return util::Status::Ok();
  ++counters_.errors;
  return util::UnavailableError("injected fault: " + std::string(op));
}

std::chrono::milliseconds FaultInjector::MaybeDelay(std::string_view /*op*/) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  const int64_t burst_ms = options_.latency_burst_ms > 0
                               ? options_.latency_burst_ms
                               : options_.latency_ms;
  // An active burst delays unconditionally and consumes no schedule draw,
  // so the Bernoulli stream (and hence determinism for callers probing
  // seeds) is unaffected by burst length.
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++counters_.delays;
    return std::chrono::milliseconds(burst_ms);
  }
  const bool spike_possible =
      options_.latency_ms > 0 ||
      (options_.latency_burst_count > 0 && options_.latency_burst_ms > 0);
  if (!spike_possible || !rng_.Bernoulli(options_.latency_rate)) {
    return std::chrono::milliseconds::zero();
  }
  ++counters_.delays;
  if (options_.latency_burst_count > 0) {
    ++counters_.bursts;
    burst_remaining_ = options_.latency_burst_count - 1;
    return std::chrono::milliseconds(burst_ms);
  }
  return std::chrono::milliseconds(options_.latency_ms);
}

bool FaultInjector::MaybeTruncate(std::string* bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (bytes->empty() || !rng_.Bernoulli(options_.partial_read_rate)) {
    return false;
  }
  ++counters_.truncations;
  bytes->resize(rng_.UniformUint32(static_cast<uint32_t>(bytes->size())));
  return true;
}

std::string_view FsFaultToString(FsFault fault) {
  switch (fault) {
    case FsFault::kNone:
      return "none";
    case FsFault::kTruncate:
      return "truncate";
    case FsFault::kBitFlip:
      return "bitflip";
    case FsFault::kPartialWrite:
      return "partial_write";
  }
  return "unknown";
}

FsFault FaultInjector::MaybeCorruptBytes(std::string* bytes,
                                         std::string_view old_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (bytes->empty()) return FsFault::kNone;
  if (rng_.Bernoulli(options_.fs_truncate_rate)) {
    ++counters_.fs_truncations;
    bytes->resize(rng_.UniformUint32(static_cast<uint32_t>(bytes->size())));
    return FsFault::kTruncate;
  }
  if (rng_.Bernoulli(options_.fs_bitflip_rate)) {
    ++counters_.fs_bitflips;
    uint32_t byte = rng_.UniformUint32(static_cast<uint32_t>(bytes->size()));
    (*bytes)[byte] = static_cast<char>(
        (*bytes)[byte] ^ (1u << rng_.UniformUint32(8)));
    return FsFault::kBitFlip;
  }
  if (rng_.Bernoulli(options_.fs_partial_write_rate)) {
    ++counters_.fs_partial_writes;
    uint32_t keep = rng_.UniformUint32(static_cast<uint32_t>(bytes->size()));
    if (old_bytes.size() > keep) {
      // Torn replace: the first `keep` new bytes landed, the rest is still
      // the old file.
      bytes->replace(keep, std::string::npos, old_bytes.substr(keep));
    } else {
      bytes->resize(keep);
    }
    return FsFault::kPartialWrite;
  }
  return FsFault::kNone;
}

std::chrono::milliseconds FaultInjector::MaybeRenameDelay() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (options_.fs_rename_delay_ms <= 0 ||
      !rng_.Bernoulli(options_.fs_rename_delay_rate)) {
    return std::chrono::milliseconds::zero();
  }
  ++counters_.rename_delays;
  return std::chrono::milliseconds(options_.fs_rename_delay_ms);
}

FaultInjector::Counters FaultInjector::counters() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace goalrec::serve
