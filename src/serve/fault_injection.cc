#include "serve/fault_injection.h"

namespace goalrec::serve {

FaultInjector::FaultInjector(FaultInjectionOptions options)
    : options_(options), rng_(options.seed) {}

util::Status FaultInjector::MaybeFail(std::string_view op) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (!rng_.Bernoulli(options_.error_rate)) return util::Status::Ok();
  ++counters_.errors;
  return util::UnavailableError("injected fault: " + std::string(op));
}

std::chrono::milliseconds FaultInjector::MaybeDelay(std::string_view /*op*/) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (options_.latency_ms <= 0 || !rng_.Bernoulli(options_.latency_rate)) {
    return std::chrono::milliseconds::zero();
  }
  ++counters_.delays;
  return std::chrono::milliseconds(options_.latency_ms);
}

bool FaultInjector::MaybeTruncate(std::string* bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.calls;
  if (bytes->empty() || !rng_.Bernoulli(options_.partial_read_rate)) {
    return false;
  }
  ++counters_.truncations;
  bytes->resize(rng_.UniformUint32(static_cast<uint32_t>(bytes->size())));
  return true;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace goalrec::serve
