#ifndef GOALREC_SERVE_POPULARITY_FLOOR_H_
#define GOALREC_SERVE_POPULARITY_FLOOR_H_

#include <vector>

#include "core/recommender.h"
#include "model/library.h"

// Structural popularity: rank actions by the number of implementations that
// contain them — the action's degree in the goal–action association graph.
// Graph-reachability analyses of recommenders (Mirza et al., arXiv
// cs/0104009) show such cheap structural signals retain much of the value of
// the full model, which is exactly what a degradation ladder needs from its
// terminal rung: an answer computable in O(k log k + |H|) with no per-query
// index probes, available even when the activity matches no implementation
// at all (where Focus/Breadth/Best Match all return empty). Unlike
// baselines::PopularityRecommender it needs no interaction data, only the
// library, so it can serve as the floor wherever the goal strategies run.

namespace goalrec::serve {

class LibraryPopularityRecommender : public core::Recommender {
 public:
  /// Precomputes the global ranking. `library` must outlive the recommender.
  explicit LibraryPopularityRecommender(
      const model::ImplementationLibrary* library);

  std::string name() const override { return "LibraryPopularity"; }

  /// The `k` highest-degree actions outside `activity`; ties by ascending
  /// id. Score is the implementation count.
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

 private:
  const model::ImplementationLibrary* library_;
  /// All actions with degree > 0, best first (precomputed once).
  core::RecommendationList ranking_;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_POPULARITY_FLOOR_H_
