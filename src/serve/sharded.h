#ifndef GOALREC_SERVE_SHARDED_H_
#define GOALREC_SERVE_SHARDED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_workspace.h"
#include "core/recommender.h"
#include "model/sharding.h"
#include "obs/metrics.h"
#include "serve/snapshot_manager.h"
#include "util/thread_pool.h"

// Sharded query serving: fan a query out across the per-shard libraries of
// a model::ShardedSnapshot, run the shard-local strategy kernels, and
// recombine the per-shard partials at the root (core/shard_merge.h) into
// the exact list the unsharded strategy would produce — bit for bit, under
// the global (score desc, logical id asc) tie order.
//
// A ShardedRecommender IS a core::Recommender, so it slots into the
// serving engine's degradation ladder unchanged: deadlines, cancellation,
// admission control and circuit breakers all operate per QUERY at the
// engine, never per shard. The shard fan-out happens inside one rung
// attempt; every shard kernel polls a per-shard COPY of the engine's
// StopToken (same deadline, same cancellation flag, private poll counters —
// the token's poll state is single-thread by contract) and the root merge
// polls the original, so a deadline cancels the whole fan (the root always
// joins its shard tasks before returning — partial shard buffers are
// discarded with the rung attempt, never merged into a served answer).
//
// See docs/serving.md ("Sharded serving") for the full design.

namespace goalrec::serve {

/// The four paper strategies, shard-served. Matches testing::OracleStrategy
/// case-for-case (serve/ cannot depend on testing/).
enum class ShardedStrategy {
  kFocusCompleteness,
  kFocusCloseness,
  kBreadth,
  kBestMatch,
};

class ShardedRecommender : public core::Recommender {
 public:
  /// Serves `strategy` over `sharded` (co-owned; its base library must stay
  /// alive, which ServingSnapshot guarantees in the serving path). With a
  /// `pool`, shard kernels run as pool tasks with the calling thread taking
  /// shard 0 inline; without one the fan-out degenerates to a sequential
  /// loop (same results — the merge is order-free by construction).
  /// `best_match_options` must not carry goal weights (sharding is exact
  /// only for the unweighted integer arithmetic; checked). Root merge time
  /// is observed into `merge_latency_us` when given.
  ShardedRecommender(std::shared_ptr<const model::ShardedSnapshot> sharded,
                     ShardedStrategy strategy,
                     util::ThreadPool* pool = nullptr,
                     core::BestMatchOptions best_match_options = {},
                     obs::Histogram* merge_latency_us = nullptr);
  ~ShardedRecommender() override;

  /// Same names as the unsharded strategies ("Focus_cmp", "Breadth", ...):
  /// sharding is a serving topology, not a different strategy, and ladder
  /// rung names must stay stable across sharded and unsharded deployments.
  std::string name() const override;

  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// Allocating path: fresh shard workspaces per call, sequential fan-out.
  core::RecommendationList RecommendCancellable(
      const model::Activity& activity, size_t k,
      const util::StopToken* stop) const override;

  /// Serving path: `workspace` is the ROOT workspace (merge buffers, final
  /// top-k, summed kernel stats); per-shard workspaces come from this
  /// recommender's warm scratch pool, so the steady-state fan-out performs
  /// no allocations. Null `workspace` falls back to RecommendCancellable.
  void RecommendPooled(util::IdSpan activity, size_t k,
                       const util::StopToken* stop,
                       core::QueryWorkspace* workspace,
                       core::RecommendationList& out) const override;

  const model::ShardedSnapshot& sharded() const { return *sharded_; }
  ShardedStrategy strategy() const { return strategy_; }

 private:
  struct FanoutScratch;
  class ScratchLease;

  ScratchLease Acquire() const;
  /// Runs body(0..num_shards-1): shards 1.. as pool tasks, shard 0 inline on
  /// the calling thread, then joins. Join is unconditional (RAII) — a body
  /// that throws or stops early never leaves a task referencing dead scratch.
  void RunPhase(FanoutScratch& scratch, bool parallel,
                const std::function<void(size_t)>& body) const;
  void ServeSharded(util::IdSpan normalized, size_t k,
                    const util::StopToken* stop, core::QueryWorkspace& root_ws,
                    FanoutScratch& scratch, bool parallel,
                    core::RecommendationList& out) const;

  std::shared_ptr<const model::ShardedSnapshot> sharded_;
  ShardedStrategy strategy_;
  util::ThreadPool* pool_;
  core::BestMatchOptions best_match_options_;
  obs::Histogram* merge_latency_us_;
  /// Per-shard kernel instances; only the vector matching strategy_ is
  /// populated.
  std::vector<std::unique_ptr<core::FocusRecommender>> focus_;
  std::vector<std::unique_ptr<core::BreadthRecommender>> breadth_;
  std::vector<std::unique_ptr<core::BestMatchRecommender>> best_match_;

  /// Warm fan-out scratch pool (per-shard workspaces + partial buffers),
  /// grown on demand by concurrent queries, never shrunk.
  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<FanoutScratch>> scratch_free_;
};

/// Options for the sharded serving ladder.
struct ShardedLadderOptions {
  uint32_t num_shards = 2;
  model::ShardingOptions sharding;
  /// Shard fan-out pool; null serves each shard sequentially on the query
  /// thread.
  util::ThreadPool* pool = nullptr;
  /// Registry for goalrec_shard_merge_latency_us; default registry if null.
  obs::MetricRegistry* metrics = nullptr;
  /// Sharded strategy rungs, best first, as (rung name, strategy). The
  /// unsharded popularity floor is always appended underneath.
  std::vector<std::pair<std::string, ShardedStrategy>> rungs = {
      {"best_match", ShardedStrategy::kBestMatch},
      {"breadth", ShardedStrategy::kBreadth}};
};

/// LadderFactory for SnapshotManager producing the standard serving ladder
/// — best_match → breadth → popularity — with the two strategy rungs served
/// sharded. Every (re)load re-partitions the new library and stores the
/// ShardedSnapshot on the ServingSnapshot, so a snapshot swap replaces ALL
/// shards atomically: queries hold either the old complete shard set or the
/// new one, never a mix. The popularity floor stays unsharded (it is a
/// precomputed list; fan-out would add cost, not shed it).
LadderFactory MakeShardedLadderFactory(ShardedLadderOptions options = {});

/// Exports per-shard gauges through the registry scrape-hook path:
///   goalrec_shard_count                — shards in the serving snapshot
///   goalrec_shard_impls{shard="i"}     — implementations on shard i
/// `provider` is called at scrape time (typically wrapping
/// SnapshotManager::Acquire) and may return null (gauges untouched — e.g.
/// an unsharded deployment). The hook is removed in the destructor.
class ShardStatsExporter {
 public:
  using Provider =
      std::function<std::shared_ptr<const model::ShardedSnapshot>()>;

  ShardStatsExporter(obs::MetricRegistry* registry, Provider provider);
  ~ShardStatsExporter();

  ShardStatsExporter(const ShardStatsExporter&) = delete;
  ShardStatsExporter& operator=(const ShardStatsExporter&) = delete;

 private:
  obs::MetricRegistry* registry_;
  Provider provider_;
  uint64_t hook_id_ = 0;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_SHARDED_H_
