#include "serve/circuit_breaker.h"

#include <algorithm>

#include "util/logging.h"

namespace goalrec::serve {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  GOALREC_CHECK(options_.failure_threshold >= 1);
  GOALREC_CHECK(options_.half_open_probes >= 1);
  options_.half_open_successes =
      std::clamp(options_.half_open_successes, 1, options_.half_open_probes);
  if (!options_.now) {
    options_.now = [] { return std::chrono::steady_clock::now(); };
  }
}

bool CircuitBreaker::Allow() {
  std::unique_lock<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      MaybeProbeLocked();
      if (state_ != State::kHalfOpen) return false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_issued_ >= options_.half_open_probes) {
        // All probes issued but none resolved (e.g. cancelled mid-flight):
        // after another cooldown, grant a fresh probe round rather than
        // refusing forever.
        if (options_.now() - half_open_since_ < options_.open_cooldown) {
          return false;
        }
        probes_issued_ = 0;
        probe_successes_ = 0;
        half_open_since_ = options_.now();
      }
      ++probes_issued_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::unique_lock<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_successes) {
        TransitionLocked(State::kClosed);
      }
      break;
    case State::kOpen:
      // A straggler finishing after the trip; ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::unique_lock<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(State::kOpen);
      }
      break;
    case State::kHalfOpen:
      // One failed probe is enough evidence; back off again.
      TransitionLocked(State::kOpen);
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return state_;
}

int64_t CircuitBreaker::transitions_to(State state) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return transitions_[static_cast<size_t>(state)];
}

void CircuitBreaker::MaybeProbeLocked() {
  if (options_.now() < open_until_) return;
  TransitionLocked(State::kHalfOpen);
}

void CircuitBreaker::TransitionLocked(State next) {
  state_ = next;
  ++transitions_[static_cast<size_t>(next)];
  consecutive_failures_ = 0;
  probes_issued_ = 0;
  probe_successes_ = 0;
  if (next == State::kHalfOpen) half_open_since_ = options_.now();
  if (next == State::kOpen) {
    std::chrono::nanoseconds cooldown = options_.open_cooldown;
    if (options_.cooldown_jitter > 0.0) {
      double stretch = 1.0 + options_.cooldown_jitter * rng_.UniformDouble();
      cooldown = std::chrono::nanoseconds(
          static_cast<int64_t>(static_cast<double>(cooldown.count()) * stretch));
    }
    open_until_ = options_.now() + cooldown;
  }
}

const char* CircuitBreakerStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace goalrec::serve
