#ifndef GOALREC_SERVE_SNAPSHOT_MANAGER_H_
#define GOALREC_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/snapshot.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "util/retry.h"
#include "util/status.h"

// Hot library reload for the serving path.
//
// The manager owns the *current* serving snapshot behind a single
// std::atomic<std::shared_ptr>: queries acquire it with one lock-free atomic
// load and hold the shared_ptr for their whole lifetime, a reload builds the
// replacement off to the side and publishes it with one atomic exchange.
// In-flight queries keep answering from the snapshot they acquired — no
// torn reads, no locks on the query path, no waiting for drain; the old
// library is destroyed when its last query finishes.
//
// A ServingSnapshot bundles the library with the ladder recommenders built
// against it, because a recommender must never outlive the library it
// indexes: co-ownership makes the swap safe by construction. The ladder
// *shape* (rung count and names) is fixed for the manager's lifetime — the
// engine resolves per-rung metrics and circuit breakers positionally at
// construction, and reloads swap the rungs' contents, not the ladder.
//
// See docs/serving.md ("Library hot reload") for the operational story.

namespace goalrec::serve {

/// One fully wired serving view: a library snapshot plus the ladder built
/// against it. Immutable after construction.
struct ServingSnapshot {
  std::shared_ptr<const model::LibrarySnapshot> library;
  /// The recommenders backing `rungs`, co-owned with the library.
  std::vector<std::unique_ptr<const core::Recommender>> owned;
  /// Ladder rungs, best first; `recommender` points into `owned`.
  std::vector<ServingEngine::Rung> rungs;
};

/// Builds the ladder for one library: push recommenders into `out.owned`
/// and the rung order into `out.rungs`. Invoked once per (re)load; must
/// produce the same rung count and names every time.
using LadderFactory = std::function<void(const model::ImplementationLibrary&,
                                         ServingSnapshot& out)>;

class SnapshotManager {
 public:
  /// Builds the initial serving snapshot from `initial` via `factory`.
  /// `metrics` defaults to obs::MetricRegistry::Default(); not owned.
  SnapshotManager(std::shared_ptr<const model::LibrarySnapshot> initial,
                  LadderFactory factory,
                  obs::MetricRegistry* metrics = nullptr);

  /// The current serving snapshot — one lock-free atomic shared_ptr load.
  /// Callers keep the returned pointer for the duration of their query.
  std::shared_ptr<const ServingSnapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Builds a ladder for `snapshot` and atomically publishes it. Fails
  /// (kFailedPrecondition, current snapshot untouched) if the factory
  /// produced a different ladder shape. Reloads are serialised; queries are
  /// never blocked.
  util::Status Reload(std::shared_ptr<const model::LibrarySnapshot> snapshot);

  /// Loads `path` (text, or binary for ".bin") with `retry` and publishes
  /// it. On any failure the current snapshot keeps serving. Returns the new
  /// library version on success.
  util::StatusOr<uint64_t> ReloadFromFile(const std::string& path,
                                          const util::RetryOptions& retry = {});

  /// Version of the currently served library.
  uint64_t current_version() const { return Acquire()->library->version; }

  /// Successful reloads since construction (the initial build excluded).
  uint64_t reload_count() const {
    return reloads_.load(std::memory_order_relaxed);
  }

 private:
  util::StatusOr<std::shared_ptr<const ServingSnapshot>> BuildServing(
      std::shared_ptr<const model::LibrarySnapshot> snapshot) const;

  LadderFactory factory_;
  /// Rung names of the initial build; every reload must reproduce them.
  std::vector<std::string> expected_rungs_;
  std::atomic<std::shared_ptr<const ServingSnapshot>> current_;
  std::atomic<uint64_t> reloads_{0};
  /// Serialises Reload/ReloadFromFile against each other only.
  std::mutex reload_mu_;

  obs::Counter* reload_ok_ = nullptr;
  obs::Counter* reload_error_ = nullptr;
  obs::Histogram* reload_latency_us_ = nullptr;
  obs::Gauge* library_version_ = nullptr;
  obs::Gauge* library_impls_ = nullptr;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_SNAPSHOT_MANAGER_H_
