#ifndef GOALREC_SERVE_SNAPSHOT_MANAGER_H_
#define GOALREC_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/delta_log.h"
#include "model/library_io.h"
#include "model/snapshot.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "util/retry.h"
#include "util/status.h"

// Hot library reload for the serving path.
//
// The manager owns the *current* serving snapshot behind a single
// std::atomic<std::shared_ptr>: queries acquire it with one lock-free atomic
// load and hold the shared_ptr for their whole lifetime, a reload builds the
// replacement off to the side and publishes it with one atomic exchange.
// In-flight queries keep answering from the snapshot they acquired — no
// torn reads, no locks on the query path, no waiting for drain; the old
// library is destroyed when its last query finishes.
//
// A ServingSnapshot bundles the library with the ladder recommenders built
// against it, because a recommender must never outlive the library it
// indexes: co-ownership makes the swap safe by construction. The ladder
// *shape* (rung count and names) is fixed for the manager's lifetime — the
// engine resolves per-rung metrics and circuit breakers positionally at
// construction, and reloads swap the rungs' contents, not the ladder.
//
// Reload guard. Every candidate snapshot runs a guard BEFORE it is
// published: structural validation (model/validate.h) and a pinned set of
// canary queries against the candidate's own ladder. A candidate failing
// any check is discarded — the swap never happens, so "rollback" is simply
// the current snapshot continuing to serve — and the failure is counted in
// goalrec_reload_failure_total{reason} (reason ∈ load|ladder|validate|
// canary). docs/data_plane.md describes the full reload state machine.
//
// See docs/serving.md ("Library hot reload") for the operational story.

namespace goalrec::model {
struct ShardedSnapshot;
}  // namespace goalrec::model

namespace goalrec::serve {

/// One fully wired serving view: a library snapshot plus the ladder built
/// against it. Immutable after construction.
struct ServingSnapshot {
  std::shared_ptr<const model::LibrarySnapshot> library;
  /// The recommenders backing `rungs`, co-owned with the library.
  std::vector<std::unique_ptr<const core::Recommender>> owned;
  /// Ladder rungs, best first; `recommender` points into `owned`.
  std::vector<ServingEngine::Rung> rungs;
  /// Shard partition of `library` when the ladder serves sharded
  /// (serve/sharded.h); null for unsharded deployments. Living on the
  /// snapshot, the whole shard set swaps atomically with the library — a
  /// query holds either the old complete set or the new one, never a mix.
  std::shared_ptr<const model::ShardedSnapshot> sharded;
};

/// Builds the ladder for one library: push recommenders into `out.owned`
/// and the rung order into `out.rungs`. Invoked once per (re)load; must
/// produce the same rung count and names every time.
using LadderFactory = std::function<void(const model::ImplementationLibrary&,
                                         ServingSnapshot& out)>;

/// Pre-publish checks a candidate snapshot must pass before it replaces the
/// serving one. Failing candidates are discarded; the current snapshot keeps
/// serving untouched.
struct ReloadGuardOptions {
  /// Run model::ValidateLibrary (index cross-consistency) on every
  /// candidate. Cheap relative to the ladder build; leave on.
  bool validate = true;
  /// Pinned canary probes, each a list of action *names* (numeric ids are
  /// renumbered across reloads; names are the stable vocabulary). For each
  /// probe the guard resolves the names against the candidate's vocabulary
  /// and queries the candidate's top rung: the probe passes when at least
  /// one name resolves and at least one recommendation comes back.
  std::vector<std::vector<std::string>> canary_probes;
  /// Recommendations requested per canary probe.
  size_t canary_k = 5;
  /// Probes that must pass for the candidate to publish. Clamped to
  /// canary_probes.size(); the default requires every probe to pass.
  size_t min_canary_passes = static_cast<size_t>(-1);
};

class SnapshotManager {
 public:
  /// Builds the initial serving snapshot from `initial` via `factory`,
  /// guarding reloads with `guard`. `metrics` defaults to
  /// obs::MetricRegistry::Default(); not owned. The initial snapshot must
  /// pass validation (checked fatally — serving cannot start from a corrupt
  /// library); canaries apply to reloads only.
  SnapshotManager(std::shared_ptr<const model::LibrarySnapshot> initial,
                  LadderFactory factory, ReloadGuardOptions guard,
                  obs::MetricRegistry* metrics = nullptr);

  /// Convenience: default guard (validation on, no canaries).
  SnapshotManager(std::shared_ptr<const model::LibrarySnapshot> initial,
                  LadderFactory factory,
                  obs::MetricRegistry* metrics = nullptr)
      : SnapshotManager(std::move(initial), std::move(factory),
                        ReloadGuardOptions{}, metrics) {}

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  ~SnapshotManager();

  /// The current serving snapshot — one lock-free atomic shared_ptr load.
  /// Callers keep the returned pointer for the duration of their query.
  std::shared_ptr<const ServingSnapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Builds a ladder for `snapshot` and atomically publishes it. Fails
  /// (kFailedPrecondition, current snapshot untouched) if the factory
  /// produced a different ladder shape. Reloads are serialised; queries are
  /// never blocked.
  util::Status Reload(std::shared_ptr<const model::LibrarySnapshot> snapshot);

  /// Loads `path` (snapshot for ".snap", binary for ".bin", text otherwise)
  /// with `retry` and `load_options`, then publishes it through the guard.
  /// On any failure the current snapshot keeps serving. Returns the new
  /// library version on success.
  util::StatusOr<uint64_t> ReloadFromFile(
      const std::string& path, const util::RetryOptions& retry = {},
      const model::LoadOptions& load_options = {});

  /// Reader side of a delta directory (docs/data_plane.md, "Delta segments
  /// & compaction"): polls `log` and, when the poll surfaced changes (new
  /// segments applied or a re-anchored base), publishes the merged library
  /// through the guard. Failure accounting follows the degradation design —
  /// the current snapshot keeps serving in every error path:
  ///   * the base is unreadable/torn, or a re-anchored base fails to
  ///     decode: goalrec_reload_failure_total{reason=compact}, error
  ///     returned;
  ///   * a published segment was quarantined this poll (torn/corrupt/
  ///     out-of-order tail): goalrec_reload_failure_total{reason=delta};
  ///     the valid prefix still publishes;
  ///   * guard rejection of the merged candidate counts under its own
  ///     reason (validate/canary/ladder) as for any reload.
  /// Returns the served library version (unchanged when the poll was a
  /// no-op). Not thread-safe with respect to `log` — callers own the poll
  /// loop thread.
  util::StatusOr<uint64_t> ReloadFromDeltaLog(model::DeltaLog& log);

  /// Counts one failed delta-segment publish/apply against
  /// goalrec_reload_failure_total{reason=delta}. For writer-side callers
  /// (CLI mutation loop, chaos harness) whose Append failed; the serving
  /// snapshot is untouched. Returns `status` for chaining.
  util::Status CountDeltaFailure(util::Status status);

  /// Counts one failed compaction/base publish against
  /// goalrec_reload_failure_total{reason=compact}. Writer-side counterpart
  /// for Compact failures. Returns `status` for chaining.
  util::Status CountCompactFailure(util::Status status);

  /// Version of the currently served library.
  uint64_t current_version() const { return Acquire()->library->version; }

  /// Successful reloads since construction (the initial build excluded).
  uint64_t reload_count() const {
    return reloads_.load(std::memory_order_relaxed);
  }

  /// Failed reloads since the last success. Watch loops feed this into
  /// their backoff policy (util/retry.h) so a persistently bad file does
  /// not get hammered at the poll interval.
  uint64_t consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

  /// Seconds since the serving snapshot was last swapped in (initial build
  /// counts). The staleness signal for dashboards watching a reload loop.
  double snapshot_age_seconds() const;

  /// Re-publishes the age into goalrec_snapshot_age_seconds. The gauge is
  /// also set to 0 at every swap, and a registry scrape hook calls this on
  /// every export/scrape, so the exported age moves between swaps even on a
  /// quiet server.
  void RefreshAgeGauge() const;

  /// Test seam: backdates the last-swap timestamp so age-gauge behaviour is
  /// testable without sleeping.
  void set_last_swap_ns_for_test(int64_t ns) {
    last_swap_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  util::StatusOr<std::shared_ptr<const ServingSnapshot>> BuildServing(
      std::shared_ptr<const model::LibrarySnapshot> snapshot) const;

  /// Runs validation + canaries against a built candidate. On failure,
  /// `*reason` names the goalrec_reload_failure_total counter to bump.
  util::Status RunGuard(const ServingSnapshot& built,
                        obs::Counter** reason) const;

  /// Counts one failed reload attempt under `reason_counter`.
  util::Status CountFailure(obs::Counter* reason_counter, util::Status status);

  LadderFactory factory_;
  ReloadGuardOptions guard_;
  /// Rung names of the initial build; every reload must reproduce them.
  std::vector<std::string> expected_rungs_;
  std::atomic<std::shared_ptr<const ServingSnapshot>> current_;
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> consecutive_failures_{0};
  /// FlightRecorder::NowNs() of the last publish (ctor or Reload).
  std::atomic<int64_t> last_swap_ns_{0};
  /// Serialises Reload/ReloadFromFile against each other only.
  std::mutex reload_mu_;

  obs::MetricRegistry* registry_ = nullptr;
  /// Scrape hook refreshing the age gauge; removed in the destructor.
  uint64_t age_hook_id_ = 0;

  obs::Counter* reload_ok_ = nullptr;
  obs::Counter* reload_error_ = nullptr;
  obs::Histogram* reload_latency_us_ = nullptr;
  obs::Gauge* library_version_ = nullptr;
  obs::Gauge* library_impls_ = nullptr;
  obs::Gauge* snapshot_age_seconds_ = nullptr;
  // Delta-log mutation health, refreshed on every ReloadFromDeltaLog.
  obs::Gauge* delta_segments_ = nullptr;
  obs::Gauge* delta_tombstones_ = nullptr;
  // goalrec_reload_failure_total{reason}: why candidates were rejected.
  obs::Counter* failure_load_ = nullptr;
  obs::Counter* failure_ladder_ = nullptr;
  obs::Counter* failure_validate_ = nullptr;
  obs::Counter* failure_canary_ = nullptr;
  obs::Counter* failure_delta_ = nullptr;
  obs::Counter* failure_compact_ = nullptr;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_SNAPSHOT_MANAGER_H_
