#include "serve/statusz.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "model/sharding.h"
#include "obs/exemplar.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/engine.h"
#include "serve/snapshot_manager.h"

namespace goalrec::serve {
namespace {

const char* RecorderResultLabel(uint32_t result) {
  switch (static_cast<obs::RecorderResult>(result)) {
    case obs::RecorderResult::kOk:
      return "ok";
    case obs::RecorderResult::kShed:
      return "shed";
    case obs::RecorderResult::kCancelled:
      return "cancelled";
    case obs::RecorderResult::kUnavailable:
      return "unavailable";
  }
  return "?";
}

const char* OutcomeLabelOr(uint32_t outcome) {
  return outcome < kNumRungOutcomes
             ? RungOutcomeLabel(static_cast<RungOutcome>(outcome))
             : "?";
}

/// Rung index as a name when the ladder knows it, numeric otherwise.
/// 0xFFFF is kQueryEnd's "no rung served" marker.
std::string RungLabel(uint16_t index,
                      const std::vector<std::string>& rung_names) {
  if (index == 0xFFFF) return "-";
  if (index < rung_names.size()) return rung_names[index];
  return std::to_string(index);
}

void AppendMs(std::string& out, const char* field, uint64_t ns) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%.2fms", field,
                static_cast<double>(ns) / 1e6);
  out += buffer;
}

/// Bucket-interpolated quantile of a histogram snapshot (the standard
/// Prometheus histogram_quantile estimate): walks the cumulative counts to
/// the target rank and interpolates linearly within the containing bucket.
/// Observations in the +Inf bucket report the last finite bound (the
/// estimate cannot exceed the instrumented range). Returns 0 when empty.
double HistogramQuantile(const obs::HistogramSnapshot& histogram, double q) {
  if (histogram.count <= 0 || histogram.bounds.empty()) return 0.0;
  const double rank = q * static_cast<double>(histogram.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < histogram.counts.size(); ++i) {
    cumulative += histogram.counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= histogram.bounds.size()) return histogram.bounds.back();
    const double upper = histogram.bounds[i];
    const double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
    const int64_t in_bucket = histogram.counts[i];
    if (in_bucket <= 0) return upper;
    const double into =
        rank - static_cast<double>(cumulative - in_bucket);
    return lower + (upper - lower) * into / static_cast<double>(in_bucket);
  }
  return histogram.bounds.back();
}

/// Prefixes every line of `text` with `indent`.
std::string Indent(const std::string& text, const char* indent) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    out += indent;
    out.append(text, pos, eol - pos);
    out += '\n';
    pos = eol + 1;
  }
  return out;
}

}  // namespace

std::string FormatServeEvents(const std::vector<obs::RecorderEvent>& events,
                              const std::vector<std::string>& rung_names) {
  std::string out;
  if (events.empty()) return out;
  const int64_t base_ts = events.front().ts_ns;
  char buffer[96];
  for (const obs::RecorderEvent& event : events) {
    std::snprintf(buffer, sizeof(buffer), "+%.3fms ",
                  static_cast<double>(event.ts_ns - base_ts) / 1e6);
    out += buffer;
    out += obs::RecorderEventTypeToString(event.type);
    switch (event.type) {
      case obs::RecorderEventType::kQueryStart:
        std::snprintf(buffer, sizeof(buffer),
                      " id=%016" PRIx64 " priority=%s k=%u", event.c,
                      QueryPriorityLabel(static_cast<QueryPriority>(event.a)),
                      event.b);
        out += buffer;
        break;
      case obs::RecorderEventType::kQueryEnd:
        out += " rung=" + RungLabel(event.a, rung_names);
        out += " result=";
        out += RecorderResultLabel(event.b);
        AppendMs(out, "latency", event.c);
        break;
      case obs::RecorderEventType::kRungEnter:
        out += " rung=" + RungLabel(event.a, rung_names);
        break;
      case obs::RecorderEventType::kRungExit:
        out += " rung=" + RungLabel(event.a, rung_names);
        out += " outcome=";
        out += OutcomeLabelOr(event.b);
        AppendMs(out, "latency", event.c);
        break;
      case obs::RecorderEventType::kStageStamp:
        out += " stage=";
        out += obs::KernelStageToString(
            static_cast<obs::KernelStage>(event.a));
        std::snprintf(buffer, sizeof(buffer), " items=%u", event.b);
        out += buffer;
        break;
      case obs::RecorderEventType::kAdmissionWait:
        out += " result=";
        out += RecorderResultLabel(event.b);
        AppendMs(out, "wait", event.c);
        break;
      case obs::RecorderEventType::kBreakerTransition:
        out += " rung=" + RungLabel(event.a, rung_names);
        out += " state=";
        out += CircuitBreakerStateToString(
            static_cast<CircuitBreaker::State>(event.b));
        break;
      case obs::RecorderEventType::kSnapshotSwap:
        std::snprintf(buffer, sizeof(buffer), " version=%" PRIu64, event.c);
        out += buffer;
        break;
      case obs::RecorderEventType::kNone:
        break;
    }
    out += '\n';
  }
  return out;
}

std::string RenderStatusz(const StatuszSources& sources) {
  std::ostringstream out;
  char buffer[128];
  out << "=== goalrec statusz ===\n";

  std::vector<std::string> rung_names;
  if (sources.engine != nullptr) {
    for (const ServingEngine::Rung& rung : sources.engine->rungs()) {
      rung_names.push_back(rung.name);
    }
  }

  if (sources.snapshots != nullptr) {
    const SnapshotManager& snapshots = *sources.snapshots;
    snapshots.RefreshAgeGauge();
    out << "\n[library]\n";
    out << "  version: " << snapshots.current_version() << "\n";
    std::snprintf(buffer, sizeof(buffer), "  age: %.1fs\n",
                  snapshots.snapshot_age_seconds());
    out << buffer;
    out << "  reloads: " << snapshots.reload_count()
        << " (consecutive failures: " << snapshots.consecutive_failures()
        << ")\n";
  }

  if (sources.delta_stats) {
    if (std::optional<model::DeltaLogStats> delta = sources.delta_stats();
        delta.has_value()) {
      if (sources.snapshots == nullptr) out << "\n[library]\n";
      out << "  delta_segments: " << delta->segments_active
          << " (pending compaction backlog)\n";
      out << "  delta_tombstones: impls="
          << delta->view.tombstoned_implementations
          << " goals=" << delta->view.tombstoned_goals
          << " appended=" << delta->view.appended_implementations << "\n";
      std::snprintf(buffer, sizeof(buffer),
                    "  compactions: %" PRIu64 " (last %.1fms)\n",
                    delta->compactions,
                    static_cast<double>(delta->last_compaction_micros) / 1e3);
      out << buffer;
      if (delta->quarantined_segments > 0) {
        out << "  quarantined_segments: " << delta->quarantined_segments
            << "\n";
      }
    }
  }

  if (sources.snapshots != nullptr) {
    std::shared_ptr<const ServingSnapshot> serving =
        sources.snapshots->Acquire();
    if (serving->sharded != nullptr) {
      const model::ShardedSnapshot& sharded = *serving->sharded;
      out << "\n[shards] " << sharded.num_shards << " (policy "
          << sharded.policy_name << ")\n";
      for (uint32_t s = 0; s < sharded.num_shards; ++s) {
        out << "  shard " << s << ": impls="
            << sharded.shard_library(s).num_implementations() << "\n";
      }
      if (sources.metrics != nullptr) {
        obs::RegistrySnapshot scrape = sources.metrics->Snapshot();
        if (const obs::MetricSnapshot* merge =
                scrape.Find("goalrec_shard_merge_latency_us");
            merge != nullptr && merge->histogram.count > 0) {
          std::snprintf(buffer, sizeof(buffer),
                        "  merge_p99: %.1fus (%" PRId64 " merges)\n",
                        HistogramQuantile(merge->histogram, 0.99),
                        merge->histogram.count);
          out << buffer;
        }
      }
    }
  }

  if (sources.admission != nullptr) {
    const AdmissionController& admission = *sources.admission;
    out << "\n[admission]\n";
    out << "  in_flight: " << admission.in_flight() << " / limit "
        << admission.concurrency_limit() << "\n";
    out << "  queued: interactive="
        << admission.queue_depth(QueryPriority::kInteractive)
        << " batch=" << admission.queue_depth(QueryPriority::kBatch) << "\n";
    std::snprintf(
        buffer, sizeof(buffer), "  latency_baseline: %.2fms\n",
        static_cast<double>(admission.latency_baseline().count()) / 1e6);
    out << buffer;
  }

  if (sources.engine != nullptr) {
    out << "\n[ladder]\n";
    for (size_t i = 0; i < rung_names.size(); ++i) {
      out << "  rung " << i << " '" << rung_names[i] << "': breaker ";
      const CircuitBreaker* breaker = sources.engine->breaker(i);
      out << (breaker == nullptr
                  ? "off"
                  : CircuitBreakerStateToString(breaker->state()));
      out << "\n";
    }
  }

  if (sources.slo != nullptr) {
    sources.slo->RefreshGauges();
    out << "\n[slo] objective " << sources.slo->objective() << "\n";
    for (const obs::SloWindowReport& window : sources.slo->Report()) {
      std::snprintf(buffer, sizeof(buffer),
                    "  %-3s good %" PRId64 "/%" PRId64
                    " ratio=%.6f burn_rate=%.2f\n",
                    obs::SloWindowLabel(window.window_s), window.good,
                    window.total, window.good_ratio, window.burn_rate);
      out << buffer;
    }
  }

  if (sources.exemplars != nullptr) {
    std::vector<obs::TailExemplar> retained = sources.exemplars->Snapshot();
    out << "\n[tail exemplars] " << retained.size() << " retained (cap "
        << sources.exemplars->capacity_per_key() << " per rung)\n";
    for (const obs::TailExemplar& exemplar : retained) {
      std::snprintf(buffer, sizeof(buffer),
                    "  %s id=%016" PRIx64 " %.2fms snapshot=v%" PRIu64 "\n",
                    exemplar.key.c_str(), exemplar.id,
                    exemplar.latency_us / 1e3, exemplar.snapshot_version);
      out << buffer;
      std::snprintf(buffer, sizeof(buffer),
                    "    |H|=%u touched_impls=%u touched_slots=%u "
                    "dense_fallbacks=%u\n",
                    exemplar.stats.h_size, exemplar.stats.touched_impls,
                    exemplar.stats.touched_slots,
                    exemplar.stats.dense_fallbacks);
      out << buffer;
      if (exemplar.trace != nullptr) {
        out << Indent(obs::FormatTrace(*exemplar.trace), "    ");
      }
      if (!exemplar.events.empty()) {
        out << Indent(FormatServeEvents(exemplar.events, rung_names), "    ");
      }
    }
  }

  if (sources.recent_events > 0) {
    const obs::FlightRecorder& recorder = sources.recorder != nullptr
                                              ? *sources.recorder
                                              : obs::FlightRecorder::Default();
    std::vector<obs::RecorderEvent> recent =
        recorder.Snapshot(sources.recent_events);
    out << "\n[recent events] " << recent.size() << " of "
        << recorder.events_recorded() << " recorded across "
        << recorder.threads_seen() << " threads\n";
    out << Indent(FormatServeEvents(recent, rung_names), "  ");
  }

  return out.str();
}

}  // namespace goalrec::serve
