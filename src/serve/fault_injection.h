#ifndef GOALREC_SERVE_FAULT_INJECTION_H_
#define GOALREC_SERVE_FAULT_INJECTION_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/random.h"
#include "util/status.h"

// Deterministic fault plane for robustness testing. A FaultInjector is a
// seeded source of synthetic failures — injected Status errors, latency
// spikes, and partial reads — that the serving engine, the retry-aware
// loaders, and the benchmarks consult at their failure points. Because every
// decision flows from one seeded util::Rng, a fixed seed replays the exact
// same fault schedule, so tests can assert that the degradation ladder and
// the retry loops actually engaged (and bench/micro_serve can report a
// reproducible fallback rate). Production code paths simply pass no
// injector; the hooks cost one null check.

namespace goalrec::serve {

struct FaultInjectionOptions {
  /// Seed of the fault schedule; equal seeds replay equal schedules.
  uint64_t seed = 1;
  /// Probability that MaybeFail returns an injected kUnavailable error.
  double error_rate = 0.0;
  /// Probability that MaybeDelay asks for a latency spike...
  double latency_rate = 0.0;
  /// ...of this size.
  int64_t latency_ms = 0;
  /// Sustained-spike mode: when a latency fault fires and this is > 0, the
  /// spike extends over `latency_burst_count` consecutive MaybeDelay calls
  /// (the trigger included), each sleeping `latency_burst_ms` (or
  /// latency_ms when burst_ms is 0). Models a correlated slowdown — a
  /// saturated dependency, a GC pause train — rather than i.i.d. spikes,
  /// which is what trips a circuit breaker end-to-end.
  int latency_burst_count = 0;
  int64_t latency_burst_ms = 0;
  /// Probability that MaybeTruncate cuts a payload to a strict prefix.
  double partial_read_rate = 0.0;

  // Filesystem fault plane (the chaos harness drives these against staged
  // snapshot bytes before they hit disk). Rates are evaluated in the order
  // truncate, bit-flip, partial-write; at most one fires per call.
  /// Probability MaybeCorruptBytes truncates at a random byte offset.
  double fs_truncate_rate = 0.0;
  /// Probability MaybeCorruptBytes flips one random bit.
  double fs_bitflip_rate = 0.0;
  /// Probability MaybeCorruptBytes simulates a torn non-atomic replace:
  /// a prefix of the new bytes spliced onto the tail of the old bytes.
  double fs_partial_write_rate = 0.0;
  /// Probability MaybeRenameDelay asks the writer to stall between steps of
  /// a multi-step publish (widening the window a poller can observe)...
  double fs_rename_delay_rate = 0.0;
  /// ...for this long.
  int64_t fs_rename_delay_ms = 0;
};

/// Which filesystem fault MaybeCorruptBytes injected (kNone: bytes intact).
enum class FsFault { kNone, kTruncate, kBitFlip, kPartialWrite };

std::string_view FsFaultToString(FsFault fault);

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectionOptions options);

  /// OK, or an injected kUnavailable error naming `op`. Draws once from the
  /// schedule per call. Thread-safe; under concurrency the schedule is
  /// consumed in call order, so determinism holds for serial callers.
  util::Status MaybeFail(std::string_view op);

  /// Zero, or the configured latency spike. The caller decides how to apply
  /// it (the engine sleeps, capped at the query's remaining budget).
  std::chrono::milliseconds MaybeDelay(std::string_view op);

  /// With probability partial_read_rate truncates `bytes` to a random strict
  /// prefix, returning true. Simulates torn reads for loader tests.
  bool MaybeTruncate(std::string* bytes);

  /// Corrupts `bytes` in place with at most one filesystem fault per the
  /// fs_* rates: truncation at a random offset, a single bit flip, or — when
  /// `old_bytes` (the file content being replaced) is given — a torn
  /// partial write, i.e. a prefix of `bytes` over the tail of `old_bytes`.
  /// Without `old_bytes` a partial-write fault degrades to truncation.
  /// Returns the fault injected, kNone for clean passes.
  FsFault MaybeCorruptBytes(std::string* bytes,
                            std::string_view old_bytes = {});

  /// Zero, or a configured stall between the steps of a multi-step file
  /// publish (write/fsync/rename), per fs_rename_delay_rate.
  std::chrono::milliseconds MaybeRenameDelay();

  struct Counters {
    uint64_t calls = 0;        // total decisions drawn
    uint64_t errors = 0;       // injected failures
    uint64_t delays = 0;       // injected latency spikes
    uint64_t truncations = 0;  // injected partial reads
    uint64_t bursts = 0;       // sustained-spike bursts started
    uint64_t fs_truncations = 0;    // fs: truncate-at-offset faults
    uint64_t fs_bitflips = 0;       // fs: single-bit corruption faults
    uint64_t fs_partial_writes = 0; // fs: torn-replace faults
    uint64_t rename_delays = 0;     // fs: injected publish stalls
  };
  Counters counters() const;

 private:
  mutable std::mutex mutex_;
  FaultInjectionOptions options_;
  util::Rng rng_;
  Counters counters_;
  /// Remaining calls in the current latency burst (0 when not bursting).
  int burst_remaining_ = 0;
};

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_FAULT_INJECTION_H_
