#include "serve/popularity_floor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::serve {

LibraryPopularityRecommender::LibraryPopularityRecommender(
    const model::ImplementationLibrary* library)
    : library_(library) {
  GOALREC_CHECK(library_ != nullptr);
  ranking_.reserve(library_->num_actions());
  for (model::ActionId a = 0; a < library_->num_actions(); ++a) {
    double degree = static_cast<double>(library_->ImplsOfAction(a).size());
    if (degree > 0.0) ranking_.push_back(core::ScoredAction{a, degree});
  }
  std::sort(ranking_.begin(), ranking_.end(), core::ByScoreDesc{});
}

core::RecommendationList LibraryPopularityRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0) return list;
  list.reserve(std::min(k, ranking_.size()));
  for (const core::ScoredAction& entry : ranking_) {
    if (util::Contains(activity, entry.action)) continue;
    list.push_back(entry);
    if (list.size() == k) break;
  }
  return list;
}

}  // namespace goalrec::serve
