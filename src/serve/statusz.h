#ifndef GOALREC_SERVE_STATUSZ_H_
#define GOALREC_SERVE_STATUSZ_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/delta_log.h"
#include "obs/recorder.h"

// The serving process's introspection page. Where the metric exporters
// answer "what are the rates", statusz answers "what is this process doing
// *right now* and what did its worst recent queries look like": snapshot
// version and age, admission limiter state, per-rung breaker states, SLO
// burn rates, the tail exemplar reservoir (span trees plus decoded recorder
// slices), and the newest flight-recorder events across all threads.
//
// Everything here reads live operational state through the same accessors
// tests use — no locks are held across sections, so a render racing live
// traffic sees each section individually consistent, not a global snapshot.
// Rendering is pull-only and costs nothing between renders.
//
// Surfaces: the `statusz` REPL command of `goalrec serve`, and the
// --statusz_out periodic dump (obs::PeriodicDumper with a producer), both in
// src/tools/goalrec_cli.cc. docs/observability.md walks through the output.

namespace goalrec::obs {
class ExemplarReservoir;
class MetricRegistry;
class SloTracker;
}  // namespace goalrec::obs

namespace goalrec::serve {

class AdmissionController;
class ServingEngine;
class SnapshotManager;

/// What RenderStatusz reads. Every pointer is optional (its section is
/// omitted when null) and borrowed — nothing is owned.
struct StatuszSources {
  /// Ladder shape and per-rung breakers.
  const ServingEngine* engine = nullptr;
  /// Library version / age / reload history. When the serving snapshot
  /// carries a shard partition (serve/sharded.h), also feeds the [shards]
  /// section: partition policy and per-shard implementation counts.
  const SnapshotManager* snapshots = nullptr;
  /// Registry holding goalrec_shard_merge_latency_us; the [shards] section
  /// reports the merge p99 (bucket-interpolated) from it. Null omits the
  /// p99 line only — shard rows render from `snapshots` alone.
  const obs::MetricRegistry* metrics = nullptr;
  /// Delta-log mutation state for the [library] section: segment backlog,
  /// tombstones, compaction history. A provider rather than a borrowed
  /// pointer because model::DeltaLog is not thread-safe — the owner of the
  /// writer/poll loop supplies a callback that snapshots the stats under
  /// its own synchronisation. Null (or a nullopt return) omits the lines.
  std::function<std::optional<model::DeltaLogStats>()> delta_stats;
  /// Limiter and queue state.
  const AdmissionController* admission = nullptr;
  /// Burn-rate windows. Non-const: rendering refreshes the goalrec_slo_*
  /// gauges so a scrape racing a quiet period sees current windows.
  obs::SloTracker* slo = nullptr;
  /// Retained slow queries.
  const obs::ExemplarReservoir* exemplars = nullptr;
  /// Recorder for the recent-events tail; null means
  /// obs::FlightRecorder::Default().
  const obs::FlightRecorder* recorder = nullptr;
  /// Newest merged recorder events rendered in the tail section; 0 omits
  /// the section.
  size_t recent_events = 32;
};

/// Renders the full human-readable status page.
std::string RenderStatusz(const StatuszSources& sources);

/// Serve-aware decode of recorder events, one line per event, oldest first,
/// timestamps relative to the first event:
///   +0.000ms query_start id=000000000000002a priority=interactive k=5
///   +1.204ms rung_exit rung=best_match outcome=deadline_exceeded latency=1.20ms
/// `rung_names` maps rung indices to names (from the engine's ladder); out
/// of range indices print numerically, so a names-less decode still works.
std::string FormatServeEvents(const std::vector<obs::RecorderEvent>& events,
                              const std::vector<std::string>& rung_names);

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_STATUSZ_H_
