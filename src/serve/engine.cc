#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "util/logging.h"

namespace goalrec::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Sleeps an injected latency spike, but never meaningfully past the query's
// deadline: overshooting the budget inside the fault plane would make every
// rung below unreachable and the test clock unnecessarily slow.
void SleepInjectedDelay(std::chrono::milliseconds delay,
                        const util::Deadline& deadline) {
  if (delay.count() <= 0) return;
  std::chrono::nanoseconds capped = delay;
  if (!deadline.is_infinite()) {
    capped = std::min(capped,
                      deadline.Remaining() + std::chrono::milliseconds(1));
  }
  if (capped.count() > 0) std::this_thread::sleep_for(capped);
}

}  // namespace

const char* RungOutcomeToString(RungOutcome outcome) {
  switch (outcome) {
    case RungOutcome::kServed:
      return "SERVED";
    case RungOutcome::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RungOutcome::kError:
      return "ERROR";
    case RungOutcome::kEmpty:
      return "EMPTY";
  }
  return "UNKNOWN";
}

ServingEngine::ServingEngine(std::vector<Rung> rungs, EngineOptions options)
    : rungs_(std::move(rungs)), options_(options) {
  GOALREC_CHECK(!rungs_.empty()) << "a serving ladder needs at least one rung";
  for (const Rung& rung : rungs_) {
    GOALREC_CHECK(rung.recommender != nullptr);
  }
}

util::StatusOr<ServeResult> ServingEngine::Serve(
    const model::Activity& activity, size_t k,
    util::CancellationToken cancel) const {
  Clock::time_point query_start = Clock::now();
  util::Deadline deadline = options_.deadline_ms > 0
                                ? util::Deadline::AfterMillis(options_.deadline_ms)
                                : util::Deadline::Infinite();
  ServeResult result;
  result.num_rungs = rungs_.size();
  for (size_t i = 0; i < rungs_.size(); ++i) {
    const Rung& rung = rungs_[i];
    const bool is_last = i + 1 == rungs_.size();
    Clock::time_point rung_start = Clock::now();
    RungReport report;
    report.name = rung.name;

    if (cancel.Cancelled()) {
      return util::CancelledError("query cancelled before rung '" +
                                  rung.name + "'");
    }
    if (options_.faults != nullptr) {
      util::Status injected = options_.faults->MaybeFail("rung/" + rung.name);
      if (!injected.ok()) {
        report.outcome = RungOutcome::kError;
        report.status = injected;
        report.latency = Clock::now() - rung_start;
        result.rungs.push_back(std::move(report));
        continue;
      }
      SleepInjectedDelay(options_.faults->MaybeDelay("rung/" + rung.name),
                         deadline);
    }
    if (!is_last && deadline.Expired()) {
      report.outcome = RungOutcome::kDeadlineExceeded;
      report.latency = Clock::now() - rung_start;
      result.rungs.push_back(std::move(report));
      continue;
    }

    // The final rung runs unbounded (see header); others under the budget.
    util::StopToken stop = is_last
                               ? util::StopToken()
                               : util::StopToken(deadline, cancel);
    core::RecommendationList list =
        rung.recommender->RecommendCancellable(activity, k, &stop);
    report.latency = Clock::now() - rung_start;

    if (cancel.Cancelled()) {
      return util::CancelledError("query cancelled in rung '" + rung.name +
                                  "'");
    }
    if (!is_last && stop.StopRequested()) {
      // The budget fired mid-rung: the list is a partial answer; discard it
      // and degrade.
      report.outcome = RungOutcome::kDeadlineExceeded;
      result.rungs.push_back(std::move(report));
      continue;
    }
    if (list.empty() && !is_last) {
      report.outcome = RungOutcome::kEmpty;
      result.rungs.push_back(std::move(report));
      continue;
    }

    report.outcome = RungOutcome::kServed;
    result.rungs.push_back(std::move(report));
    result.list = std::move(list);
    result.rung_index = i;
    result.rung_name = rung.name;
    result.degraded = i > 0;
    result.latency = Clock::now() - query_start;
    return result;
  }
  // Only reachable when the final rung itself failed (injected fault).
  std::string detail;
  for (const RungReport& report : result.rungs) {
    if (!detail.empty()) detail += "; ";
    detail += report.name + ": " + RungOutcomeToString(report.outcome);
  }
  return util::UnavailableError("all " + std::to_string(rungs_.size()) +
                                " rungs failed (" + detail + ")");
}

std::string FormatServeReport(const ServeResult& result) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "served by rung %zu/%zu '%s'%s in %.2f ms",
                result.rung_index + 1, result.num_rungs,
                result.rung_name.c_str(),
                result.degraded ? " (degraded)" : "",
                static_cast<double>(result.latency.count()) / 1e6);
  std::string out = buffer;
  for (const RungReport& report : result.rungs) {
    if (report.outcome == RungOutcome::kServed) continue;
    out += "; " + report.name + ": " + RungOutcomeToString(report.outcome);
    if (!report.status.ok()) out += " (" + report.status.ToString() + ")";
  }
  return out;
}

}  // namespace goalrec::serve
