#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <thread>

#include "obs/exemplar.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "serve/snapshot_manager.h"
#include "util/logging.h"

namespace goalrec::serve {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ToNs(std::chrono::nanoseconds d) {
  return d.count() <= 0 ? 0 : static_cast<uint64_t>(d.count());
}

/// kQueryEnd's rung field when no rung served the query.
constexpr uint16_t kNoServingRung = 0xFFFF;

// Sleeps an injected latency spike, but never meaningfully past the query's
// deadline: overshooting the budget inside the fault plane would make every
// rung below unreachable and the test clock unnecessarily slow.
void SleepInjectedDelay(std::chrono::milliseconds delay,
                        const util::Deadline& deadline) {
  if (delay.count() <= 0) return;
  std::chrono::nanoseconds capped = delay;
  if (!deadline.is_infinite()) {
    capped = std::min(capped,
                      deadline.Remaining() + std::chrono::milliseconds(1));
  }
  if (capped.count() > 0) std::this_thread::sleep_for(capped);
}

}  // namespace

const char* RungOutcomeToString(RungOutcome outcome) {
  switch (outcome) {
    case RungOutcome::kServed:
      return "SERVED";
    case RungOutcome::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RungOutcome::kError:
      return "ERROR";
    case RungOutcome::kEmpty:
      return "EMPTY";
    case RungOutcome::kBreakerOpen:
      return "BREAKER_OPEN";
  }
  return "UNKNOWN";
}

const char* RungOutcomeLabel(RungOutcome outcome) {
  switch (outcome) {
    case RungOutcome::kServed:
      return "served";
    case RungOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case RungOutcome::kError:
      return "error";
    case RungOutcome::kEmpty:
      return "empty";
    case RungOutcome::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

ServingEngine::ServingEngine(std::vector<Rung> rungs, EngineOptions options)
    : rungs_(std::move(rungs)),
      options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricRegistry::Default()),
      sampler_(options_.trace_sample_rate) {
  GOALREC_CHECK(!rungs_.empty()) << "a serving ladder needs at least one rung";
  for (const Rung& rung : rungs_) GOALREC_CHECK(rung.recommender != nullptr);
  InitInstruments();
}

ServingEngine::ServingEngine(SnapshotManager* snapshots, EngineOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricRegistry::Default()),
      sampler_(options_.trace_sample_rate) {
  GOALREC_CHECK(snapshots != nullptr);
  snapshots_ = snapshots;
  std::shared_ptr<const ServingSnapshot> snapshot = snapshots_->Acquire();
  GOALREC_CHECK(!snapshot->rungs.empty())
      << "a serving ladder needs at least one rung";
  rungs_.reserve(snapshot->rungs.size());
  for (const Rung& rung : snapshot->rungs) {
    // Names define the metric/breaker shape; the live recommenders belong
    // to whichever snapshot each query acquires.
    rungs_.push_back(Rung{rung.name, nullptr});
  }
  InitInstruments();
}

void ServingEngine::InitInstruments() {
  std::vector<double> latency_bounds = obs::DefaultLatencyBucketsUs();
  queries_ = metrics_->GetCounter("goalrec_serve_queries_total", {},
                                  "Serve calls, any outcome");
  degraded_ = metrics_->GetCounter(
      "goalrec_serve_degraded_total", {},
      "Queries answered by a rung below the ladder's best");
  unavailable_ = metrics_->GetCounter(
      "goalrec_serve_unavailable_total", {},
      "Queries where every rung failed (kUnavailable)");
  cancelled_ = metrics_->GetCounter("goalrec_serve_cancelled_total", {},
                                    "Queries aborted by caller cancellation");
  shed_ = metrics_->GetCounter(
      "goalrec_serve_shed_total", {},
      "Queries rejected by admission control (kResourceExhausted)");
  latency_us_ =
      metrics_->GetHistogram("goalrec_serve_latency_us", latency_bounds, {},
                             "End-to-end Serve latency (microseconds)");
  fault_errors_ =
      metrics_->GetCounter("goalrec_faults_injected_total",
                           {{"kind", "error"}}, "Injected faults, by kind");
  fault_delays_ =
      metrics_->GetCounter("goalrec_faults_injected_total",
                           {{"kind", "delay"}}, "Injected faults, by kind");
  rung_metrics_.reserve(rungs_.size());
  if (options_.breaker.has_value()) breakers_.reserve(rungs_.size());
  for (size_t i = 0; i < rungs_.size(); ++i) {
    const Rung& rung = rungs_[i];
    RungMetrics rm;
    for (size_t o = 0; o < kNumRungOutcomes; ++o) {
      rm.outcome[o] = metrics_->GetCounter(
          "goalrec_serve_rung_attempts_total",
          {{"rung", rung.name},
           {"outcome", RungOutcomeLabel(static_cast<RungOutcome>(o))}},
          "Rung attempts, by rung and outcome");
    }
    rm.latency_us = metrics_->GetHistogram(
        "goalrec_serve_rung_latency_us", latency_bounds, {{"rung", rung.name}},
        "Per-rung attempt latency (microseconds)");
    if (options_.breaker.has_value()) {
      rm.breaker_state = metrics_->GetGauge(
          "goalrec_breaker_state", {{"rung", rung.name}},
          "Circuit breaker state (0 closed, 1 open, 2 half-open)");
      CircuitBreakerOptions breaker_options = *options_.breaker;
      breaker_options.seed += i;  // distinct jitter stream per rung
      breakers_.push_back(std::make_unique<CircuitBreaker>(breaker_options));
    }
    rung_metrics_.push_back(rm);
  }
  last_breaker_state_ = std::vector<std::atomic<int>>(rungs_.size());
  for (std::atomic<int>& state : last_breaker_state_) {
    state.store(-1, std::memory_order_relaxed);
  }
}

util::StatusOr<ServeResult> ServingEngine::ServeImpl(
    const model::Activity& activity, size_t k, util::CancellationToken cancel,
    QueryPriority priority) const {
  Clock::time_point query_start = Clock::now();
  // Recorder-clock stamp of arrival: the TailSince bound that scopes this
  // query's recorder slice when it turns out to be a tail exemplar.
  int64_t recorder_start_ns = obs::FlightRecorder::NowNs();
  uint64_t query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  recorder.Record(obs::RecorderEventType::kQueryStart,
                  static_cast<uint16_t>(priority),
                  static_cast<uint32_t>(std::min<size_t>(k, UINT32_MAX)),
                  query_id);
  queries_->Increment();
  // The budget starts at arrival: time spent queued for admission is spent
  // from the same deadline the ladder runs under.
  util::Deadline deadline =
      options_.deadline_ms > 0
          ? util::Deadline::AfterMillis(options_.deadline_ms)
          : util::Deadline::Infinite();
  if (options_.admission != nullptr) {
    Clock::time_point admit_start = Clock::now();
    util::Status admitted =
        options_.admission->Admit(priority, deadline, cancel);
    uint64_t wait_ns = ToNs(Clock::now() - admit_start);
    if (!admitted.ok()) {
      obs::RecorderResult why = obs::RecorderResult::kShed;
      if (admitted.code() == util::StatusCode::kCancelled) {
        cancelled_->Increment();
        why = obs::RecorderResult::kCancelled;
      } else {
        shed_->Increment();
      }
      recorder.Record(obs::RecorderEventType::kAdmissionWait, 0,
                      static_cast<uint32_t>(why), wait_ns);
      recorder.Record(obs::RecorderEventType::kQueryEnd, kNoServingRung,
                      static_cast<uint32_t>(why),
                      ToNs(Clock::now() - query_start));
      if (options_.slo != nullptr) options_.slo->Record(false);
      return admitted;
    }
    recorder.Record(obs::RecorderEventType::kAdmissionWait, 0,
                    static_cast<uint32_t>(obs::RecorderResult::kOk), wait_ns);
  }
  // Sampling decision and trace lifetime live out here so RunLadder's early
  // returns cannot leak a trace with open spans into the sink.
  std::shared_ptr<obs::Trace> trace;
  if (sampler_.Sample()) trace = std::make_shared<obs::Trace>("serve");
  Clock::time_point ladder_start = Clock::now();
  util::StatusOr<ServeResult> result = RunLadder(
      activity, k, cancel, deadline, query_start, trace, query_id,
      recorder_start_ns);
  // One SLO event per query that reached the ladder: good means it produced
  // an answer AND the answer landed inside the deadline. (Shed and
  // admission-cancelled queries were recorded as bad above.)
  if (options_.slo != nullptr) {
    bool met = deadline.is_infinite() || !deadline.Expired();
    options_.slo->Record(result.ok() && met);
  }
  if (options_.admission != nullptr) {
    // The limiter learns from ladder time only: queue wait is the
    // controller's own doing and would double-count in its service
    // estimate (see AdmissionController::Release). Breaker-gated queries
    // skip straight toward the floor, so their latency is withheld from
    // the limiter entirely.
    std::chrono::nanoseconds latency = Clock::now() - ladder_start;
    bool met = result.ok() &&
               (deadline.is_infinite() || !deadline.Expired());
    bool breaker_gated = false;
    if (result.ok()) {
      for (const RungReport& report : result.value().rungs) {
        if (report.outcome == RungOutcome::kBreakerOpen) {
          breaker_gated = true;
          break;
        }
      }
    }
    options_.admission->Release(latency, met, /*limiter_sample=*/!breaker_gated);
  }
  if (trace != nullptr) {
    if (result.ok()) result.value().trace = trace;
    if (options_.trace_sink) options_.trace_sink(*trace);
  }
  return result;
}

util::StatusOr<ServeResult> ServingEngine::RunLadder(
    const model::Activity& activity, size_t k,
    const util::CancellationToken& cancel, const util::Deadline& deadline,
    Clock::time_point query_start, const std::shared_ptr<obs::Trace>& trace,
    uint64_t query_id, int64_t recorder_start_ns) const {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  // Activate the trace for the whole query: QueryContext::Create and the
  // strategies pick it up through obs::CurrentTrace().
  obs::ScopedTraceActivation activation(trace.get());
  obs::ScopedSpan serve_span(trace.get(), "serve");
  serve_span.Annotate("k", k);
  serve_span.Annotate("activity_size", activity.size());
  serve_span.Annotate("deadline_ms", options_.deadline_ms);
  ServeResult result;
  // Snapshot mode: pin the current serving snapshot for this whole query —
  // a concurrent Reload publishes a replacement for *future* queries while
  // this one keeps reading the library it acquired.
  std::shared_ptr<const ServingSnapshot> snapshot;
  std::span<const Rung> active(rungs_);
  if (snapshots_ != nullptr) {
    snapshot = snapshots_->Acquire();
    GOALREC_CHECK_EQ(snapshot->rungs.size(), rung_metrics_.size())
        << "ladder shape changed across a reload";
    active = snapshot->rungs;
    result.library_version = snapshot->library->version;
    serve_span.Annotate("library_version", snapshot->library->version);
  }
  // One workspace per query, leased for the duration of the ladder walk:
  // every rung's scoring runs on its reused buffers.
  core::QueryWorkspacePool::Lease workspace = workspace_pool_.Acquire();
  core::RecommendationList list;
  result.num_rungs = active.size();
  for (size_t i = 0; i < active.size(); ++i) {
    const Rung& rung = active[i];
    const RungMetrics& rm = rung_metrics_[i];
    const bool is_last = i + 1 == active.size();
    CircuitBreaker* breaker = breakers_.empty() ? nullptr : breakers_[i].get();
    Clock::time_point rung_start = Clock::now();
    recorder.Record(obs::RecorderEventType::kRungEnter,
                    static_cast<uint16_t>(i));
    obs::ScopedSpan rung_span(trace.get(), "rung/" + rung.name);
    rung_span.Annotate("index", i);
    if (!deadline.is_infinite()) {
      rung_span.Annotate("deadline_slack_us",
                         std::chrono::duration_cast<std::chrono::microseconds>(
                             deadline.Remaining())
                             .count());
    }
    RungReport report;
    report.name = rung.name;
    // Records the rung's outcome everywhere it is visible: the audit report,
    // the per-rung counters/latency histogram, and the rung span.
    auto finish_rung = [&](RungOutcome outcome) {
      report.outcome = outcome;
      rm.outcome[static_cast<size_t>(outcome)]->Increment();
      rm.latency_us->Observe(
          static_cast<double>(report.latency.count()) / 1e3);
      recorder.Record(obs::RecorderEventType::kRungExit,
                      static_cast<uint16_t>(i),
                      static_cast<uint32_t>(outcome),
                      ToNs(report.latency));
      rung_span.Annotate("outcome", RungOutcomeLabel(outcome));
      result.rungs.push_back(std::move(report));
    };
    // Refreshes the breaker state gauge and, when the state changed since
    // this rung's last query, leaves a kBreakerTransition in the recorder —
    // the flight-recorder timeline shows *when* a rung tripped or healed.
    auto publish_breaker_state = [&] {
      int state = static_cast<int>(breaker->state());
      rm.breaker_state->Set(state);
      int last = last_breaker_state_[i].exchange(state,
                                                 std::memory_order_relaxed);
      if (last != state) {
        recorder.Record(obs::RecorderEventType::kBreakerTransition,
                        static_cast<uint16_t>(i),
                        static_cast<uint32_t>(state));
      }
    };
    // Feeds the rung's outcome to its breaker and refreshes the state
    // gauge. Empty answers count as healthy: the rung responded promptly,
    // it just had nothing to say.
    auto record_breaker = [&](RungOutcome outcome) {
      if (breaker == nullptr) return;
      switch (outcome) {
        case RungOutcome::kServed:
        case RungOutcome::kEmpty:
          breaker->RecordSuccess();
          break;
        case RungOutcome::kDeadlineExceeded:
        case RungOutcome::kError:
          breaker->RecordFailure();
          break;
        case RungOutcome::kBreakerOpen:
          break;
      }
      publish_breaker_state();
    };

    if (cancel.Cancelled()) {
      cancelled_->Increment();
      latency_us_->Observe(
          static_cast<double>((Clock::now() - query_start).count()) / 1e3);
      recorder.Record(obs::RecorderEventType::kQueryEnd, kNoServingRung,
                      static_cast<uint32_t>(obs::RecorderResult::kCancelled),
                      ToNs(Clock::now() - query_start));
      rung_span.Annotate("outcome", "cancelled");
      serve_span.Annotate("outcome", "cancelled");
      return util::CancelledError("query cancelled before rung '" +
                                  rung.name + "'");
    }
    // Breaker check first: skipping an unhealthy rung must cost
    // microseconds, not a fault-plane sleep or a doomed attempt. The final
    // rung is never gated — the floor always runs.
    if (!is_last && breaker != nullptr && !breaker->Allow()) {
      report.latency = Clock::now() - rung_start;
      publish_breaker_state();
      finish_rung(RungOutcome::kBreakerOpen);
      continue;
    }
    if (options_.faults != nullptr) {
      util::Status injected = options_.faults->MaybeFail("rung/" + rung.name);
      if (!injected.ok()) {
        fault_errors_->Increment();
        rung_span.Annotate("injected_fault", "error");
        rung_span.Annotate("status", injected.ToString());
        report.status = injected;
        report.latency = Clock::now() - rung_start;
        finish_rung(RungOutcome::kError);
        record_breaker(RungOutcome::kError);
        continue;
      }
      std::chrono::milliseconds delay =
          options_.faults->MaybeDelay("rung/" + rung.name);
      if (delay.count() > 0) {
        fault_delays_->Increment();
        rung_span.Annotate("injected_fault", "delay");
        rung_span.Annotate("injected_delay_ms", delay.count());
      }
      SleepInjectedDelay(delay, deadline);
    }
    if (!is_last && deadline.Expired()) {
      report.latency = Clock::now() - rung_start;
      finish_rung(RungOutcome::kDeadlineExceeded);
      record_breaker(RungOutcome::kDeadlineExceeded);
      continue;
    }

    // The final rung runs unbounded (see header); others under the budget.
    util::StopToken stop = is_last
                               ? util::StopToken()
                               : util::StopToken(deadline, cancel);
    // Fresh kernel stats per attempt: RecommendPooled's strategy accumulates
    // into them and a tail exemplar snapshots them for the serving rung.
    workspace->kernel_stats = {};
    rung.recommender->RecommendPooled(activity, k, &stop, workspace.get(),
                                      list);
    report.latency = Clock::now() - rung_start;

    if (cancel.Cancelled()) {
      cancelled_->Increment();
      latency_us_->Observe(
          static_cast<double>((Clock::now() - query_start).count()) / 1e3);
      recorder.Record(obs::RecorderEventType::kQueryEnd, kNoServingRung,
                      static_cast<uint32_t>(obs::RecorderResult::kCancelled),
                      ToNs(Clock::now() - query_start));
      rung_span.Annotate("outcome", "cancelled");
      serve_span.Annotate("outcome", "cancelled");
      return util::CancelledError("query cancelled in rung '" + rung.name +
                                  "'");
    }
    if (!is_last && stop.StopRequested()) {
      // The budget fired mid-rung: the list is a partial answer; discard it
      // and degrade.
      finish_rung(RungOutcome::kDeadlineExceeded);
      record_breaker(RungOutcome::kDeadlineExceeded);
      continue;
    }
    if (list.empty() && !is_last) {
      finish_rung(RungOutcome::kEmpty);
      record_breaker(RungOutcome::kEmpty);
      continue;
    }

    finish_rung(RungOutcome::kServed);
    record_breaker(RungOutcome::kServed);
    result.list = std::move(list);
    result.rung_index = i;
    result.rung_name = rung.name;
    result.degraded = i > 0;
    result.latency = Clock::now() - query_start;
    if (result.degraded) degraded_->Increment();
    double latency_total_us =
        static_cast<double>(result.latency.count()) / 1e3;
    latency_us_->Observe(latency_total_us);
    recorder.Record(obs::RecorderEventType::kQueryEnd,
                    static_cast<uint16_t>(i),
                    static_cast<uint32_t>(obs::RecorderResult::kOk),
                    ToNs(result.latency));
    // Tail exemplar capture. Steady-state cost is the one relaxed floor
    // load in WorthCapturing; only queries slower than the reservoir's
    // current floor pay for the trace/recorder-slice copy below.
    if (options_.exemplars != nullptr &&
        options_.exemplars->WorthCapturing(latency_total_us)) {
      obs::TailExemplar exemplar;
      exemplar.key = rung.name;
      exemplar.id = query_id;
      exemplar.latency_us = latency_total_us;
      exemplar.snapshot_version = result.library_version;
      exemplar.captured_ts_ns = obs::FlightRecorder::NowNs();
      exemplar.stats.h_size =
          static_cast<uint32_t>(workspace->activity.size());
      exemplar.stats.touched_impls =
          static_cast<uint32_t>(workspace->touched_impls().size());
      exemplar.stats.touched_slots = workspace->kernel_stats.slots_touched;
      exemplar.stats.dense_fallbacks =
          workspace->kernel_stats.dense_fallbacks;
      exemplar.trace = trace;  // co-owns the span tree past the query
      exemplar.events = recorder.TailSince(recorder_start_ns);
      if (options_.exemplars->Offer(std::move(exemplar))) {
        latency_us_->AttachExemplar(latency_total_us, query_id);
        rm.latency_us->AttachExemplar(
            static_cast<double>(result.rungs.back().latency.count()) / 1e3,
            query_id);
      }
    }
    serve_span.Annotate("outcome", "served");
    serve_span.Annotate("rung", rung.name);
    serve_span.Annotate("rung_index", i);
    serve_span.Annotate("degraded", result.degraded);
    return result;
  }
  // Only reachable when the final rung itself failed (injected fault).
  unavailable_->Increment();
  latency_us_->Observe(
      static_cast<double>((Clock::now() - query_start).count()) / 1e3);
  recorder.Record(obs::RecorderEventType::kQueryEnd, kNoServingRung,
                  static_cast<uint32_t>(obs::RecorderResult::kUnavailable),
                  ToNs(Clock::now() - query_start));
  serve_span.Annotate("outcome", "unavailable");
  std::string detail;
  for (const RungReport& report : result.rungs) {
    if (!detail.empty()) detail += "; ";
    detail += report.name + ": " + RungOutcomeToString(report.outcome);
  }
  GOALREC_LOG(WARN) << "all serving rungs failed"
                    << util::Kv("rungs", rungs_.size())
                    << util::Kv("detail", detail);
  return util::UnavailableError("all " + std::to_string(rungs_.size()) +
                                " rungs failed (" + detail + ")");
}

std::string FormatServeReport(const ServeResult& result) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "served by rung %zu/%zu '%s'%s in %.2f ms",
                result.rung_index + 1, result.num_rungs,
                result.rung_name.c_str(),
                result.degraded ? " (degraded)" : "",
                static_cast<double>(result.latency.count()) / 1e6);
  std::string out = buffer;
  for (const RungReport& report : result.rungs) {
    if (report.outcome == RungOutcome::kServed) continue;
    out += "; " + report.name + ": " + RungOutcomeToString(report.outcome);
    if (!report.status.ok()) out += " (" + report.status.ToString() + ")";
  }
  return out;
}

}  // namespace goalrec::serve
