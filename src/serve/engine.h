#ifndef GOALREC_SERVE_ENGINE_H_
#define GOALREC_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/query_workspace.h"
#include "core/recommender.h"
#include "model/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/fault_injection.h"
#include "util/deadline.h"
#include "util/status.h"

// Resilient query serving. A ServingEngine wraps an ordered ladder of
// recommenders — typically expensive-and-good down to cheap-and-coarse, e.g.
// BestMatch → Breadth → LibraryPopularity — and enforces a per-query
// deadline cooperatively (util::StopToken polled inside the strategies'
// scoring loops). When a rung times out, errors, or answers empty, the query
// falls to the next rung instead of failing; the result reports which rung
// served it and why the better ones did not. This mirrors how production
// recommenders degrade to cheaper models under pressure (cf. the hybrid
// goal/CF ranking of arXiv 2011.06237) rather than erroring.
//
// Deadline semantics: one budget covers the whole query, including any time
// spent queued for admission. Non-final rungs run under it and are abandoned
// the moment it expires; the FINAL rung always runs unbounded, because a
// floor that can also time out would turn overload into outages — so make it
// structurally cheap (LibraryPopularity is). Cancellation, by contrast,
// aborts the whole query: a caller that hung up does not want a cheaper
// answer.
//
// Overload protection (optional, see serve/admission.h and
// serve/circuit_breaker.h): an AdmissionController in front of the ladder
// sheds excess traffic with kResourceExhausted before it can burn a
// deadline, and a per-rung CircuitBreaker skips a rung that keeps failing
// (outcome kBreakerOpen) instead of re-discovering the failure on every
// query. The degradation ladder degrades every answer a little; admission
// control keeps admitted answers good and fails the rest fast.

namespace goalrec::obs {
class ExemplarReservoir;
class SloTracker;
}  // namespace goalrec::obs

namespace goalrec::serve {

class SnapshotManager;

/// Why a rung did not (or did) produce the answer.
enum class RungOutcome {
  kServed,            // this rung's answer was returned
  kDeadlineExceeded,  // budget expired before or while the rung ran
  kError,             // the rung failed (today: injected faults)
  kEmpty,             // ran to completion but had nothing to recommend
  kBreakerOpen,       // skipped: the rung's circuit breaker refused it
};

/// Number of RungOutcome values (metric array bound).
inline constexpr size_t kNumRungOutcomes = 5;

const char* RungOutcomeToString(RungOutcome outcome);

/// Lowercase form used as the `outcome` metric label (e.g.
/// "deadline_exceeded"); RungOutcomeToString is the loud report form.
const char* RungOutcomeLabel(RungOutcome outcome);

/// Per-rung audit record of one Serve call.
struct RungReport {
  std::string name;
  RungOutcome outcome = RungOutcome::kError;
  util::Status status;  // non-OK for kError
  std::chrono::nanoseconds latency{0};
};

struct EngineOptions {
  /// Per-query budget in milliseconds; 0 means unbounded.
  int64_t deadline_ms = 0;
  /// Optional fault plane consulted before each rung (not owned; may be
  /// null). Injected delays are slept (capped at the remaining budget plus
  /// one millisecond) and injected errors fail the rung.
  FaultInjector* faults = nullptr;
  /// Optional admission controller consulted before the ladder runs (not
  /// owned; may be null; may be shared between engines so they compete for
  /// one concurrency budget). Shed queries return kResourceExhausted
  /// without touching a rung; queue wait is spent from the query deadline.
  AdmissionController* admission = nullptr;
  /// When set, every rung gets a CircuitBreaker built from these options
  /// (rung index added to the seed so jitter streams differ). An open
  /// breaker skips its rung at admission time — except the final rung,
  /// which is never gated: the floor must always run.
  std::optional<CircuitBreakerOptions> breaker;
  /// Registry the engine's counters/histograms report into. Null means
  /// obs::MetricRegistry::Default(); tests pass their own to scrape in
  /// isolation. Not owned; must outlive the engine.
  obs::MetricRegistry* metrics = nullptr;
  /// Fraction of queries that record a full obs::Trace (deterministic head
  /// sampling; 0 disables tracing, 1 traces everything). Sampled traces are
  /// attached to the ServeResult and handed to `trace_sink`.
  double trace_sample_rate = 0.0;
  /// Invoked with every sampled trace after the query finishes (all spans
  /// closed), on the serving thread. May be empty.
  std::function<void(const obs::Trace&)> trace_sink;
  /// Tail exemplar reservoir (obs/exemplar.h). When set, every served query
  /// pays one relaxed load (WorthCapturing); the K slowest per rung
  /// additionally get their trace, recorder slice and workspace stats
  /// captured, and their query id attached to the latency histograms as an
  /// OpenMetrics exemplar. Not owned; may be null.
  obs::ExemplarReservoir* exemplars = nullptr;
  /// SLO tracker fed one good/bad event per finished query: good = the
  /// query succeeded AND met its deadline. Not owned; may be null.
  obs::SloTracker* slo = nullptr;
};

struct ServeResult {
  core::RecommendationList list;
  /// Index/name of the rung that answered.
  size_t rung_index = 0;
  std::string rung_name;
  /// True when any rung above the serving one was skipped, failed, timed
  /// out, or answered empty — i.e. the answer is not the ladder's best.
  bool degraded = false;
  /// One entry per rung attempted, in ladder order.
  std::vector<RungReport> rungs;
  /// Total rungs in the ladder (>= rungs.size()).
  size_t num_rungs = 0;
  /// End-to-end latency of the Serve call.
  std::chrono::nanoseconds latency{0};
  /// Version of the library snapshot that answered (0 when the engine was
  /// built from a static rung list rather than a SnapshotManager).
  uint64_t library_version = 0;
  /// The query's trace when it was sampled (EngineOptions::trace_sample_rate),
  /// null otherwise. Shared so callers can keep it past the result.
  std::shared_ptr<obs::Trace> trace;
};

class ServingEngine {
 public:
  struct Rung {
    std::string name;
    /// Not owned; must outlive the engine.
    const core::Recommender* recommender = nullptr;
  };

  /// Requires at least one rung. Rungs are tried in order; see the file
  /// comment for the deadline contract on the final rung.
  ServingEngine(std::vector<Rung> rungs, EngineOptions options = {});

  /// Snapshot mode: every query acquires the manager's current serving
  /// snapshot (one lock-free load) and runs that snapshot's ladder, so
  /// SnapshotManager::Reload takes effect between queries with no engine
  /// restart. The ladder *shape* is fixed at construction — per-rung metrics
  /// and circuit breakers are resolved from the initial snapshot's rung
  /// names and persist (positionally) across reloads. `snapshots` is not
  /// owned and must outlive the engine.
  ServingEngine(SnapshotManager* snapshots, EngineOptions options = {});

  /// Serves one query. Returns an error only when the query was cancelled
  /// (kCancelled), shed by admission control (kResourceExhausted), or every
  /// rung failed (kUnavailable); a deadline alone never produces an error,
  /// it produces a degraded answer.
  util::StatusOr<ServeResult> Serve(const model::Activity& activity,
                                    size_t k) const {
    return ServeImpl(activity, k, util::CancellationToken(),
                     QueryPriority::kInteractive);
  }

  /// Serve with caller-side cancellation.
  util::StatusOr<ServeResult> Serve(const model::Activity& activity, size_t k,
                                    util::CancellationToken cancel) const {
    return ServeImpl(activity, k, std::move(cancel),
                     QueryPriority::kInteractive);
  }

  /// Serve with cancellation and an explicit priority class. Batch traffic
  /// is shed first under overload (see serve/admission.h).
  util::StatusOr<ServeResult> Serve(const model::Activity& activity, size_t k,
                                    util::CancellationToken cancel,
                                    QueryPriority priority) const {
    return ServeImpl(activity, k, std::move(cancel), priority);
  }

  size_t num_rungs() const { return rungs_.size(); }
  /// The ladder shape. In snapshot mode the `recommender` pointers are null
  /// (the live ones belong to the current snapshot); the names are stable.
  const std::vector<Rung>& rungs() const { return rungs_; }
  const EngineOptions& options() const { return options_; }

  /// Workspaces minted by the query path so far (high-water concurrency).
  size_t workspaces_created() const { return workspace_pool_.created(); }

  /// The rung's circuit breaker, or null when EngineOptions::breaker is
  /// unset. Exposed for tests and operational introspection.
  const CircuitBreaker* breaker(size_t rung_index) const {
    return breakers_.empty() ? nullptr : breakers_[rung_index].get();
  }

 private:
  /// Instrument handles resolved once at construction: the per-query path
  /// touches only relaxed atomics, never the registry mutex.
  struct RungMetrics {
    /// Indexed by static_cast<size_t>(RungOutcome).
    obs::Counter* outcome[kNumRungOutcomes] = {};
    obs::Histogram* latency_us = nullptr;
    /// CircuitBreaker::State as an integer; null when breakers are off.
    obs::Gauge* breaker_state = nullptr;
  };

  /// The single entry point behind every public Serve overload: admission
  /// (exactly once per query), trace sampling, the ladder walk, slot
  /// release.
  util::StatusOr<ServeResult> ServeImpl(const model::Activity& activity,
                                        size_t k,
                                        util::CancellationToken cancel,
                                        QueryPriority priority) const;

  /// `trace` is shared (not raw) so a captured tail exemplar can co-own the
  /// span tree past the query; `query_id` labels the query's recorder events
  /// and exemplar, `recorder_start_ns` bounds the TailSince slice.
  util::StatusOr<ServeResult> RunLadder(const model::Activity& activity,
                                        size_t k,
                                        const util::CancellationToken& cancel,
                                        const util::Deadline& deadline,
                                        std::chrono::steady_clock::time_point
                                            query_start,
                                        const std::shared_ptr<obs::Trace>&
                                            trace,
                                        uint64_t query_id,
                                        int64_t recorder_start_ns) const;

  /// Resolves the per-rung instrument handles and breakers from rungs_'
  /// names (shared by both constructors).
  void InitInstruments();

  std::vector<Rung> rungs_;
  /// Snapshot mode source of live rungs; null in static-ladder mode.
  SnapshotManager* snapshots_ = nullptr;
  /// Per-query scratch memory: leased in RunLadder, returned when the query
  /// finishes, buffers reused across queries (the zero-allocation path).
  mutable core::QueryWorkspacePool workspace_pool_;
  EngineOptions options_;
  obs::MetricRegistry* metrics_ = nullptr;
  std::vector<RungMetrics> rung_metrics_;
  /// One breaker per rung when options_.breaker is set; empty otherwise.
  /// Mutable: breakers accumulate health state across const Serve calls.
  mutable std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  obs::Counter* queries_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Histogram* latency_us_ = nullptr;
  obs::Counter* fault_errors_ = nullptr;
  obs::Counter* fault_delays_ = nullptr;
  mutable obs::TraceSampler sampler_;
  /// Process-unique-per-engine query ids: recorder event / exemplar /
  /// histogram-exemplar correlation key (the "trace_id" in OpenMetrics
  /// exports).
  mutable std::atomic<uint64_t> next_query_id_{0};
  /// Last CircuitBreaker::State observed per rung; a change emits one
  /// kBreakerTransition recorder event. -1 until first observed.
  mutable std::vector<std::atomic<int>> last_breaker_state_;
};

/// Renders a ServeResult's audit trail for CLI/log output, e.g.
/// "served by rung 2/3 'breadth' (degraded) in 4.1 ms; best_match: DEADLINE_EXCEEDED".
std::string FormatServeReport(const ServeResult& result);

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_ENGINE_H_
