#ifndef GOALREC_SERVE_CIRCUIT_BREAKER_H_
#define GOALREC_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "util/random.h"

// Per-rung circuit breaker for the serving ladder. A rung that keeps
// failing — injected faults, sustained latency spikes pushing it past its
// deadline slice — should be skipped at admission time instead of burning
// every query's budget before the ladder falls through to the floor. The
// breaker is the classic three-state machine:
//
//   closed    → every attempt allowed; `failure_threshold` consecutive
//               failures trip it open.
//   open      → every attempt refused until `open_cooldown` has elapsed
//               (optionally stretched by seeded jitter so a fleet of
//               breakers does not re-probe in lockstep).
//   half-open → up to `half_open_probes` attempts are let through as
//               probes; `half_open_successes` successes close the breaker,
//               any failure re-opens it (cooldown restarts).
//
// Time is read through an injectable clock and jitter through a seeded
// util::Rng, so state trajectories are deterministic in tests: same seed,
// same clock steps, same transitions.

namespace goalrec::serve {

struct CircuitBreakerOptions {
  /// Consecutive failures (while closed) that trip the breaker.
  int failure_threshold = 5;
  /// How long an open breaker refuses attempts before probing.
  std::chrono::milliseconds open_cooldown{1000};
  /// Attempts admitted as probes while half-open.
  int half_open_probes = 3;
  /// Probe successes required to close again (<= half_open_probes).
  int half_open_successes = 2;
  /// Each open cooldown is stretched by a factor drawn uniformly from
  /// [1, 1 + cooldown_jitter]; 0 disables jitter.
  double cooldown_jitter = 0.0;
  /// Seed of the jitter stream; equal seeds replay equal stretches.
  uint64_t seed = 1;
  /// Test seam: the breaker's notion of "now". Defaults to the steady
  /// clock.
  std::function<std::chrono::steady_clock::time_point()> now;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// True when an attempt may proceed. Consumes a probe slot when
  /// half-open; flips open → half-open once the cooldown has elapsed.
  /// Thread-safe.
  bool Allow();

  /// Reports the outcome of an attempt that Allow() admitted.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Open → half-open → open → ... transitions taken so far, by target
  /// state. Closed-state entries are counted under kClosed.
  int64_t transitions_to(State state) const;

 private:
  /// Moves open → half-open if the cooldown has elapsed. Caller holds
  /// mutex_.
  void MaybeProbeLocked();
  void TransitionLocked(State next);

  mutable std::mutex mutex_;
  CircuitBreakerOptions options_;
  util::Rng rng_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  std::chrono::steady_clock::time_point open_until_{};
  std::chrono::steady_clock::time_point half_open_since_{};
  int64_t transitions_[3] = {0, 0, 0};
};

const char* CircuitBreakerStateToString(CircuitBreaker::State state);

}  // namespace goalrec::serve

#endif  // GOALREC_SERVE_CIRCUIT_BREAKER_H_
