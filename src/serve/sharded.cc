#include "serve/sharded.h"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "core/shard_merge.h"
#include "serve/popularity_floor.h"
#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::serve {

// Per-query fan-out scratch: one workspace and one partial buffer per
// shard, plus the join state for one phase. Pooled and reused so the
// steady-state fan-out allocates nothing; buffers are indexed by shard id.
struct ShardedRecommender::FanoutScratch {
  std::vector<std::unique_ptr<core::QueryWorkspace>> shard_ws;
  std::vector<std::vector<core::ShardEmission>> emissions;
  std::vector<std::vector<core::ShardActionScore>> partials;
  std::vector<core::BestMatchShardProfile> profiles;
  std::vector<std::vector<core::BestMatchCandidatePartial>> cand_partials;
  // Per-shard copies of the query's StopToken. The token's strided poll
  // counter is deliberately non-atomic (its contract is "poll from one
  // thread at a time"), so the shard tasks must not share the engine's
  // per-query token; each copy observes the same deadline and the same
  // cancellation flag with private poll state.
  std::vector<util::StopToken> shard_stops;

  // Phase join state. `body` is stored here so the Submit lambdas capture
  // only (&scratch, index) — small enough for std::function's inline
  // buffer, keeping the per-task path allocation-free.
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  const std::function<void(size_t)>* body = nullptr;

  explicit FanoutScratch(uint32_t num_shards) {
    shard_ws.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      shard_ws.push_back(std::make_unique<core::QueryWorkspace>());
    }
    emissions.resize(num_shards);
    partials.resize(num_shards);
    profiles.resize(num_shards);
    cand_partials.resize(num_shards);
    shard_stops.resize(num_shards);
  }
};

// RAII hand-back into the recommender's scratch free list.
class ShardedRecommender::ScratchLease {
 public:
  ScratchLease(const ShardedRecommender* owner,
               std::unique_ptr<FanoutScratch> scratch)
      : owner_(owner), scratch_(std::move(scratch)) {}
  ScratchLease(ScratchLease&&) noexcept = default;
  ~ScratchLease() {
    if (scratch_ == nullptr) return;
    std::lock_guard<std::mutex> lock(owner_->scratch_mu_);
    owner_->scratch_free_.push_back(std::move(scratch_));
  }

  FanoutScratch& operator*() const { return *scratch_; }

 private:
  const ShardedRecommender* owner_;
  std::unique_ptr<FanoutScratch> scratch_;
};

ShardedRecommender::ShardedRecommender(
    std::shared_ptr<const model::ShardedSnapshot> sharded,
    ShardedStrategy strategy, util::ThreadPool* pool,
    core::BestMatchOptions best_match_options, obs::Histogram* merge_latency_us)
    : sharded_(std::move(sharded)),
      strategy_(strategy),
      pool_(pool),
      best_match_options_(best_match_options),
      merge_latency_us_(merge_latency_us) {
  GOALREC_CHECK(sharded_ != nullptr);
  GOALREC_CHECK(sharded_->base != nullptr);
  // The bit-identical merge rests on exact-integer partials; goal weights
  // scale by arbitrary doubles and are rejected at construction, not per
  // query.
  GOALREC_CHECK(best_match_options_.goal_weights == nullptr);
  const uint32_t n = sharded_->num_shards;
  switch (strategy_) {
    case ShardedStrategy::kFocusCompleteness:
    case ShardedStrategy::kFocusCloseness: {
      core::FocusVariant variant =
          strategy_ == ShardedStrategy::kFocusCompleteness
              ? core::FocusVariant::kCompleteness
              : core::FocusVariant::kCloseness;
      focus_.reserve(n);
      for (uint32_t s = 0; s < n; ++s) {
        focus_.push_back(std::make_unique<core::FocusRecommender>(
            &sharded_->shard_library(s), variant));
      }
      break;
    }
    case ShardedStrategy::kBreadth:
      breadth_.reserve(n);
      for (uint32_t s = 0; s < n; ++s) {
        breadth_.push_back(std::make_unique<core::BreadthRecommender>(
            &sharded_->shard_library(s)));
      }
      break;
    case ShardedStrategy::kBestMatch:
      best_match_.reserve(n);
      for (uint32_t s = 0; s < n; ++s) {
        best_match_.push_back(std::make_unique<core::BestMatchRecommender>(
            &sharded_->shard_library(s), best_match_options_));
      }
      break;
  }
}

ShardedRecommender::~ShardedRecommender() = default;

std::string ShardedRecommender::name() const {
  switch (strategy_) {
    case ShardedStrategy::kFocusCompleteness:
      return "Focus_cmp";
    case ShardedStrategy::kFocusCloseness:
      return "Focus_cl";
    case ShardedStrategy::kBreadth:
      return "Breadth";
    case ShardedStrategy::kBestMatch:
      return "BestMatch";
  }
  return "?";
}

ShardedRecommender::ScratchLease ShardedRecommender::Acquire() const {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_free_.empty()) {
      std::unique_ptr<FanoutScratch> scratch = std::move(scratch_free_.back());
      scratch_free_.pop_back();
      return ScratchLease(this, std::move(scratch));
    }
  }
  return ScratchLease(this,
                      std::make_unique<FanoutScratch>(sharded_->num_shards));
}

void ShardedRecommender::RunPhase(
    FanoutScratch& scratch, bool parallel,
    const std::function<void(size_t)>& body) const {
  const size_t n = sharded_->num_shards;
  if (!parallel || pool_ == nullptr || n <= 1) {
    for (size_t s = 0; s < n; ++s) body(s);
    return;
  }
  scratch.body = &body;
  {
    std::lock_guard<std::mutex> lock(scratch.mu);
    scratch.pending = n - 1;
  }
  // Unconditional join, even if the inline shard-0 body throws: a pool task
  // must never outlive the scratch (or the activity span) it references.
  struct PhaseJoin {
    FanoutScratch& s;
    ~PhaseJoin() {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait(lock, [this] { return s.pending == 0; });
      s.body = nullptr;
    }
  } join{scratch};
  for (size_t s = 1; s < n; ++s) {
    pool_->Submit([&scratch, s] {
      // Count down even when the body throws (the pool records the
      // exception; the root must still unblock).
      struct Countdown {
        FanoutScratch& s;
        ~Countdown() {
          std::lock_guard<std::mutex> lock(s.mu);
          if (--s.pending == 0) s.cv.notify_one();
        }
      } countdown{scratch};
      (*scratch.body)(s);
    });
  }
  body(0);
}

void ShardedRecommender::ServeSharded(util::IdSpan normalized, size_t k,
                                      const util::StopToken* stop,
                                      core::QueryWorkspace& root_ws,
                                      FanoutScratch& scratch, bool parallel,
                                      core::RecommendationList& out) const {
  const uint32_t n = sharded_->num_shards;
  const uint32_t num_actions = sharded_->base->num_actions();
  for (uint32_t s = 0; s < n; ++s) {
    scratch.shard_ws[s]->kernel_stats = core::QueryWorkspace::KernelStats{};
  }
  // Each shard task polls its own copy of the caller's token: the copies
  // observe the same deadline and cancellation flag, but with private
  // (non-thread-safe) poll counters, so concurrent shard tasks never share
  // the caller's poll state. The root-side merge, which runs on the calling
  // thread after the join, keeps polling the original.
  if (stop != nullptr) {
    for (uint32_t s = 0; s < n; ++s) scratch.shard_stops[s] = *stop;
  }
  const auto shard_stop = [stop, &scratch](size_t s) -> const util::StopToken* {
    return stop == nullptr ? nullptr : &scratch.shard_stops[s];
  };
  const auto merge_start_ready = [this] {
    return merge_latency_us_ != nullptr;
  };
  std::chrono::steady_clock::time_point merge_start;

  switch (strategy_) {
    case ShardedStrategy::kFocusCompleteness:
    case ShardedStrategy::kFocusCloseness: {
      std::function<void(size_t)> body = [&](size_t s) {
        focus_[s]->EmitShardForMerge(normalized, k,
                                     sharded_->local_to_logical[s],
                                     shard_stop(s), *scratch.shard_ws[s],
                                     scratch.emissions[s]);
      };
      RunPhase(scratch, parallel, body);
      if (merge_start_ready()) merge_start = std::chrono::steady_clock::now();
      core::MergeFocusEmissions(
          std::span<const std::vector<core::ShardEmission>>(
              scratch.emissions.data(), n),
          num_actions, k, root_ws, out);
      break;
    }
    case ShardedStrategy::kBreadth: {
      std::function<void(size_t)> body = [&](size_t s) {
        breadth_[s]->AccumulateShard(normalized, shard_stop(s),
                                     *scratch.shard_ws[s],
                                     scratch.partials[s]);
      };
      RunPhase(scratch, parallel, body);
      if (merge_start_ready()) merge_start = std::chrono::steady_clock::now();
      core::MergeBreadthPartials(
          std::span<const std::vector<core::ShardActionScore>>(
              scratch.partials.data(), n),
          num_actions, k, root_ws, out);
      break;
    }
    case ShardedStrategy::kBestMatch: {
      std::function<void(size_t)> phase_a = [&](size_t s) {
        best_match_[s]->BuildShardProfile(normalized, shard_stop(s),
                                          *scratch.shard_ws[s],
                                          scratch.profiles[s]);
      };
      RunPhase(scratch, parallel, phase_a);
      core::BestMatchMergeState state;
      core::MergeBestMatchProfiles(
          std::span<const core::BestMatchShardProfile>(
              scratch.profiles.data(), n),
          num_actions, root_ws, state);
      // Phase B reads root_ws.candidates concurrently — read-only until
      // the join.
      std::function<void(size_t)> phase_b = [&](size_t s) {
        best_match_[s]->ShardCandidatePartials(root_ws.candidates,
                                               shard_stop(s),
                                               *scratch.shard_ws[s],
                                               scratch.cand_partials[s]);
      };
      RunPhase(scratch, parallel, phase_b);
      if (merge_start_ready()) merge_start = std::chrono::steady_clock::now();
      core::ScoreBestMatchCandidates(
          *sharded_->base, best_match_options_.representation,
          best_match_options_.metric, state,
          std::span<const std::vector<core::BestMatchCandidatePartial>>(
              scratch.cand_partials.data(), n),
          k, stop, root_ws, out);
      break;
    }
  }
  if (merge_latency_us_ != nullptr) {
    merge_latency_us_->Observe(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() -
                                   merge_start)
                                   .count());
  }
  // Roll the shard kernels' tail-exemplar counters up into the root
  // workspace the engine inspects (the root merge already bumped its own
  // dense_fallbacks for root-side fallbacks).
  for (uint32_t s = 0; s < n; ++s) {
    const core::QueryWorkspace::KernelStats& stats =
        scratch.shard_ws[s]->kernel_stats;
    root_ws.kernel_stats.dense_fallbacks += stats.dense_fallbacks;
    root_ws.kernel_stats.slots_touched += stats.slots_touched;
    root_ws.kernel_stats.dense_resets += stats.dense_resets;
  }
}

core::RecommendationList ShardedRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  return RecommendCancellable(activity, k, nullptr);
}

core::RecommendationList ShardedRecommender::RecommendCancellable(
    const model::Activity& activity, size_t k,
    const util::StopToken* stop) const {
  // Allocating path: everything fresh, shards served sequentially on the
  // calling thread. The differential wall holds this path and the pooled
  // one to the same bits.
  core::QueryWorkspace root_ws;
  FanoutScratch scratch(sharded_->num_shards);
  root_ws.activity.assign(activity.begin(), activity.end());
  util::Normalize(root_ws.activity);
  core::RecommendationList out;
  ServeSharded(root_ws.activity, k, stop, root_ws, scratch,
               /*parallel=*/false, out);
  return out;
}

void ShardedRecommender::RecommendPooled(util::IdSpan activity, size_t k,
                                         const util::StopToken* stop,
                                         core::QueryWorkspace* workspace,
                                         core::RecommendationList& out) const {
  if (workspace == nullptr) {
    out = RecommendCancellable(
        model::Activity(activity.begin(), activity.end()), k, stop);
    return;
  }
  core::QueryWorkspace& root_ws = *workspace;
  root_ws.activity.assign(activity.begin(), activity.end());
  util::Normalize(root_ws.activity);
  ScratchLease lease = Acquire();
  ServeSharded(root_ws.activity, k, stop, root_ws, *lease, /*parallel=*/true,
               out);
}

LadderFactory MakeShardedLadderFactory(ShardedLadderOptions options) {
  if (options.num_shards == 0) options.num_shards = 1;
  obs::MetricRegistry& registry = options.metrics != nullptr
                                      ? *options.metrics
                                      : obs::MetricRegistry::Default();
  obs::Histogram* merge_latency = registry.GetHistogram(
      "goalrec_shard_merge_latency_us", obs::DefaultLatencyBucketsUs(), {},
      "Root-side shard merge latency per query (us)");
  return [options, merge_latency](const model::ImplementationLibrary& library,
                                  ServingSnapshot& out) {
    uint64_t version = out.library != nullptr ? out.library->version : 0;
    // Re-partitioning on every (re)load and publishing the shard set on the
    // ServingSnapshot makes the swap atomic across ALL shards: a query
    // holds either the old complete shard set or the new one, never a mix.
    auto sharded = model::BuildShardedSnapshot(library, options.num_shards,
                                               options.sharding, version);
    out.sharded = sharded;
    for (const auto& [name, strategy] : options.rungs) {
      auto rung = std::make_unique<ShardedRecommender>(
          sharded, strategy, options.pool, core::BestMatchOptions{},
          merge_latency);
      out.rungs.push_back(ServingEngine::Rung{name, rung.get()});
      out.owned.push_back(std::move(rung));
    }
    auto floor = std::make_unique<LibraryPopularityRecommender>(&library);
    out.rungs.push_back(ServingEngine::Rung{"popularity", floor.get()});
    out.owned.push_back(std::move(floor));
  };
}

ShardStatsExporter::ShardStatsExporter(obs::MetricRegistry* registry,
                                       Provider provider)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricRegistry::Default()),
      provider_(std::move(provider)) {
  GOALREC_CHECK(provider_ != nullptr);
  hook_id_ = registry_->AddScrapeHook([this] {
    std::shared_ptr<const model::ShardedSnapshot> snapshot = provider_();
    if (snapshot == nullptr) return;
    registry_
        ->GetGauge("goalrec_shard_count", {},
                   "Shards in the serving snapshot")
        ->Set(static_cast<int64_t>(snapshot->num_shards));
    for (uint32_t s = 0; s < snapshot->num_shards; ++s) {
      registry_
          ->GetGauge("goalrec_shard_impls",
                     {{"shard", std::to_string(s)}},
                     "Implementations on one shard")
          ->Set(static_cast<int64_t>(
              snapshot->shard_library(s).num_implementations()));
    }
  });
}

ShardStatsExporter::~ShardStatsExporter() {
  registry_->RemoveScrapeHook(hook_id_);
}

}  // namespace goalrec::serve
