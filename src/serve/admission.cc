#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace goalrec::serve {
namespace {

using Clock = std::chrono::steady_clock;

const char* RejectReasonLabel(AdmissionRejectReason reason) {
  switch (reason) {
    case AdmissionRejectReason::kQueueFull:
      return "queue_full";
    case AdmissionRejectReason::kDeadline:
      return "deadline";
    case AdmissionRejectReason::kQueueTimeout:
      return "queue_timeout";
    case AdmissionRejectReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// How long a queued waiter sleeps between grant checks. Short enough to
/// keep cancellation and deadline expiry responsive; Release() notifies the
/// condition variable, so the poll only bounds the unhappy paths.
constexpr std::chrono::milliseconds kWaitSlice{1};

}  // namespace

const char* QueryPriorityLabel(QueryPriority priority) {
  return priority == QueryPriority::kInteractive ? "interactive" : "batch";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  GOALREC_CHECK(options_.min_limit >= 1);
  GOALREC_CHECK(options_.max_limit >= options_.min_limit);
  limit_ = std::clamp(options_.initial_limit, options_.min_limit,
                      options_.max_limit);
  if (options_.initial_baseline.count() > 0) {
    baseline_us_ =
        static_cast<double>(options_.initial_baseline.count()) / 1e3;
  }
  if (!options_.now) {
    options_.now = [] { return Clock::now(); };
  }
  obs::MetricRegistry* metrics = options_.metrics != nullptr
                                     ? options_.metrics
                                     : &obs::MetricRegistry::Default();
  limit_gauge_ = metrics->GetGauge("goalrec_admission_limit", {},
                                   "Adaptive in-flight concurrency cap");
  limit_gauge_->Set(limit_);
  in_flight_gauge_ = metrics->GetGauge("goalrec_admission_in_flight", {},
                                       "Queries currently holding a slot");
  limit_increases_ = metrics->GetCounter(
      "goalrec_admission_limit_changes_total", {{"direction", "increase"}},
      "Concurrency-limit adjustments, by direction");
  limit_backoffs_ = metrics->GetCounter(
      "goalrec_admission_limit_changes_total", {{"direction", "backoff"}},
      "Concurrency-limit adjustments, by direction");
  deadline_met_ = metrics->GetCounter(
      "goalrec_admission_released_total", {{"deadline", "met"}},
      "Admitted queries released, by whether they met their deadline");
  deadline_missed_ = metrics->GetCounter(
      "goalrec_admission_released_total", {{"deadline", "missed"}},
      "Admitted queries released, by whether they met their deadline");
  queue_wait_us_ = metrics->GetHistogram(
      "goalrec_admission_queue_wait_us", obs::DefaultLatencyBucketsUs(), {},
      "Time admitted queries spent waiting for a slot (microseconds)");
  for (QueryPriority priority :
       {QueryPriority::kInteractive, QueryPriority::kBatch}) {
    ClassState& cls = classes_[static_cast<size_t>(priority)];
    const std::string label = QueryPriorityLabel(priority);
    cls.depth = metrics->GetGauge("goalrec_admission_queue_depth",
                                  {{"priority", label}},
                                  "Waiters queued for a slot, by priority");
    cls.admitted = metrics->GetCounter("goalrec_admission_admitted_total",
                                       {{"priority", label}},
                                       "Queries granted a slot, by priority");
    for (AdmissionRejectReason reason :
         {AdmissionRejectReason::kQueueFull, AdmissionRejectReason::kDeadline,
          AdmissionRejectReason::kQueueTimeout,
          AdmissionRejectReason::kCancelled}) {
      cls.rejected[static_cast<size_t>(reason)] = metrics->GetCounter(
          "goalrec_admission_rejected_total",
          {{"priority", label}, {"reason", RejectReasonLabel(reason)}},
          "Queries shed at admission, by priority and reason");
    }
  }
}

bool AdmissionController::CanGrantLocked(QueryPriority priority) const {
  if (in_flight_ >= limit_) return false;
  // Batch yields to any queued interactive traffic.
  if (priority == QueryPriority::kBatch &&
      classes_[static_cast<size_t>(QueryPriority::kInteractive)].waiting > 0) {
    return false;
  }
  return true;
}

void AdmissionController::RejectLocked(QueryPriority priority,
                                       AdmissionRejectReason reason) {
  classes_[static_cast<size_t>(priority)]
      .rejected[static_cast<size_t>(reason)]
      ->Increment();
}

util::Status AdmissionController::Admit(QueryPriority priority,
                                        const util::Deadline& deadline,
                                        const util::CancellationToken& cancel) {
  std::unique_lock<std::mutex> lock(mutex_);
  ClassState& cls = classes_[static_cast<size_t>(priority)];

  // Fast path: a free slot and nobody of this class ahead of us.
  if (cls.waiting == 0 && CanGrantLocked(priority)) {
    ++in_flight_;
    in_flight_gauge_->Set(in_flight_);
    cls.admitted->Increment();
    queue_wait_us_->Observe(0.0);
    return util::Status::Ok();
  }

  // Shed rather than queue when the queue is full or the budget cannot
  // cover the predicted wait — failing in microseconds here is the whole
  // point; timing out inside a strategy later costs the full deadline.
  const size_t capacity = priority == QueryPriority::kInteractive
                              ? options_.max_queue_interactive
                              : options_.max_queue_batch;
  if (cls.waiting >= capacity) {
    RejectLocked(priority, AdmissionRejectReason::kQueueFull);
    return util::ResourceExhaustedError(
        std::string("admission queue full (") + QueryPriorityLabel(priority) +
        ", depth " + std::to_string(cls.waiting) + ")");
  }
  if (options_.deadline_aware && !deadline.is_infinite()) {
    // The query must fit the predicted queue wait AND the service itself:
    // admitting a query whose budget covers only the wait hands a doomed
    // query to the engine, which burns a slot to produce a deadline miss.
    // baseline_us_ is the limiter's service-time EWMA (0 until the first
    // release, which degrades this to a wait-only check).
    const double predicted_us =
        predicted_wait_us_ * static_cast<double>(cls.waiting + 1) +
        baseline_us_;
    const double remaining_us =
        static_cast<double>(deadline.Remaining().count()) / 1e3;
    if (predicted_us > remaining_us) {
      RejectLocked(priority, AdmissionRejectReason::kDeadline);
      return util::ResourceExhaustedError(
          "predicted queue wait " + std::to_string(predicted_us / 1e3) +
          " ms exceeds remaining budget " + std::to_string(remaining_us / 1e3) +
          " ms");
    }
  }

  // Queue until a slot frees, the budget expires, or the caller hangs up.
  ++cls.waiting;
  cls.depth->Set(static_cast<int64_t>(cls.waiting));
  const Clock::time_point enqueued = options_.now();
  util::Status verdict;
  while (true) {
    if (cancel.Cancelled()) {
      RejectLocked(priority, AdmissionRejectReason::kCancelled);
      verdict = util::CancelledError("query cancelled while queued");
      break;
    }
    if (!deadline.is_infinite() && deadline.Expired()) {
      RejectLocked(priority, AdmissionRejectReason::kQueueTimeout);
      verdict = util::ResourceExhaustedError(
          "deadline expired while queued for admission");
      break;
    }
    if (CanGrantLocked(priority)) {
      verdict = util::Status::Ok();
      break;
    }
    slot_freed_.wait_for(lock, kWaitSlice);
  }
  --cls.waiting;
  cls.depth->Set(static_cast<int64_t>(cls.waiting));
  if (!verdict.ok()) return verdict;

  ++in_flight_;
  in_flight_gauge_->Set(in_flight_);
  cls.admitted->Increment();
  const double waited_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.now() -
                                                           enqueued)
          .count()) /
      1e3;
  queue_wait_us_->Observe(waited_us);
  predicted_wait_us_ += options_.queue_wait_alpha *
                        (waited_us - predicted_wait_us_);
  return util::Status::Ok();
}

void AdmissionController::Release(std::chrono::nanoseconds latency,
                                  bool deadline_met, bool limiter_sample) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GOALREC_CHECK(in_flight_ > 0) << "Release without a matching Admit";
    --in_flight_;
    in_flight_gauge_->Set(in_flight_);
    (deadline_met ? deadline_met_ : deadline_missed_)->Increment();
    if (limiter_sample) UpdateLimitLocked(latency);
  }
  slot_freed_.notify_all();
}

void AdmissionController::UpdateLimitLocked(std::chrono::nanoseconds latency) {
  const double us = static_cast<double>(latency.count()) / 1e3;
  // Asymmetric EWMA baseline: chases lower samples at full alpha (the
  // no-load latency is a floor) and drifts up at alpha/8, so a genuinely
  // slower workload re-anchors eventually but congestion cannot quickly
  // poison the reference.
  if (baseline_us_ <= 0.0) {
    baseline_us_ = us;
  } else if (us < baseline_us_) {
    baseline_us_ += options_.baseline_alpha * (us - baseline_us_);
  } else {
    baseline_us_ += (options_.baseline_alpha / 8.0) * (us - baseline_us_);
  }
  if (!options_.adaptive) return;
  if (us > options_.latency_threshold * baseline_us_) {
    good_streak_ = 0;
    const int next = std::max(
        options_.min_limit,
        static_cast<int>(std::floor(static_cast<double>(limit_) *
                                    options_.backoff_ratio)));
    if (next < limit_) {
      limit_ = next;
      limit_gauge_->Set(limit_);
      limit_backoffs_->Increment();
    }
  } else if (++good_streak_ >= options_.increase_after) {
    good_streak_ = 0;
    if (limit_ < options_.max_limit) {
      ++limit_;
      limit_gauge_->Set(limit_);
      limit_increases_->Increment();
    }
  }
}

int AdmissionController::concurrency_limit() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return limit_;
}

int AdmissionController::in_flight() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return in_flight_;
}

size_t AdmissionController::queue_depth(QueryPriority priority) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return classes_[static_cast<size_t>(priority)].waiting;
}

std::chrono::nanoseconds AdmissionController::latency_baseline() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return std::chrono::nanoseconds(static_cast<int64_t>(baseline_us_ * 1e3));
}

}  // namespace goalrec::serve
