#ifndef GOALREC_BASELINES_KNN_H_
#define GOALREC_BASELINES_KNN_H_

#include <memory>

#include "baselines/interaction_data.h"
#include "core/recommender.h"

// Nearest-neighbour collaborative filtering (the paper's "CF KNN" baseline):
// user-based kNN over implicit feedback with the Tanimoto (Jaccard)
// coefficient for neighbourhood formation, as in §6 "Comparison with the
// State-of-the-art". For a query activity H the recommender finds the k
// most similar training users and scores each unseen action by the summed
// similarity of the neighbours who performed it.

namespace goalrec::baselines {

struct KnnOptions {
  /// Neighbourhood size (number of most similar users considered).
  uint32_t num_neighbors = 50;
  /// Neighbours with similarity below this are ignored.
  double min_similarity = 1e-9;
};

class KnnRecommender : public core::Recommender {
 public:
  /// `data` must outlive the recommender.
  KnnRecommender(const InteractionData* data, KnnOptions options = {});

  std::string name() const override { return "CF_kNN"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// Tanimoto similarity of the query activity to training user `u`;
  /// exposed for tests.
  double UserSimilarity(const model::Activity& activity, uint32_t u) const;

 private:
  const InteractionData* data_;
  KnnOptions options_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_KNN_H_
