#ifndef GOALREC_BASELINES_ALS_H_
#define GOALREC_BASELINES_ALS_H_

#include <vector>

#include "baselines/interaction_data.h"
#include "core/recommender.h"
#include "util/linalg.h"

// Matrix-factorisation collaborative filtering (the paper's "CF MF"
// baseline): alternating least squares with weighted-λ regularisation
// (ALS-WR, Zhou et al. 2008) adapted to implicit feedback in the style of
// Hu/Koren/Volinsky 2008, matching Mahout's implicit ALS solver the paper
// used. The binary user × action matrix is factorised into
// user-factor and action-factor matrices; a query activity (which may be an
// unseen cart) is folded in by solving its user vector against the learned
// action factors, then actions are ranked by predicted preference.

namespace goalrec::baselines {

struct AlsOptions {
  uint32_t num_factors = 16;
  uint32_t num_iterations = 10;
  /// Regularisation weight λ; each least-squares solve is regularised by
  /// λ · (#observations of that row), the "weighted-λ" scheme of ALS-WR.
  double lambda = 0.05;
  /// Confidence weight: observed cells get confidence 1 + alpha.
  double alpha = 40.0;
  /// Seed for factor initialisation.
  uint64_t seed = 13;
};

class AlsRecommender : public core::Recommender {
 public:
  /// Trains immediately; `data` must outlive the recommender.
  AlsRecommender(const InteractionData* data, AlsOptions options = {});

  std::string name() const override { return "CF_MF"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// Predicted preference of `action` for the folded-in `user_vector`.
  double Predict(const util::DenseVector& user_vector,
                 model::ActionId action) const;

  /// Solves the fold-in user vector for an arbitrary activity.
  util::DenseVector FoldInUser(const model::Activity& activity) const;

  /// Training reconstruction objective (confidence-weighted squared error +
  /// regularisation); decreases monotonically across iterations in tests.
  double Objective() const;

 private:
  void Train();
  // One half-step: recompute `target` factors from `fixed` factors given the
  // postings (rows of the matrix being solved).
  void SolveSide(const std::vector<std::vector<uint32_t>>& postings,
                 const std::vector<util::DenseVector>& fixed,
                 std::vector<util::DenseVector>& target);

  const InteractionData* data_;
  AlsOptions options_;
  std::vector<util::DenseVector> user_factors_;
  std::vector<util::DenseVector> action_factors_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_ALS_H_
