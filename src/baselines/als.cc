#include "baselines/als.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/set_ops.h"
#include "util/thread_pool.h"
#include "util/top_k.h"

namespace goalrec::baselines {
namespace {

// Gram matrix Σ_j f_j f_jᵀ of a factor side.
util::DenseMatrix ComputeGram(const std::vector<util::DenseVector>& factors,
                              size_t dim) {
  util::DenseMatrix gram(dim, dim);
  for (const util::DenseVector& f : factors) gram.AddOuterProduct(f, 1.0);
  return gram;
}

// Solves one implicit-ALS row: x = (Gram + α Σ f_j f_jᵀ + λ n I)⁻¹ (1+α) Σ f_j
// where j ranges over the row's observed columns.
util::DenseVector SolveRow(const util::DenseMatrix& gram,
                           const std::vector<uint32_t>& observed,
                           const std::vector<util::DenseVector>& fixed,
                           const AlsOptions& options) {
  size_t dim = options.num_factors;
  if (observed.empty()) return util::DenseVector(dim, 0.0);
  util::DenseMatrix a = gram;
  util::DenseVector b(dim, 0.0);
  for (uint32_t j : observed) {
    const util::DenseVector& f = fixed[j];
    a.AddOuterProduct(f, options.alpha);
    for (size_t d = 0; d < dim; ++d) b[d] += (1.0 + options.alpha) * f[d];
  }
  // Weighted-λ regularisation (ALS-WR): scale λ by the row's observation
  // count. The ridge term keeps the system positive definite.
  a.AddToDiagonal(options.lambda * static_cast<double>(observed.size()) +
                  1e-9);
  util::StatusOr<util::DenseVector> solved = util::CholeskySolve(a, b);
  GOALREC_CHECK(solved.ok()) << solved.status().ToString();
  return std::move(solved).value();
}

}  // namespace

AlsRecommender::AlsRecommender(const InteractionData* data, AlsOptions options)
    : data_(data), options_(options) {
  GOALREC_CHECK(data_ != nullptr);
  GOALREC_CHECK_GT(options_.num_factors, 0u);
  GOALREC_CHECK_GT(options_.lambda, 0.0);
  Train();
}

void AlsRecommender::Train() {
  util::Rng rng(options_.seed);
  const size_t dim = options_.num_factors;
  user_factors_.assign(data_->num_users(), util::DenseVector(dim, 0.0));
  action_factors_.assign(data_->num_actions(), util::DenseVector(dim, 0.0));
  // Small positive random initialisation (Mahout convention).
  for (util::DenseVector& f : action_factors_) {
    for (double& v : f) v = 0.1 * rng.UniformDouble();
  }

  // Row postings for the user side (user -> actions) and column postings for
  // the action side (action -> users).
  std::vector<std::vector<uint32_t>> user_rows(data_->num_users());
  for (uint32_t u = 0; u < data_->num_users(); ++u) {
    const model::Activity& acts = data_->ActionsOfUser(u);
    user_rows[u].assign(acts.begin(), acts.end());
  }
  std::vector<std::vector<uint32_t>> action_rows(data_->num_actions());
  for (model::ActionId a = 0; a < data_->num_actions(); ++a) {
    action_rows[a] = data_->UsersOfAction(a);
  }

  for (uint32_t iter = 0; iter < options_.num_iterations; ++iter) {
    SolveSide(user_rows, action_factors_, user_factors_);
    SolveSide(action_rows, user_factors_, action_factors_);
  }
}

void AlsRecommender::SolveSide(
    const std::vector<std::vector<uint32_t>>& postings,
    const std::vector<util::DenseVector>& fixed,
    std::vector<util::DenseVector>& target) {
  util::DenseMatrix gram = ComputeGram(fixed, options_.num_factors);
  util::ParallelFor(postings.size(), [&](size_t r) {
    target[r] = SolveRow(gram, postings[r], fixed, options_);
  });
}

double AlsRecommender::Predict(const util::DenseVector& user_vector,
                               model::ActionId action) const {
  GOALREC_CHECK_LT(action, action_factors_.size());
  return util::Dot(user_vector, action_factors_[action]);
}

util::DenseVector AlsRecommender::FoldInUser(
    const model::Activity& activity) const {
  util::DenseMatrix gram =
      ComputeGram(action_factors_, options_.num_factors);
  std::vector<uint32_t> observed;
  observed.reserve(activity.size());
  for (model::ActionId a : activity) {
    if (a < data_->num_actions()) observed.push_back(a);
  }
  return SolveRow(gram, observed, action_factors_, options_);
}

double AlsRecommender::Objective() const {
  // Confidence-weighted reconstruction error over the full matrix plus the
  // weighted-λ regularisation term. O(users × actions × factors): intended
  // for tests on small instances, not for production monitoring.
  double total = 0.0;
  for (uint32_t u = 0; u < data_->num_users(); ++u) {
    const model::Activity& acts = data_->ActionsOfUser(u);
    for (model::ActionId i = 0; i < data_->num_actions(); ++i) {
      bool observed = util::Contains(acts, i);
      double r = observed ? 1.0 : 0.0;
      double c = observed ? 1.0 + options_.alpha : 1.0;
      double err = r - util::Dot(user_factors_[u], action_factors_[i]);
      total += c * err * err;
    }
    total += options_.lambda * static_cast<double>(acts.size()) *
             util::Dot(user_factors_[u], user_factors_[u]);
  }
  for (model::ActionId i = 0; i < data_->num_actions(); ++i) {
    total += options_.lambda *
             static_cast<double>(data_->UsersOfAction(i).size()) *
             util::Dot(action_factors_[i], action_factors_[i]);
  }
  return total;
}

core::RecommendationList AlsRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0 || activity.empty()) return list;
  util::DenseVector user_vector = FoldInUser(activity);
  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (model::ActionId a = 0; a < data_->num_actions(); ++a) {
    if (util::Contains(activity, a)) continue;
    top_k.Push(core::ScoredAction{a, Predict(user_vector, a)});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
