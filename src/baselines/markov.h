#ifndef GOALREC_BASELINES_MARKOV_H_
#define GOALREC_BASELINES_MARKOV_H_

#include <unordered_map>
#include <vector>

#include "core/recommender.h"
#include "model/types.h"

// First-order Markov transition baseline — the "next action inference"
// family the paper's related work (§2) contrasts goal-based recommendation
// with: probabilistic state-transition models predicting the next action
// from the previous ones. Training consumes *ordered* performance sequences
// (data::UserRecord::ordered_activity); at query time the Recommender
// interface supplies an unordered activity, so a candidate is scored by its
// total transition probability from the activity's actions,
//
//   sc(j | H) = Σ_{i ∈ H} P(j | i),   P(j | i) = count(i → j) / count(i → ·)
//
// which reduces to the standard next-action predictor when |H| = 1.

namespace goalrec::baselines {

struct MarkovOptions {
  /// Transitions observed fewer times are dropped (noise floor).
  uint32_t min_transition_count = 1;
};

class MarkovRecommender : public core::Recommender {
 public:
  /// Trains on the given performance sequences immediately. Sequences of
  /// length < 2 contribute nothing.
  MarkovRecommender(std::vector<std::vector<model::ActionId>> sequences,
                    MarkovOptions options = {});

  std::string name() const override { return "Markov"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// P(next | previous); 0 when the transition was never observed (or was
  /// filtered). Exposed for tests.
  double TransitionProbability(model::ActionId previous,
                               model::ActionId next) const;

  size_t num_transitions() const;

 private:
  // transitions_[i] lists (j, probability), built once at training.
  std::unordered_map<model::ActionId,
                     std::vector<std::pair<model::ActionId, double>>>
      transitions_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_MARKOV_H_
