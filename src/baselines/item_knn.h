#ifndef GOALREC_BASELINES_ITEM_KNN_H_
#define GOALREC_BASELINES_ITEM_KNN_H_

#include <vector>

#include "baselines/interaction_data.h"
#include "core/recommender.h"

// Item-based nearest-neighbour collaborative filtering: the classic
// complement of the user-based CF kNN baseline. Item-item Tanimoto
// similarities are precomputed from co-occurrence at construction time
// (Sarwar et al. 2001 / Mahout's ItemSimilarity), and a query activity
// scores each unseen item by its summed similarity to the activity's items.
// Included as an additional comparator: it shares user-based kNN's
// popularity-perpetuation property and makes the roster symmetric.

namespace goalrec::baselines {

struct ItemKnnOptions {
  /// Neighbours kept per item (the model-size / quality knob).
  uint32_t neighbors_per_item = 30;
  /// Item pairs must co-occur in at least this many activities.
  uint32_t min_cooccurrence = 1;
};

class ItemKnnRecommender : public core::Recommender {
 public:
  /// Precomputes the item-item model; `data` must outlive the recommender.
  ItemKnnRecommender(const InteractionData* data, ItemKnnOptions options = {});

  std::string name() const override { return "CF_itemKNN"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// Tanimoto similarity of the mined pair (i, j), or 0 if below thresholds
  /// or outside i's kept neighbourhood. Exposed for tests.
  double ItemSimilarity(model::ActionId i, model::ActionId j) const;

 private:
  void BuildModel();

  const InteractionData* data_;
  ItemKnnOptions options_;
  // neighbors_[i] lists (j, similarity), sorted by similarity descending.
  std::vector<std::vector<std::pair<model::ActionId, double>>> neighbors_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_ITEM_KNN_H_
