#include "baselines/popularity.h"

#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {

PopularityRecommender::PopularityRecommender(const InteractionData* data)
    : data_(data) {
  GOALREC_CHECK(data_ != nullptr);
}

core::RecommendationList PopularityRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0) return list;
  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (model::ActionId a = 0; a < data_->num_actions(); ++a) {
    if (util::Contains(activity, a)) continue;
    double count = static_cast<double>(data_->ActionCount(a));
    if (count == 0.0) continue;
    top_k.Push(core::ScoredAction{a, count});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
