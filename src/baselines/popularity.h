#ifndef GOALREC_BASELINES_POPULARITY_H_
#define GOALREC_BASELINES_POPULARITY_H_

#include "baselines/interaction_data.h"
#include "core/recommender.h"

// Popularity baseline: recommend the globally most-performed actions the
// user has not performed. Not one of the paper's three comparators, but the
// natural floor for the popularity-perpetuation analysis of Table 3 (it has
// correlation 1 with popularity by construction) and a sanity anchor for the
// other experiments.

namespace goalrec::baselines {

class PopularityRecommender : public core::Recommender {
 public:
  /// `data` must outlive the recommender.
  explicit PopularityRecommender(const InteractionData* data);

  std::string name() const override { return "Popularity"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

 private:
  const InteractionData* data_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_POPULARITY_H_
