#include "baselines/interaction_data.h"

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::baselines {

InteractionData::InteractionData(std::vector<model::Activity> user_activities,
                                 uint32_t num_actions)
    : users_(std::move(user_activities)), num_actions_(num_actions) {
  action_users_.resize(num_actions_);
  for (uint32_t u = 0; u < users_.size(); ++u) {
    util::Normalize(users_[u]);
    for (model::ActionId a : users_[u]) {
      GOALREC_CHECK_LT(a, num_actions_);
      action_users_[a].push_back(u);
    }
  }
  // Postings are ascending because users were scanned in id order.
}

const model::Activity& InteractionData::ActionsOfUser(uint32_t u) const {
  GOALREC_CHECK_LT(u, users_.size());
  return users_[u];
}

const std::vector<uint32_t>& InteractionData::UsersOfAction(
    model::ActionId a) const {
  GOALREC_CHECK_LT(a, action_users_.size());
  return action_users_[a];
}

}  // namespace goalrec::baselines
