#ifndef GOALREC_BASELINES_CONTENT_BASED_H_
#define GOALREC_BASELINES_CONTENT_BASED_H_

#include "core/recommender.h"
#include "model/features.h"
#include "model/types.h"
#include "util/dense_vector.h"

// Content-based filtering (the paper's "Content" baseline): actions and
// users are represented in a domain-specific feature space — for FoodMart,
// the 128 product (sub)categories ("baking goods", "seafood", ...). The user
// profile is the sum of the feature vectors of the performed actions, and
// candidates are ranked by cosine similarity to the profile.

namespace goalrec::baselines {

class ContentRecommender : public core::Recommender {
 public:
  /// `table` must outlive the recommender.
  explicit ContentRecommender(const model::ActionFeatureTable* table);

  std::string name() const override { return "Content"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// The dense feature-space profile of an activity (sum of feature
  /// vectors); exposed for tests.
  util::DenseVector Profile(const model::Activity& activity) const;

 private:
  const model::ActionFeatureTable* table_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_CONTENT_BASED_H_
