#include "baselines/content_based.h"

#include <cmath>

#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {

ContentRecommender::ContentRecommender(
    const model::ActionFeatureTable* table)
    : table_(table) {
  GOALREC_CHECK(table_ != nullptr);
  for (const model::IdSet& f : table_->features) {
    for (uint32_t id : f) GOALREC_CHECK_LT(id, table_->num_features);
  }
}

util::DenseVector ContentRecommender::Profile(
    const model::Activity& activity) const {
  util::DenseVector profile(table_->num_features, 0.0);
  for (model::ActionId a : activity) {
    if (a >= table_->features.size()) continue;
    for (uint32_t f : table_->features[a]) profile[f] += 1.0;
  }
  return profile;
}

core::RecommendationList ContentRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0 || activity.empty()) return list;
  util::DenseVector profile = Profile(activity);
  double profile_norm = util::Norm2(profile);
  if (profile_norm == 0.0) return list;

  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (model::ActionId a = 0; a < table_->num_actions(); ++a) {
    if (util::Contains(activity, a)) continue;
    const model::IdSet& feats = table_->features[a];
    if (feats.empty()) continue;
    double dot = 0.0;
    for (uint32_t f : feats) dot += profile[f];
    double score =
        dot / (profile_norm * std::sqrt(static_cast<double>(feats.size())));
    if (score <= 0.0) continue;
    top_k.Push(core::ScoredAction{a, score});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
