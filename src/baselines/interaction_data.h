#ifndef GOALREC_BASELINES_INTERACTION_DATA_H_
#define GOALREC_BASELINES_INTERACTION_DATA_H_

#include <cstdint>
#include <vector>

#include "model/types.h"

// Implicit-feedback interaction data shared by the collaborative-filtering
// baselines: one binary user × action matrix stored both row-wise (each
// user's sorted action set) and column-wise (each action's sorted user
// postings). The paper's user feedback is implicit — selection /
// non-selection (§6, "Comparison with the State-of-the-art").

namespace goalrec::baselines {

class InteractionData {
 public:
  /// Builds from one activity per training user. Activities are normalised
  /// to sorted sets. `num_actions` fixes the action id space (ids in
  /// activities must be < num_actions).
  InteractionData(std::vector<model::Activity> user_activities,
                  uint32_t num_actions);

  uint32_t num_users() const {
    return static_cast<uint32_t>(users_.size());
  }
  uint32_t num_actions() const { return num_actions_; }

  /// Sorted action set of user `u`.
  const model::Activity& ActionsOfUser(uint32_t u) const;

  /// Sorted user postings of action `a`.
  const std::vector<uint32_t>& UsersOfAction(model::ActionId a) const;

  /// Number of users who performed `a` (action popularity).
  uint32_t ActionCount(model::ActionId a) const {
    return static_cast<uint32_t>(UsersOfAction(a).size());
  }

 private:
  std::vector<model::Activity> users_;
  std::vector<std::vector<uint32_t>> action_users_;
  uint32_t num_actions_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_INTERACTION_DATA_H_
