#ifndef GOALREC_BASELINES_ASSOCIATION_RULES_H_
#define GOALREC_BASELINES_ASSOCIATION_RULES_H_

#include <unordered_map>
#include <vector>

#include "baselines/interaction_data.h"
#include "core/recommender.h"

// Association-rule recommendation (paper §2, "Association rule mining"):
// mines pairwise rules i → j from the training activities with the classic
// support/confidence framework and recommends the consequents of the rules
// whose antecedents the user has performed. The paper argues this family is
// popularity-bound — it can only surface combinations frequent in past
// behaviour — which is exactly the contrast the goal-based strategies break;
// we include it so that contrast is measurable.

namespace goalrec::baselines {

struct AssociationRuleOptions {
  /// A pair (i, j) must co-occur in at least this many activities.
  uint32_t min_support_count = 2;
  /// Rules with confidence supp(i,j)/supp(i) below this are discarded.
  double min_confidence = 0.05;
};

class AssociationRuleRecommender : public core::Recommender {
 public:
  /// Mines rules immediately; `data` must outlive the recommender.
  AssociationRuleRecommender(const InteractionData* data,
                             AssociationRuleOptions options = {});

  std::string name() const override { return "AssocRules"; }
  core::RecommendationList Recommend(const model::Activity& activity,
                                     size_t k) const override;

  /// Confidence of the mined rule i → j, or 0 if no such rule survived the
  /// thresholds. Exposed for tests.
  double RuleConfidence(model::ActionId i, model::ActionId j) const;

  size_t num_rules() const;

 private:
  void Mine();

  const InteractionData* data_;
  AssociationRuleOptions options_;
  // rules_[i] lists (j, confidence) for surviving rules i -> j.
  std::vector<std::vector<std::pair<model::ActionId, double>>> rules_;
};

}  // namespace goalrec::baselines

#endif  // GOALREC_BASELINES_ASSOCIATION_RULES_H_
