#include "baselines/markov.h"

#include <algorithm>

#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {

MarkovRecommender::MarkovRecommender(
    std::vector<std::vector<model::ActionId>> sequences,
    MarkovOptions options) {
  GOALREC_CHECK_GT(options.min_transition_count, 0u);
  // Raw transition counts and per-source totals.
  std::unordered_map<model::ActionId,
                     std::unordered_map<model::ActionId, uint32_t>>
      counts;
  std::unordered_map<model::ActionId, uint32_t> totals;
  for (const std::vector<model::ActionId>& sequence : sequences) {
    for (size_t i = 0; i + 1 < sequence.size(); ++i) {
      ++counts[sequence[i]][sequence[i + 1]];
      ++totals[sequence[i]];
    }
  }
  for (const auto& [source, nexts] : counts) {
    double total = static_cast<double>(totals[source]);
    std::vector<std::pair<model::ActionId, double>> row;
    for (const auto& [next, count] : nexts) {
      if (count < options.min_transition_count) continue;
      row.emplace_back(next, static_cast<double>(count) / total);
    }
    if (row.empty()) continue;
    // Deterministic row order (probability desc, id asc).
    std::sort(row.begin(), row.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    transitions_.emplace(source, std::move(row));
  }
}

double MarkovRecommender::TransitionProbability(model::ActionId previous,
                                                model::ActionId next) const {
  auto it = transitions_.find(previous);
  if (it == transitions_.end()) return 0.0;
  for (const auto& [candidate, probability] : it->second) {
    if (candidate == next) return probability;
  }
  return 0.0;
}

size_t MarkovRecommender::num_transitions() const {
  size_t total = 0;
  for (const auto& [source, row] : transitions_) total += row.size();
  return total;
}

core::RecommendationList MarkovRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0 || activity.empty()) return list;
  std::unordered_map<model::ActionId, double> scores;
  for (model::ActionId i : activity) {
    auto it = transitions_.find(i);
    if (it == transitions_.end()) continue;
    for (const auto& [j, probability] : it->second) {
      if (util::Contains(activity, j)) continue;
      scores[j] += probability;
    }
  }
  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (const auto& [action, score] : scores) {
    top_k.Push(core::ScoredAction{action, score});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
