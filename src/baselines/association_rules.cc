#include "baselines/association_rules.h"

#include <cstdint>

#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {
namespace {

uint64_t PackPair(model::ActionId i, model::ActionId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

}  // namespace

AssociationRuleRecommender::AssociationRuleRecommender(
    const InteractionData* data, AssociationRuleOptions options)
    : data_(data), options_(options) {
  GOALREC_CHECK(data_ != nullptr);
  GOALREC_CHECK_GT(options_.min_support_count, 0u);
  Mine();
}

void AssociationRuleRecommender::Mine() {
  // Pair co-occurrence counts over the training activities. Unordered pairs
  // are stored once (i < j).
  std::unordered_map<uint64_t, uint32_t> pair_counts;
  for (uint32_t u = 0; u < data_->num_users(); ++u) {
    const model::Activity& acts = data_->ActionsOfUser(u);
    for (size_t x = 0; x < acts.size(); ++x) {
      for (size_t y = x + 1; y < acts.size(); ++y) {
        ++pair_counts[PackPair(acts[x], acts[y])];
      }
    }
  }
  rules_.assign(data_->num_actions(), {});
  for (const auto& [key, count] : pair_counts) {
    if (count < options_.min_support_count) continue;
    model::ActionId i = static_cast<model::ActionId>(key >> 32);
    model::ActionId j = static_cast<model::ActionId>(key & 0xffffffffu);
    double support_i = static_cast<double>(data_->ActionCount(i));
    double support_j = static_cast<double>(data_->ActionCount(j));
    // Both directions of the unordered pair are candidate rules.
    double conf_ij = static_cast<double>(count) / support_i;
    double conf_ji = static_cast<double>(count) / support_j;
    if (conf_ij >= options_.min_confidence) rules_[i].emplace_back(j, conf_ij);
    if (conf_ji >= options_.min_confidence) rules_[j].emplace_back(i, conf_ji);
  }
}

double AssociationRuleRecommender::RuleConfidence(model::ActionId i,
                                                  model::ActionId j) const {
  if (i >= rules_.size()) return 0.0;
  for (const auto& [target, confidence] : rules_[i]) {
    if (target == j) return confidence;
  }
  return 0.0;
}

size_t AssociationRuleRecommender::num_rules() const {
  size_t total = 0;
  for (const auto& r : rules_) total += r.size();
  return total;
}

core::RecommendationList AssociationRuleRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0) return list;
  // Score each candidate by the summed confidence of the fired rules.
  std::unordered_map<model::ActionId, double> scores;
  for (model::ActionId i : activity) {
    if (i >= rules_.size()) continue;
    for (const auto& [j, confidence] : rules_[i]) {
      if (util::Contains(activity, j)) continue;
      scores[j] += confidence;
    }
  }
  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (const auto& [action, score] : scores) {
    top_k.Push(core::ScoredAction{action, score});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
