#include "baselines/knn.h"

#include <unordered_map>
#include <vector>

#include "util/dense_vector.h"
#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {
namespace {

struct ScoredUser {
  uint32_t user = 0;
  double similarity = 0.0;
};

struct ByUserSimilarityDesc {
  bool operator()(const ScoredUser& a, const ScoredUser& b) const {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.user < b.user;
  }
};

}  // namespace

KnnRecommender::KnnRecommender(const InteractionData* data, KnnOptions options)
    : data_(data), options_(options) {
  GOALREC_CHECK(data_ != nullptr);
  GOALREC_CHECK_GT(options_.num_neighbors, 0u);
}

double KnnRecommender::UserSimilarity(const model::Activity& activity,
                                      uint32_t u) const {
  const model::Activity& other = data_->ActionsOfUser(u);
  size_t common = util::IntersectionSize(activity, other);
  return util::JaccardFromCounts(common, activity.size(), other.size());
}

core::RecommendationList KnnRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0 || activity.empty()) return list;

  // Candidate neighbours are exactly the users sharing at least one action
  // with the query; count overlaps through the inverted index instead of
  // scanning all users.
  std::unordered_map<uint32_t, uint32_t> overlap;
  for (model::ActionId a : activity) {
    if (a >= data_->num_actions()) continue;
    for (uint32_t u : data_->UsersOfAction(a)) ++overlap[u];
  }

  util::TopK<ScoredUser, ByUserSimilarityDesc> neighbor_heap(
      options_.num_neighbors);
  for (const auto& [user, common] : overlap) {
    const model::Activity& other = data_->ActionsOfUser(user);
    double sim =
        util::JaccardFromCounts(common, activity.size(), other.size());
    if (sim < options_.min_similarity) continue;
    neighbor_heap.Push(ScoredUser{user, sim});
  }

  std::unordered_map<model::ActionId, double> scores;
  for (const ScoredUser& neighbor : neighbor_heap.Take()) {
    for (model::ActionId a : data_->ActionsOfUser(neighbor.user)) {
      if (util::Contains(activity, a)) continue;
      scores[a] += neighbor.similarity;
    }
  }

  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (const auto& [action, score] : scores) {
    top_k.Push(core::ScoredAction{action, score});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
