#include "baselines/item_knn.h"

#include <algorithm>
#include <unordered_map>

#include "util/dense_vector.h"
#include "util/logging.h"
#include "util/set_ops.h"
#include "util/top_k.h"

namespace goalrec::baselines {
namespace {

uint64_t PackPair(model::ActionId i, model::ActionId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

}  // namespace

ItemKnnRecommender::ItemKnnRecommender(const InteractionData* data,
                                       ItemKnnOptions options)
    : data_(data), options_(options) {
  GOALREC_CHECK(data_ != nullptr);
  GOALREC_CHECK_GT(options_.neighbors_per_item, 0u);
  GOALREC_CHECK_GT(options_.min_cooccurrence, 0u);
  BuildModel();
}

void ItemKnnRecommender::BuildModel() {
  // Pairwise co-occurrence counts over the training activities (i < j).
  std::unordered_map<uint64_t, uint32_t> cooccurrence;
  for (uint32_t u = 0; u < data_->num_users(); ++u) {
    const model::Activity& acts = data_->ActionsOfUser(u);
    for (size_t x = 0; x < acts.size(); ++x) {
      for (size_t y = x + 1; y < acts.size(); ++y) {
        ++cooccurrence[PackPair(acts[x], acts[y])];
      }
    }
  }
  // Similarities, both directions.
  std::vector<std::vector<std::pair<model::ActionId, double>>> full(
      data_->num_actions());
  for (const auto& [key, count] : cooccurrence) {
    if (count < options_.min_cooccurrence) continue;
    model::ActionId i = static_cast<model::ActionId>(key >> 32);
    model::ActionId j = static_cast<model::ActionId>(key & 0xffffffffu);
    double sim = util::JaccardFromCounts(count, data_->ActionCount(i),
                                         data_->ActionCount(j));
    if (sim <= 0.0) continue;
    full[i].emplace_back(j, sim);
    full[j].emplace_back(i, sim);
  }
  // Keep the strongest neighbours per item (similarity desc, id asc).
  neighbors_.assign(data_->num_actions(), {});
  for (model::ActionId i = 0; i < data_->num_actions(); ++i) {
    auto& candidates = full[i];
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (candidates.size() > options_.neighbors_per_item) {
      candidates.resize(options_.neighbors_per_item);
    }
    neighbors_[i] = std::move(candidates);
  }
}

double ItemKnnRecommender::ItemSimilarity(model::ActionId i,
                                          model::ActionId j) const {
  if (i >= neighbors_.size()) return 0.0;
  for (const auto& [neighbor, sim] : neighbors_[i]) {
    if (neighbor == j) return sim;
  }
  return 0.0;
}

core::RecommendationList ItemKnnRecommender::Recommend(
    const model::Activity& activity, size_t k) const {
  core::RecommendationList list;
  if (k == 0 || activity.empty()) return list;
  std::unordered_map<model::ActionId, double> scores;
  for (model::ActionId i : activity) {
    if (i >= neighbors_.size()) continue;
    for (const auto& [j, sim] : neighbors_[i]) {
      if (util::Contains(activity, j)) continue;
      scores[j] += sim;
    }
  }
  util::TopK<core::ScoredAction, core::ByScoreDesc> top_k(k);
  for (const auto& [action, score] : scores) {
    top_k.Push(core::ScoredAction{action, score});
  }
  return top_k.Take();
}

}  // namespace goalrec::baselines
