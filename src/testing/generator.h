#ifndef GOALREC_TESTING_GENERATOR_H_
#define GOALREC_TESTING_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/library.h"
#include "model/types.h"
#include "util/random.h"

// Seeded random library/activity generation for the differential oracle.
// Following the graph-analysis view of recommender evaluation (Mirza et al.,
// "Evaluating Recommendation Algorithms by Graph Analysis"), correctness is
// checked structurally on generated hypergraphs with controlled shape rather
// than only on hand-written fixtures. The shape knobs deliberately cover the
// degenerate structures that hand fixtures tend to miss:
//
//   * empty implementations (p = (g, ∅): legal, inert, must never crash),
//   * singleton implementations (|A| = 1: no co-occurrence, AS(a) = ∅),
//   * activities that fully cover an implementation (H ⊇ A: the complete-
//     implementation skip paths in Focus),
//   * disconnected actions (interned but used by no implementation: the
//     unseen-action guards in the space queries),
//   * power-law action popularity (a few hub actions in most
//     implementations, a long tail in few — the connectivity profile the
//     paper reports for FoodMart/43Things).
//
// Everything is driven by util::Rng, so a (shape, seed) pair identifies a
// case bit-for-bit across runs and platforms — the fuzz driver prints the
// seed, and the oracle tests sweep fixed seed ranges.

namespace goalrec::testing {

/// Shape of a generated library. Defaults give a small, well-connected
/// library with a sprinkle of every degenerate structure.
struct LibraryShape {
  uint32_t num_goals = 8;
  uint32_t num_actions = 30;
  /// Implementations per goal, uniform in [min, max]. A goal with zero
  /// implementations is legal (it simply never appears in any space).
  uint32_t min_impls_per_goal = 1;
  uint32_t max_impls_per_goal = 4;
  /// Actions per (non-degenerate) implementation, uniform in [min, max];
  /// duplicates drawn for one implementation collapse, so the realised size
  /// may be smaller.
  uint32_t min_actions_per_impl = 1;
  uint32_t max_actions_per_impl = 6;
  /// Zipf exponent for action popularity; 0 = uniform. Which actions are
  /// popular is itself randomised per library.
  double zipf_exponent = 0.8;
  /// Probability that an implementation is degenerate-empty.
  double empty_impl_prob = 0.03;
  /// Probability that an implementation is degenerate-singleton.
  double singleton_impl_prob = 0.07;
  /// Fraction of actions interned into the vocabulary but excluded from the
  /// implementation sampling pool (disconnected actions).
  double disconnected_action_fraction = 0.1;
};

/// Shape of a generated user activity relative to a library.
struct ActivityShape {
  /// Activity size, uniform in [min, max] (before dedup; empty is legal).
  uint32_t min_size = 0;
  uint32_t max_size = 8;
  /// Probability that the activity is seeded with the FULL action set of a
  /// random implementation (the H ⊇ A degenerate case), then extended with
  /// random extra actions.
  double superset_prob = 0.15;
};

/// One differential test case: a library, an activity and a recommendation
/// budget. The same struct is what the shrinker minimises and the repro file
/// serialises.
struct OracleCase {
  model::ImplementationLibrary library;
  model::Activity activity;
  size_t k = 10;
};

/// Shape of a full case: library + activity + k range. k is drawn uniformly
/// in [min_k, max_k]; set max_k above num_actions to exercise the unbounded
/// path.
struct CaseShape {
  LibraryShape library;
  ActivityShape activity;
  uint32_t min_k = 1;
  uint32_t max_k = 12;
};

/// Generates a library of the given shape. Draws from `rng`.
model::ImplementationLibrary GenerateLibrary(const LibraryShape& shape,
                                             util::Rng& rng);

/// Generates an activity over `library`'s action vocabulary (including its
/// disconnected actions). Draws from `rng`.
model::Activity GenerateActivity(const model::ImplementationLibrary& library,
                                 const ActivityShape& shape, util::Rng& rng);

/// Generates a complete case from a seed. Equal (shape, seed) pairs produce
/// identical cases.
OracleCase GenerateCase(const CaseShape& shape, uint64_t seed);

/// The shape sweep the oracle tests and the fuzz driver cycle through:
/// tiny/medium libraries, a degenerate-heavy mix, a hub-dominated popularity
/// skew, a sparse barely-connected one, and four kernel-adversarial shapes —
/// vocabulary and |H| sizes straddling the 64-bit-word / SIMD-lane
/// boundaries, an all-actions-popular maximal-connectivity mix, and a
/// singleton-implementation "tie storm" where nearly all scores collide and
/// only the documented tie order distinguishes outputs.
std::vector<CaseShape> DefaultCaseShapes();

}  // namespace goalrec::testing

#endif  // GOALREC_TESTING_GENERATOR_H_
