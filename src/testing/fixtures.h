#ifndef GOALREC_TESTING_FIXTURES_H_
#define GOALREC_TESTING_FIXTURES_H_

#include <cstdint>

#include "model/library.h"
#include "util/random.h"

// Shared fixtures for tests, benchmarks and the differential fuzz tool.
// PaperLibrary() is the clothing-store example of the paper (Example 3.2 /
// Figure 1), reconstructed to satisfy every constraint the text states in
// Example 4.3:
//
//   p1 = (g1, {a1, a2, a3})   g1 = "meeting friends"
//   p2 = (g2, {a1, a4})       g2 = "going to the office"
//   p3 = (g3, {a1, a5})
//   p4 = (g4, {a2, a6})       g4 = "be warm"
//   p5 = (g5, {a1, a6})
//
// so action a1 participates in A1, A2, A3 and A5, its implementation space is
// {p1, p2, p3, p5}, its goal space {g1, g2, g3, g5} and its action space
// {a2, a3, a4, a5, a6} — exactly the values of Example 4.3. Actions are
// interned as "a1".."a6" (ids 0..5) and goals as "g1".."g5" (ids 0..4).
//
// For structured random libraries with tunable shape (skewed popularity,
// degenerate implementations), prefer testing/generator.h; RandomLibrary here
// is the minimal uniform generator the property tests are seeded with.

namespace goalrec::testing {

/// The worked example of the paper; see the file comment.
model::ImplementationLibrary PaperLibrary();

/// Id of "aN" in PaperLibrary(): a1 -> 0, ..., a6 -> 5.
inline model::ActionId A(uint32_t n) { return n - 1; }

/// Id of "gN" in PaperLibrary(): g1 -> 0, ..., g5 -> 4.
inline model::GoalId G(uint32_t n) { return n - 1; }

/// A random library for property tests: `num_impls` implementations over
/// `num_actions` actions and `num_goals` goals, sizes in [1, max_size].
model::ImplementationLibrary RandomLibrary(uint32_t num_actions,
                                           uint32_t num_goals,
                                           uint32_t num_impls,
                                           uint32_t max_size, uint64_t seed);

/// A random sorted activity over [0, num_actions).
model::Activity RandomActivity(uint32_t num_actions, uint32_t size,
                               util::Rng& rng);

}  // namespace goalrec::testing

#endif  // GOALREC_TESTING_FIXTURES_H_
