#ifndef GOALREC_TESTING_REFERENCE_H_
#define GOALREC_TESTING_REFERENCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "model/library.h"
#include "model/types.h"

// Reference oracle: a deliberately naive, loop-and-set transcription of the
// paper's four scoring formulas and space definitions, used by the
// differential tests (tests/oracle/) and the goalrec_fuzz tool to check the
// optimized strategies in src/core/ against an independent implementation.
//
//   completeness(g, A, H) = |A ∩ H| / |A|                      (Eq. 3)
//   closeness(g, A, H)    = 1 / |A − H|                        (Eq. 4)
//   sc(a, H, Breadth)     = Σ_{(g,A): A∩H≠∅, a∈A} |A ∩ H|      (Eq. 6)
//   Best Match            = ascending dist(H⃗, a⃗) over GS(H)    (Eqs. 8–10)
//
// Design rules, intentionally the opposite of src/core/'s:
//   * zero shared code with src/core/ and util/set_ops — sets are std::set,
//     every space is derived by scanning ALL implementations (no inverted
//     indexes), every score is computed independently per action;
//   * written for readability over speed: the asymptotics are terrible and
//     that is fine, the oracle runs on generated cases of bounded size;
//   * deterministic total order everywhere: score descending, then ascending
//     action id (for Focus: the exact emission order of Algorithm 1 —
//     implementations best-first with impl id breaking score ties, missing
//     actions of each in ascending id order).
//
// Arithmetic note: without goal weights every strategy's score is either a
// single IEEE division (Focus) or a sum of small integers (Breadth, Best
// Match vector entries), so the reference reproduces the optimized scores
// bit-for-bit and the differential comparison can demand exact equality.
// The reference covers the paper-default Best Match configuration
// (implementation-count vectors, Euclidean distance) — the configuration
// the differential harness runs the optimized strategy in.

namespace goalrec::testing {

/// One recommendation of the reference oracle. Mirrors core::ScoredAction
/// structurally but is a distinct type so the oracle cannot accidentally
/// share comparison helpers with the code under test.
struct ReferenceItem {
  model::ActionId action = model::kInvalidId;
  double score = 0.0;

  friend bool operator==(const ReferenceItem&, const ReferenceItem&) = default;
};

using ReferenceList = std::vector<ReferenceItem>;

enum class ReferenceFocusVariant {
  kCompleteness,  // Focus_cmp
  kCloseness,     // Focus_cl
};

// --- naive space derivation (Definitions 4.1/4.2) ---------------------------

/// IS(H): every implementation sharing at least one action with `activity`,
/// found by scanning all implementations. Ascending impl id.
std::vector<model::ImplId> ReferenceImplementationSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity);

/// GS(H): goals fulfilled by some implementation of IS(H). Ascending.
std::vector<model::GoalId> ReferenceGoalSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity);

/// AS(H) = ∪_{a∈H} AS(a) with AS(a) = { b ≠ a : some implementation contains
/// both a and b }, transcribed directly from Definition 4.2. Ascending.
std::vector<model::ActionId> ReferenceActionSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity);

/// AS(H) − H: the recommendable candidates. Ascending.
std::vector<model::ActionId> ReferenceCandidates(
    const model::ImplementationLibrary& library,
    const model::Activity& activity);

// --- naive scoring formulas -------------------------------------------------

/// Eq. 3. Zero for an empty implementation activity.
double ReferenceCompleteness(std::span<const model::ActionId> impl_actions,
                             const model::Activity& activity);

/// Eq. 4. Zero when the implementation is already complete (|A − H| = 0),
/// matching the optimized convention that complete implementations are
/// skipped rather than scored as infinite.
double ReferenceCloseness(std::span<const model::ActionId> impl_actions,
                          const model::Activity& activity);

/// Eq. 6, evaluated per action over all implementations.
double ReferenceBreadthScore(const model::ImplementationLibrary& library,
                             model::ActionId action,
                             const model::Activity& activity);

/// Eq. 8 embedding of `action` over the sorted `goal_space`: entry i counts
/// the implementations of goal_space[i] containing the action.
std::vector<double> ReferenceActionGoalVector(
    const model::ImplementationLibrary& library, model::ActionId action,
    const std::vector<model::GoalId>& goal_space);

/// Eq. 9 profile H⃗ = Σ_{a∈H} a⃗ over the sorted `goal_space`.
std::vector<double> ReferenceProfile(
    const model::ImplementationLibrary& library,
    const model::Activity& activity,
    const std::vector<model::GoalId>& goal_space);

// --- full strategies --------------------------------------------------------

/// Algorithm 1 (Focus): rank IS(H) implementations with at least one missing
/// action by the variant's score, emit missing actions best-implementation
/// first. Up to `k` items.
ReferenceList ReferenceFocus(const model::ImplementationLibrary& library,
                             ReferenceFocusVariant variant,
                             const model::Activity& activity, size_t k);

/// Eq. 6 ranking: every non-performed action with positive Breadth score,
/// score descending, action id ascending. Up to `k` items.
ReferenceList ReferenceBreadth(const model::ImplementationLibrary& library,
                               const model::Activity& activity, size_t k);

/// Algorithms 3–4 (Best Match, paper defaults): candidates ranked by
/// ascending Euclidean distance between implementation-count goal vectors;
/// score is the negated distance. Up to `k` items.
ReferenceList ReferenceBestMatch(const model::ImplementationLibrary& library,
                                 const model::Activity& activity, size_t k);

}  // namespace goalrec::testing

#endif  // GOALREC_TESTING_REFERENCE_H_
