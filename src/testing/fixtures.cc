#include "testing/fixtures.h"

#include <string>
#include <utility>

#include "util/set_ops.h"

namespace goalrec::testing {

model::ImplementationLibrary PaperLibrary() {
  model::LibraryBuilder builder;
  builder.AddImplementation("g1", {"a1", "a2", "a3"});
  builder.AddImplementation("g2", {"a1", "a4"});
  builder.AddImplementation("g3", {"a1", "a5"});
  builder.AddImplementation("g4", {"a2", "a6"});
  builder.AddImplementation("g5", {"a1", "a6"});
  return std::move(builder).Build();
}

model::ImplementationLibrary RandomLibrary(uint32_t num_actions,
                                           uint32_t num_goals,
                                           uint32_t num_impls,
                                           uint32_t max_size, uint64_t seed) {
  util::Rng rng(seed);
  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < num_actions; ++a) {
    builder.InternAction("act" + std::to_string(a));
  }
  for (uint32_t g = 0; g < num_goals; ++g) {
    builder.InternGoal("goal" + std::to_string(g));
  }
  for (uint32_t p = 0; p < num_impls; ++p) {
    uint32_t size = 1 + rng.UniformUint32(max_size);
    model::IdSet actions;
    for (uint32_t i = 0; i < size; ++i) {
      actions.push_back(rng.UniformUint32(num_actions));
    }
    builder.AddImplementationIds(rng.UniformUint32(num_goals),
                                 std::move(actions));
  }
  return std::move(builder).Build();
}

model::Activity RandomActivity(uint32_t num_actions, uint32_t size,
                               util::Rng& rng) {
  model::Activity activity;
  for (uint32_t i = 0; i < size; ++i) {
    activity.push_back(rng.UniformUint32(num_actions));
  }
  util::Normalize(activity);
  return activity;
}

}  // namespace goalrec::testing
