#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_workspace.h"

namespace goalrec::testing {
namespace {

bool ScoresEqual(double a, double b, double tolerance) {
  if (tolerance == 0.0) return a == b;
  return std::abs(a - b) <= tolerance;
}

std::string RenderItem(model::ActionId action, double score) {
  std::ostringstream out;
  out.precision(17);
  out << "(action " << action << ", score " << score << ")";
  return out.str();
}

// The run of indices [i, j) sharing optimized[i]'s score (reference scores
// are positionally equal by the time runs are compared).
size_t ScoreRunEnd(const core::RecommendationList& list, size_t i) {
  size_t j = i + 1;
  while (j < list.size() && list[j].score == list[i].score) ++j;
  return j;
}

}  // namespace

std::vector<OracleStrategy> AllOracleStrategies() {
  return {OracleStrategy::kFocusCompleteness, OracleStrategy::kFocusCloseness,
          OracleStrategy::kBreadth, OracleStrategy::kBestMatch};
}

const char* OracleStrategyName(OracleStrategy strategy) {
  switch (strategy) {
    case OracleStrategy::kFocusCompleteness:
      return "Focus_cmp";
    case OracleStrategy::kFocusCloseness:
      return "Focus_cl";
    case OracleStrategy::kBreadth:
      return "Breadth";
    case OracleStrategy::kBestMatch:
      return "BestMatch";
  }
  return "unknown";
}

std::optional<OracleStrategy> OracleStrategyFromName(std::string_view name) {
  for (OracleStrategy s : AllOracleStrategies()) {
    if (name == OracleStrategyName(s)) return s;
  }
  return std::nullopt;
}

DiffOutcome CompareLists(const core::RecommendationList& optimized,
                         const ReferenceList& reference,
                         const DiffOptions& options) {
  DiffOutcome outcome;
  if (optimized.size() != reference.size()) {
    std::ostringstream out;
    out << "length mismatch: optimized " << optimized.size() << " items, "
        << "reference " << reference.size();
    return DiffOutcome{false, out.str()};
  }
  // Scores must agree position by position in both modes: the ranked score
  // sequence is part of the contract.
  for (size_t i = 0; i < optimized.size(); ++i) {
    if (!ScoresEqual(optimized[i].score, reference[i].score,
                     options.score_tolerance)) {
      std::ostringstream out;
      out << "score mismatch at rank " << i << ": optimized "
          << RenderItem(optimized[i].action, optimized[i].score)
          << " vs reference "
          << RenderItem(reference[i].action, reference[i].score);
      return DiffOutcome{false, out.str()};
    }
  }
  if (options.strict_order) {
    for (size_t i = 0; i < optimized.size(); ++i) {
      if (optimized[i].action != reference[i].action) {
        std::ostringstream out;
        out << "action mismatch at rank " << i << ": optimized "
            << RenderItem(optimized[i].action, optimized[i].score)
            << " vs reference "
            << RenderItem(reference[i].action, reference[i].score);
        return DiffOutcome{false, out.str()};
      }
    }
    return outcome;
  }
  // Tie-break-aware: within each run of equal scores the two sides must
  // recommend the same *set* of actions; order inside the run is free.
  size_t i = 0;
  while (i < optimized.size()) {
    size_t j = ScoreRunEnd(optimized, i);
    std::vector<model::ActionId> got, want;
    for (size_t r = i; r < j; ++r) {
      got.push_back(optimized[r].action);
      want.push_back(reference[r].action);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      std::ostringstream out;
      out << "tie-group mismatch at ranks [" << i << ", " << j
          << ") with score " << optimized[i].score << ": optimized {";
      for (model::ActionId a : got) out << " " << a;
      out << " } vs reference {";
      for (model::ActionId a : want) out << " " << a;
      out << " }";
      return DiffOutcome{false, out.str()};
    }
    i = j;
  }
  return outcome;
}

core::RecommendationList RunOptimized(
    const model::ImplementationLibrary& library, OracleStrategy strategy,
    const model::Activity& activity, size_t k) {
  switch (strategy) {
    case OracleStrategy::kFocusCompleteness:
      return core::FocusRecommender(&library, core::FocusVariant::kCompleteness)
          .Recommend(activity, k);
    case OracleStrategy::kFocusCloseness:
      return core::FocusRecommender(&library, core::FocusVariant::kCloseness)
          .Recommend(activity, k);
    case OracleStrategy::kBreadth:
      return core::BreadthRecommender(&library).Recommend(activity, k);
    case OracleStrategy::kBestMatch:
      return core::BestMatchRecommender(&library).Recommend(activity, k);
  }
  return {};
}

core::RecommendationList RunOptimizedPooled(
    const model::ImplementationLibrary& library, OracleStrategy strategy,
    const model::Activity& activity, size_t k,
    core::QueryWorkspace& workspace) {
  core::RecommendationList out;
  switch (strategy) {
    case OracleStrategy::kFocusCompleteness:
      core::FocusRecommender(&library, core::FocusVariant::kCompleteness)
          .RecommendPooled(activity, k, nullptr, &workspace, out);
      break;
    case OracleStrategy::kFocusCloseness:
      core::FocusRecommender(&library, core::FocusVariant::kCloseness)
          .RecommendPooled(activity, k, nullptr, &workspace, out);
      break;
    case OracleStrategy::kBreadth:
      core::BreadthRecommender(&library).RecommendPooled(activity, k, nullptr,
                                                         &workspace, out);
      break;
    case OracleStrategy::kBestMatch:
      core::BestMatchRecommender(&library).RecommendPooled(activity, k,
                                                           nullptr, &workspace,
                                                           out);
      break;
  }
  return out;
}

ReferenceList RunReference(const model::ImplementationLibrary& library,
                           OracleStrategy strategy,
                           const model::Activity& activity, size_t k) {
  switch (strategy) {
    case OracleStrategy::kFocusCompleteness:
      return ReferenceFocus(library, ReferenceFocusVariant::kCompleteness,
                            activity, k);
    case OracleStrategy::kFocusCloseness:
      return ReferenceFocus(library, ReferenceFocusVariant::kCloseness,
                            activity, k);
    case OracleStrategy::kBreadth:
      return ReferenceBreadth(library, activity, k);
    case OracleStrategy::kBestMatch:
      return ReferenceBestMatch(library, activity, k);
  }
  return {};
}

DiffOutcome DiffStrategy(const model::ImplementationLibrary& library,
                         OracleStrategy strategy,
                         const model::Activity& activity, size_t k,
                         const DiffOptions& options) {
  DiffOutcome outcome =
      CompareLists(RunOptimized(library, strategy, activity, k),
                   RunReference(library, strategy, activity, k), options);
  if (!outcome.match) {
    outcome.detail = std::string(OracleStrategyName(strategy)) + ": " +
                     outcome.detail;
  }
  return outcome;
}

}  // namespace goalrec::testing
