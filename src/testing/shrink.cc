#include "testing/shrink.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "model/library.h"
#include "util/set_ops.h"
#include "util/string_utils.h"

namespace goalrec::testing {
namespace {

constexpr char kTextHeader[] = "# goalrec-library v1";

// Rebuilds a library containing `impls` over the FULL vocabulary of `base`,
// so action/goal ids stay stable while implementations come and go.
model::ImplementationLibrary RebuildWithImpls(
    const model::ImplementationLibrary& base,
    const std::vector<model::Implementation>& impls) {
  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < base.num_actions(); ++a) {
    builder.InternAction(base.actions().Name(a));
  }
  for (uint32_t g = 0; g < base.num_goals(); ++g) {
    builder.InternGoal(base.goals().Name(g));
  }
  for (const model::Implementation& impl : impls) {
    builder.AddImplementationIds(impl.goal, impl.actions);
  }
  return std::move(builder).Build();
}

std::optional<uint64_t> ParseUint(std::string_view text) {
  uint64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::vector<std::string> SplitNames(std::string_view csv) {
  std::vector<std::string> names;
  for (const std::string& part : util::Split(csv, ',')) {
    std::string trimmed(util::Trim(part));
    if (!trimmed.empty()) names.push_back(trimmed);
  }
  return names;
}

}  // namespace

OracleCase ShrinkFailure(const OracleCase& failing,
                         const FailurePredicate& still_fails,
                         ShrinkStats* stats) {
  std::vector<model::Implementation> impls;
  impls.reserve(failing.library.num_implementations());
  for (model::ImplId p = 0; p < failing.library.num_implementations(); ++p) {
    model::ImplementationView view = failing.library.implementation(p);
    impls.push_back(model::Implementation{
        view.goal, model::IdSet(view.actions.begin(), view.actions.end())});
  }
  model::Activity activity = failing.activity;

  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  s.impls_before = static_cast<uint32_t>(impls.size());
  s.activity_before = activity.size();

  model::ImplementationLibrary current =
      RebuildWithImpls(failing.library, impls);
  auto fails = [&](const std::vector<model::Implementation>& candidate_impls,
                   const model::Activity& candidate_activity,
                   model::ImplementationLibrary* built) {
    model::ImplementationLibrary lib =
        RebuildWithImpls(failing.library, candidate_impls);
    ++s.predicate_calls;
    bool failed =
        still_fails(OracleCase{lib, candidate_activity, failing.k});
    if (failed && built != nullptr) *built = std::move(lib);
    return failed;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    ++s.passes;
    // 1. Drop whole goals (all implementations of one goal at once) — the
    // coarsest edit, so big irrelevant chunks disappear early.
    std::set<model::GoalId> goals;
    for (const model::Implementation& impl : impls) goals.insert(impl.goal);
    for (model::GoalId g : goals) {
      std::vector<model::Implementation> candidate;
      for (const model::Implementation& impl : impls) {
        if (impl.goal != g) candidate.push_back(impl);
      }
      if (candidate.size() == impls.size()) continue;
      if (fails(candidate, activity, &current)) {
        impls = std::move(candidate);
        progress = true;
      }
    }
    // 2. Drop single implementations, last first so indices stay valid.
    for (size_t i = impls.size(); i-- > 0;) {
      std::vector<model::Implementation> candidate = impls;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (fails(candidate, activity, &current)) {
        impls = std::move(candidate);
        progress = true;
      }
    }
    // 3. Drop actions from H (the library is unchanged here).
    for (size_t i = activity.size(); i-- > 0;) {
      model::Activity candidate = activity;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      ++s.predicate_calls;
      if (still_fails(OracleCase{current, candidate, failing.k})) {
        activity = std::move(candidate);
        progress = true;
      }
    }
  }

  s.impls_after = static_cast<uint32_t>(impls.size());
  s.activity_after = activity.size();
  return OracleCase{std::move(current), std::move(activity), failing.k};
}

util::Status WriteRepro(const OracleCase& c, const std::string& strategy_name,
                        uint64_t seed, const std::string& path) {
  const model::ImplementationLibrary& lib = c.library;
  // Only what the case references, in ascending original id order: a
  // monotone relabel on reload, which preserves scores and tie-breaks.
  std::set<model::ActionId> used_actions(c.activity.begin(),
                                         c.activity.end());
  std::set<model::GoalId> used_goals;
  for (model::ImplId p = 0; p < lib.num_implementations(); ++p) {
    used_goals.insert(lib.GoalOf(p));
    for (model::ActionId a : lib.ActionsOf(p)) used_actions.insert(a);
  }
  std::vector<std::string> action_names, goal_names, activity_names;
  for (model::ActionId a : used_actions) {
    action_names.push_back(lib.actions().Name(a));
  }
  for (model::GoalId g : used_goals) goal_names.push_back(lib.goals().Name(g));
  for (model::ActionId a : c.activity) {
    activity_names.push_back(lib.actions().Name(a));
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << kTextHeader << "\n";
  out << "# goalrec-fuzz repro; replay: " << ReproCommandLine(path) << "\n";
  out << "#!strategy: " << strategy_name << "\n";
  out << "#!k: " << c.k << "\n";
  out << "#!seed: " << seed << "\n";
  out << "#!actions: " << util::Join(action_names, ",") << "\n";
  out << "#!goals: " << util::Join(goal_names, ",") << "\n";
  out << "#!activity: " << util::Join(activity_names, ",") << "\n";
  for (model::ImplId p = 0; p < lib.num_implementations(); ++p) {
    out << lib.goals().Name(lib.GoalOf(p));
    for (model::ActionId a : lib.ActionsOf(p)) {
      out << "\t" << lib.actions().Name(a);
    }
    out << "\n";
  }
  out.flush();
  if (!out) return util::IoError("write to " + path + " failed");
  return util::Status::Ok();
}

util::StatusOr<ReproCase> LoadRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || util::Trim(line) != kTextHeader) {
    return util::InvalidArgumentError(path + ": missing '" +
                                      std::string(kTextHeader) + "' header");
  }

  ReproCase repro;
  model::LibraryBuilder builder;
  std::vector<std::string> activity_names;
  auto directive = [&line](std::string_view key) -> std::optional<std::string> {
    std::string prefix = "#!" + std::string(key) + ":";
    if (!util::StartsWith(line, prefix)) return std::nullopt;
    return std::string(util::Trim(line.substr(prefix.size())));
  };
  while (std::getline(in, line)) {
    if (util::Trim(line).empty()) continue;
    if (line[0] == '#') {
      if (auto v = directive("strategy")) {
        repro.strategy = *v;
      } else if (auto v = directive("k")) {
        std::optional<uint64_t> k = ParseUint(*v);
        if (!k) {
          return util::InvalidArgumentError(path + ": bad #!k: " + *v);
        }
        repro.oracle_case.k = static_cast<size_t>(*k);
      } else if (auto v = directive("seed")) {
        std::optional<uint64_t> seed = ParseUint(*v);
        if (!seed) {
          return util::InvalidArgumentError(path + ": bad #!seed: " + *v);
        }
        repro.seed = *seed;
      } else if (auto v = directive("actions")) {
        for (const std::string& name : SplitNames(*v)) {
          builder.InternAction(name);
        }
      } else if (auto v = directive("goals")) {
        for (const std::string& name : SplitNames(*v)) {
          builder.InternGoal(name);
        }
      } else if (auto v = directive("activity")) {
        activity_names = SplitNames(*v);
      }
      continue;  // plain comments are ignored
    }
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.empty() || util::Trim(fields[0]).empty()) {
      return util::InvalidArgumentError(path + ": malformed line '" + line +
                                        "'");
    }
    std::string goal(util::Trim(fields[0]));
    std::vector<std::string> actions;
    for (size_t i = 1; i < fields.size(); ++i) {
      std::string name(util::Trim(fields[i]));
      if (!name.empty()) actions.push_back(name);
    }
    builder.AddImplementation(goal, actions);
  }

  model::Activity activity;
  // Resolve activity names through a second interning pass: the builder has
  // already seen every directive name, so these interns are lookups.
  for (const std::string& name : activity_names) {
    activity.push_back(builder.InternAction(name));
  }
  util::Normalize(activity);
  repro.oracle_case.library = std::move(builder).Build();
  repro.oracle_case.activity = std::move(activity);
  return repro;
}

std::string ReproCommandLine(const std::string& path) {
  return "goalrec_fuzz --replay=" + path;
}

std::string DescribeRepro(const ReproCase& repro) {
  std::string out =
      repro.strategy.empty() ? "all strategies" : repro.strategy;
  out += ": " +
         std::to_string(repro.oracle_case.library.num_implementations()) +
         " implementations, |H| = " +
         std::to_string(repro.oracle_case.activity.size()) +
         ", k = " + std::to_string(repro.oracle_case.k) + ", seed " +
         std::to_string(repro.seed);
  return out;
}

}  // namespace goalrec::testing
