#ifndef GOALREC_TESTING_DIFFERENTIAL_H_
#define GOALREC_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/recommender.h"
#include "model/library.h"
#include "model/types.h"
#include "testing/reference.h"

// Differential harness: runs an optimized src/core/ strategy and its naive
// reference (testing/reference.h) on the same case and compares the ranked
// lists. Used by tests/oracle/ and the goalrec_fuzz driver; every hot-path
// PR (batching, caching, sharded scoring) runs against this harness.
//
// Comparison semantics. Both sides promise a deterministic total order
// (score descending, ties by ascending action id — for Focus, by the
// Algorithm 1 emission order), and without goal weights their arithmetic is
// bit-identical (see reference.h), so the default comparison demands exact
// positional equality of (action, score) pairs. The tie-break-aware mode
// relaxes only the order *within* runs of equal scores — the relaxation to
// use when a refactor legitimately reorders tied actions (the contract pins
// scores, membership and score runs, not intra-tie order).

namespace goalrec::testing {

/// The four paper strategies under differential test.
enum class OracleStrategy {
  kFocusCompleteness,  // Focus_cmp
  kFocusCloseness,     // Focus_cl
  kBreadth,
  kBestMatch,
};

/// All four, in a stable order.
std::vector<OracleStrategy> AllOracleStrategies();

/// Stable display/CLI name: "Focus_cmp", "Focus_cl", "Breadth", "BestMatch".
const char* OracleStrategyName(OracleStrategy strategy);

/// Inverse of OracleStrategyName; nullopt for unknown names.
std::optional<OracleStrategy> OracleStrategyFromName(std::string_view name);

struct DiffOptions {
  /// When true, runs of equal scores must match element-for-element; when
  /// false (default) tied actions may appear in any order within their run.
  bool strict_order = false;
  /// Absolute score tolerance. 0 (default) demands bitwise-equal scores,
  /// which the goal-weight-free strategies satisfy by construction.
  double score_tolerance = 0.0;
};

/// Outcome of one comparison. `detail` is a human-readable description of
/// the first divergence (empty on match).
struct DiffOutcome {
  bool match = true;
  std::string detail;
};

/// Compares an optimized list against the reference list.
DiffOutcome CompareLists(const core::RecommendationList& optimized,
                         const ReferenceList& reference,
                         const DiffOptions& options = {});

/// Runs the optimized src/core/ strategy (paper-default configuration, no
/// goal weights).
core::RecommendationList RunOptimized(
    const model::ImplementationLibrary& library, OracleStrategy strategy,
    const model::Activity& activity, size_t k);

/// Runs the optimized strategy through the pooled-workspace serving path
/// (RecommendPooled over a caller-owned, reused QueryWorkspace) — the
/// zero-allocation route a ServingEngine query takes. Must be bit-identical
/// to RunOptimized; tests/oracle/snapshot_test.cc holds it to that.
core::RecommendationList RunOptimizedPooled(
    const model::ImplementationLibrary& library, OracleStrategy strategy,
    const model::Activity& activity, size_t k, core::QueryWorkspace& workspace);

/// Runs the naive reference for the same configuration.
ReferenceList RunReference(const model::ImplementationLibrary& library,
                           OracleStrategy strategy,
                           const model::Activity& activity, size_t k);

/// Optimized-vs-reference on one case; the workhorse of the oracle tests,
/// the fuzz loop and the shrinker's failure predicate.
DiffOutcome DiffStrategy(const model::ImplementationLibrary& library,
                         OracleStrategy strategy,
                         const model::Activity& activity, size_t k,
                         const DiffOptions& options = {});

}  // namespace goalrec::testing

#endif  // GOALREC_TESTING_DIFFERENTIAL_H_
