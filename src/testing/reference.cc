#include "testing/reference.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <span>

namespace goalrec::testing {
namespace {

// The oracle's only set machinery: std::set and membership tests. Nothing
// here touches util/set_ops, so a bug in the optimized sorted-vector
// primitives cannot hide in the oracle too.

std::set<model::ActionId> ToSet(std::span<const model::ActionId> ids) {
  return std::set<model::ActionId>(ids.begin(), ids.end());
}

bool InSet(const std::set<model::ActionId>& s, model::ActionId a) {
  return s.count(a) != 0;
}

size_t CommonCount(std::span<const model::ActionId> impl_actions,
                   const std::set<model::ActionId>& activity) {
  size_t common = 0;
  for (model::ActionId a : impl_actions) {
    if (InSet(activity, a)) ++common;
  }
  return common;
}

// Missing actions A − H of one implementation, ascending (impl activities
// are stored sorted, and std::set iteration preserves order anyway).
std::vector<model::ActionId> MissingActions(
    std::span<const model::ActionId> impl_actions,
    const std::set<model::ActionId>& activity) {
  std::vector<model::ActionId> missing;
  for (model::ActionId a : impl_actions) {
    if (!InSet(activity, a)) missing.push_back(a);
  }
  return missing;
}

// Shared final ordering for the per-action strategies: score descending,
// action id ascending on ties, truncated to k.
ReferenceList SortAndTruncate(ReferenceList list, size_t k) {
  std::sort(list.begin(), list.end(),
            [](const ReferenceItem& a, const ReferenceItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.action < b.action;
            });
  if (list.size() > k) list.resize(k);
  return list;
}

}  // namespace

std::vector<model::ImplId> ReferenceImplementationSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity) {
  std::set<model::ActionId> h = ToSet(activity);
  std::vector<model::ImplId> space;
  for (model::ImplId p = 0; p < library.num_implementations(); ++p) {
    if (CommonCount(library.ActionsOf(p), h) > 0) space.push_back(p);
  }
  return space;
}

std::vector<model::GoalId> ReferenceGoalSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity) {
  std::set<model::GoalId> goals;
  for (model::ImplId p : ReferenceImplementationSpace(library, activity)) {
    goals.insert(library.GoalOf(p));
  }
  return std::vector<model::GoalId>(goals.begin(), goals.end());
}

std::vector<model::ActionId> ReferenceActionSpace(
    const model::ImplementationLibrary& library,
    const model::Activity& activity) {
  // Definition 4.2, word for word: for every performed action a, every
  // implementation containing a contributes its *other* actions to AS(a);
  // AS(H) is the union over a ∈ H.
  std::set<model::ActionId> space;
  for (model::ActionId a : activity) {
    for (model::ImplId p = 0; p < library.num_implementations(); ++p) {
      std::span<const model::ActionId> impl_actions = library.ActionsOf(p);
      bool contains_a = false;
      for (model::ActionId b : impl_actions) {
        if (b == a) contains_a = true;
      }
      if (!contains_a) continue;
      for (model::ActionId b : impl_actions) {
        if (b != a) space.insert(b);
      }
    }
  }
  return std::vector<model::ActionId>(space.begin(), space.end());
}

std::vector<model::ActionId> ReferenceCandidates(
    const model::ImplementationLibrary& library,
    const model::Activity& activity) {
  std::set<model::ActionId> h = ToSet(activity);
  std::vector<model::ActionId> candidates;
  for (model::ActionId a : ReferenceActionSpace(library, activity)) {
    if (!InSet(h, a)) candidates.push_back(a);
  }
  return candidates;
}

double ReferenceCompleteness(std::span<const model::ActionId> impl_actions,
                             const model::Activity& activity) {
  if (impl_actions.empty()) return 0.0;
  size_t common = CommonCount(impl_actions, ToSet(activity));
  return static_cast<double>(common) /
         static_cast<double>(impl_actions.size());
}

double ReferenceCloseness(std::span<const model::ActionId> impl_actions,
                          const model::Activity& activity) {
  size_t remaining = MissingActions(impl_actions, ToSet(activity)).size();
  if (remaining == 0) return 0.0;
  return 1.0 / static_cast<double>(remaining);
}

double ReferenceBreadthScore(const model::ImplementationLibrary& library,
                             model::ActionId action,
                             const model::Activity& activity) {
  std::set<model::ActionId> h = ToSet(activity);
  double score = 0.0;
  for (model::ImplId p = 0; p < library.num_implementations(); ++p) {
    std::span<const model::ActionId> impl_actions = library.ActionsOf(p);
    bool contains_action = false;
    for (model::ActionId b : impl_actions) {
      if (b == action) contains_action = true;
    }
    if (!contains_action) continue;
    score += static_cast<double>(CommonCount(impl_actions, h));
  }
  return score;
}

std::vector<double> ReferenceActionGoalVector(
    const model::ImplementationLibrary& library, model::ActionId action,
    const std::vector<model::GoalId>& goal_space) {
  std::vector<double> vec(goal_space.size(), 0.0);
  for (size_t i = 0; i < goal_space.size(); ++i) {
    for (model::ImplId p = 0; p < library.num_implementations(); ++p) {
      if (library.GoalOf(p) != goal_space[i]) continue;
      for (model::ActionId b : library.ActionsOf(p)) {
        if (b == action) vec[i] += 1.0;
      }
    }
  }
  return vec;
}

std::vector<double> ReferenceProfile(
    const model::ImplementationLibrary& library,
    const model::Activity& activity,
    const std::vector<model::GoalId>& goal_space) {
  std::vector<double> profile(goal_space.size(), 0.0);
  for (model::ActionId a : activity) {
    std::vector<double> vec = ReferenceActionGoalVector(library, a, goal_space);
    for (size_t i = 0; i < profile.size(); ++i) profile[i] += vec[i];
  }
  return profile;
}

ReferenceList ReferenceFocus(const model::ImplementationLibrary& library,
                             ReferenceFocusVariant variant,
                             const model::Activity& activity, size_t k) {
  if (k == 0) return {};
  struct RankedImpl {
    model::ImplId impl;
    double score;
  };
  std::set<model::ActionId> h = ToSet(activity);
  std::vector<RankedImpl> ranked;
  for (model::ImplId p : ReferenceImplementationSpace(library, activity)) {
    std::span<const model::ActionId> impl_actions = library.ActionsOf(p);
    if (MissingActions(impl_actions, h).empty()) continue;  // complete
    double score = variant == ReferenceFocusVariant::kCompleteness
                       ? ReferenceCompleteness(impl_actions, activity)
                       : ReferenceCloseness(impl_actions, activity);
    ranked.push_back(RankedImpl{p, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedImpl& a, const RankedImpl& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.impl < b.impl;
            });
  ReferenceList list;
  std::set<model::ActionId> emitted;
  for (const RankedImpl& entry : ranked) {
    for (model::ActionId a :
         MissingActions(library.ActionsOf(entry.impl), h)) {
      if (InSet(emitted, a)) continue;
      emitted.insert(a);
      list.push_back(ReferenceItem{a, entry.score});
      if (list.size() == k) return list;
    }
  }
  return list;
}

ReferenceList ReferenceBreadth(const model::ImplementationLibrary& library,
                               const model::Activity& activity, size_t k) {
  if (k == 0) return {};
  std::set<model::ActionId> h = ToSet(activity);
  ReferenceList list;
  for (model::ActionId a = 0; a < library.num_actions(); ++a) {
    if (InSet(h, a)) continue;  // already performed
    double score = ReferenceBreadthScore(library, a, activity);
    if (score > 0.0) list.push_back(ReferenceItem{a, score});
  }
  return SortAndTruncate(std::move(list), k);
}

ReferenceList ReferenceBestMatch(const model::ImplementationLibrary& library,
                                 const model::Activity& activity, size_t k) {
  if (k == 0) return {};
  std::vector<model::GoalId> goal_space = ReferenceGoalSpace(library, activity);
  if (goal_space.empty()) return {};
  std::vector<double> profile = ReferenceProfile(library, activity, goal_space);
  ReferenceList list;
  for (model::ActionId a : ReferenceCandidates(library, activity)) {
    std::vector<double> vec = ReferenceActionGoalVector(library, a, goal_space);
    double sum_of_squares = 0.0;
    for (size_t i = 0; i < profile.size(); ++i) {
      double diff = profile[i] - vec[i];
      sum_of_squares += diff * diff;
    }
    double distance = std::sqrt(sum_of_squares);
    // Negated so the shared "higher score wins" ordering applies.
    list.push_back(ReferenceItem{a, -distance});
  }
  return SortAndTruncate(std::move(list), k);
}

}  // namespace goalrec::testing
