#include "testing/generator.h"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::testing {
namespace {

// Draws one action id from the connected pool via the (permuted) popularity
// ranking.
model::ActionId DrawAction(const std::vector<model::ActionId>& by_popularity,
                           const util::ZipfSampler& zipf, util::Rng& rng) {
  return by_popularity[zipf.Sample(rng)];
}

}  // namespace

model::ImplementationLibrary GenerateLibrary(const LibraryShape& shape,
                                             util::Rng& rng) {
  GOALREC_CHECK_GT(shape.num_actions, 0u);
  GOALREC_CHECK_GT(shape.num_goals, 0u);
  GOALREC_CHECK_LE(shape.min_impls_per_goal, shape.max_impls_per_goal);
  GOALREC_CHECK_LE(shape.min_actions_per_impl, shape.max_actions_per_impl);

  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < shape.num_actions; ++a) {
    builder.InternAction("act" + std::to_string(a));
  }
  for (uint32_t g = 0; g < shape.num_goals; ++g) {
    builder.InternGoal("goal" + std::to_string(g));
  }

  // Popularity: a random permutation of the connected pool, ranked by a Zipf
  // law — rank 0 (the hub) lands on a random action, not always id 0.
  uint32_t disconnected = static_cast<uint32_t>(
      static_cast<double>(shape.num_actions) *
      shape.disconnected_action_fraction);
  uint32_t pool = shape.num_actions - std::min(disconnected,
                                               shape.num_actions - 1);
  std::vector<model::ActionId> by_popularity(shape.num_actions);
  for (uint32_t a = 0; a < shape.num_actions; ++a) by_popularity[a] = a;
  rng.Shuffle(by_popularity);
  by_popularity.resize(pool);  // the rest stay disconnected
  util::ZipfSampler zipf(pool, std::max(0.0, shape.zipf_exponent));

  for (model::GoalId g = 0; g < shape.num_goals; ++g) {
    uint32_t impls = static_cast<uint32_t>(
        rng.UniformInt(shape.min_impls_per_goal, shape.max_impls_per_goal));
    for (uint32_t i = 0; i < impls; ++i) {
      double degenerate = rng.UniformDouble();
      uint32_t size;
      if (degenerate < shape.empty_impl_prob) {
        size = 0;
      } else if (degenerate < shape.empty_impl_prob +
                                  shape.singleton_impl_prob) {
        size = 1;
      } else {
        size = static_cast<uint32_t>(rng.UniformInt(
            shape.min_actions_per_impl, shape.max_actions_per_impl));
      }
      model::IdSet actions;
      for (uint32_t j = 0; j < size; ++j) {
        actions.push_back(DrawAction(by_popularity, zipf, rng));
      }
      builder.AddImplementationIds(g, std::move(actions));
    }
  }
  return std::move(builder).Build();
}

model::Activity GenerateActivity(const model::ImplementationLibrary& library,
                                 const ActivityShape& shape, util::Rng& rng) {
  GOALREC_CHECK_LE(shape.min_size, shape.max_size);
  model::Activity activity;
  if (library.num_implementations() > 0 &&
      rng.Bernoulli(shape.superset_prob)) {
    // H ⊇ A: start from a full implementation activity (possibly empty) and
    // extend with a few extra actions.
    model::ImplId p = rng.UniformUint32(library.num_implementations());
    std::span<const model::ActionId> base = library.ActionsOf(p);
    activity.assign(base.begin(), base.end());
    uint32_t extra = rng.UniformUint32(4);
    for (uint32_t i = 0; i < extra; ++i) {
      activity.push_back(rng.UniformUint32(library.num_actions()));
    }
  } else {
    uint32_t size =
        static_cast<uint32_t>(rng.UniformInt(shape.min_size, shape.max_size));
    for (uint32_t i = 0; i < size; ++i) {
      // Uniform over the whole vocabulary, disconnected actions included.
      activity.push_back(rng.UniformUint32(library.num_actions()));
    }
  }
  util::Normalize(activity);
  return activity;
}

OracleCase GenerateCase(const CaseShape& shape, uint64_t seed) {
  GOALREC_CHECK_LE(shape.min_k, shape.max_k);
  util::Rng rng(seed, /*stream=*/7);
  OracleCase c;
  c.library = GenerateLibrary(shape.library, rng);
  c.activity = GenerateActivity(c.library, shape.activity, rng);
  c.k = static_cast<size_t>(rng.UniformInt(shape.min_k, shape.max_k));
  return c;
}

std::vector<CaseShape> DefaultCaseShapes() {
  std::vector<CaseShape> shapes;

  CaseShape tiny;
  tiny.library.num_goals = 3;
  tiny.library.num_actions = 8;
  tiny.library.max_impls_per_goal = 3;
  tiny.library.max_actions_per_impl = 4;
  tiny.library.zipf_exponent = 0.0;
  tiny.library.disconnected_action_fraction = 0.0;
  tiny.activity.max_size = 5;
  tiny.max_k = 10;  // > num_actions: exercises the unbounded path
  shapes.push_back(tiny);

  CaseShape medium;  // the LibraryShape defaults
  shapes.push_back(medium);

  CaseShape degenerate;
  degenerate.library.num_goals = 6;
  degenerate.library.num_actions = 20;
  degenerate.library.empty_impl_prob = 0.2;
  degenerate.library.singleton_impl_prob = 0.3;
  degenerate.library.disconnected_action_fraction = 0.3;
  degenerate.activity.superset_prob = 0.4;
  degenerate.activity.min_size = 0;
  degenerate.activity.max_size = 10;
  shapes.push_back(degenerate);

  CaseShape hubby;
  hubby.library.num_goals = 10;
  hubby.library.num_actions = 40;
  hubby.library.max_impls_per_goal = 6;
  hubby.library.max_actions_per_impl = 8;
  hubby.library.zipf_exponent = 1.6;  // a few hub actions dominate
  hubby.activity.max_size = 12;
  shapes.push_back(hubby);

  CaseShape sparse;
  sparse.library.num_goals = 12;
  sparse.library.num_actions = 48;
  sparse.library.min_impls_per_goal = 1;
  sparse.library.max_impls_per_goal = 2;
  sparse.library.min_actions_per_impl = 1;
  sparse.library.max_actions_per_impl = 3;
  sparse.library.zipf_exponent = 0.2;
  sparse.library.disconnected_action_fraction = 0.2;
  sparse.activity.max_size = 6;
  shapes.push_back(sparse);

  // --- Kernel-adversarial shapes. The flat-array scoring kernels reset
  // their dense marker/counter arrays per vocabulary size and walk postings
  // in word-sized strides; these shapes park |vocab| and |H| exactly on and
  // around the 64-element word boundary (63/64/65) and the 128-lane
  // boundary, where off-by-one epoch grounding or tail handling would bite.

  CaseShape word_boundary;
  word_boundary.library.num_goals = 16;
  word_boundary.library.num_actions = 64;  // exactly one 64-bit word
  word_boundary.library.max_impls_per_goal = 4;
  word_boundary.library.min_actions_per_impl = 1;
  word_boundary.library.max_actions_per_impl = 9;
  word_boundary.library.zipf_exponent = 0.5;
  word_boundary.library.disconnected_action_fraction = 0.0;
  // Coupon-collector sizing: ~180–300 uniform draws over 64 actions dedup to
  // |H| ≈ 60..64, so realised sizes straddle 63/64 (including H = the whole
  // vocabulary — every candidate pool empty).
  word_boundary.activity.min_size = 180;
  word_boundary.activity.max_size = 300;
  word_boundary.activity.superset_prob = 0.1;
  word_boundary.max_k = 70;  // k > |vocab − H| exercises exhaustion
  shapes.push_back(word_boundary);

  CaseShape lane_boundary;
  lane_boundary.library.num_goals = 20;
  lane_boundary.library.num_actions = 129;  // one past two 64-lane blocks
  lane_boundary.library.max_impls_per_goal = 5;
  lane_boundary.library.max_actions_per_impl = 7;
  lane_boundary.library.zipf_exponent = 0.9;
  lane_boundary.library.disconnected_action_fraction = 0.05;
  // ~500–800 draws over 129 actions dedup to |H| ≈ 125..129: realised sizes
  // straddle 127/128/129.
  lane_boundary.activity.min_size = 500;
  lane_boundary.activity.max_size = 800;
  shapes.push_back(lane_boundary);

  // Every action in (almost) every implementation: maximal connectivity with
  // uniform popularity, so IS(H) is the whole library and the per-impl
  // counters all saturate near |A|. This is the worst case for the scatter
  // pass and for the subset skip (|A ∩ H| = |A|).
  CaseShape all_popular;
  all_popular.library.num_goals = 10;
  all_popular.library.num_actions = 12;
  all_popular.library.max_impls_per_goal = 5;
  all_popular.library.min_actions_per_impl = 6;
  all_popular.library.max_actions_per_impl = 12;
  all_popular.library.zipf_exponent = 0.0;  // uniform: no unpopular actions
  all_popular.library.disconnected_action_fraction = 0.0;
  all_popular.activity.min_size = 4;
  all_popular.activity.max_size = 12;
  all_popular.activity.superset_prob = 0.5;
  shapes.push_back(all_popular);

  // Singleton-dominated: most implementations have |A| = 1, so completeness
  // is 0 or 1, closeness denominators are 0 or 1, and Breadth contributions
  // collapse to single counts. Forces masses of exactly-equal scores — the
  // tie-break order (score desc, id asc; Focus emission order) carries the
  // whole comparison.
  CaseShape tie_storm;
  tie_storm.library.num_goals = 14;
  tie_storm.library.num_actions = 24;
  tie_storm.library.max_impls_per_goal = 6;
  tie_storm.library.min_actions_per_impl = 1;
  tie_storm.library.max_actions_per_impl = 2;  // |A| ∈ {1, 2} mostly
  tie_storm.library.singleton_impl_prob = 0.5;
  tie_storm.library.empty_impl_prob = 0.1;
  tie_storm.library.zipf_exponent = 0.3;
  tie_storm.activity.min_size = 1;
  tie_storm.activity.max_size = 6;
  tie_storm.max_k = 30;  // deep lists: ties reach far down the ranking
  shapes.push_back(tie_storm);

  return shapes;
}

}  // namespace goalrec::testing
