#include "testing/generator.h"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/set_ops.h"

namespace goalrec::testing {
namespace {

// Draws one action id from the connected pool via the (permuted) popularity
// ranking.
model::ActionId DrawAction(const std::vector<model::ActionId>& by_popularity,
                           const util::ZipfSampler& zipf, util::Rng& rng) {
  return by_popularity[zipf.Sample(rng)];
}

}  // namespace

model::ImplementationLibrary GenerateLibrary(const LibraryShape& shape,
                                             util::Rng& rng) {
  GOALREC_CHECK_GT(shape.num_actions, 0u);
  GOALREC_CHECK_GT(shape.num_goals, 0u);
  GOALREC_CHECK_LE(shape.min_impls_per_goal, shape.max_impls_per_goal);
  GOALREC_CHECK_LE(shape.min_actions_per_impl, shape.max_actions_per_impl);

  model::LibraryBuilder builder;
  for (uint32_t a = 0; a < shape.num_actions; ++a) {
    builder.InternAction("act" + std::to_string(a));
  }
  for (uint32_t g = 0; g < shape.num_goals; ++g) {
    builder.InternGoal("goal" + std::to_string(g));
  }

  // Popularity: a random permutation of the connected pool, ranked by a Zipf
  // law — rank 0 (the hub) lands on a random action, not always id 0.
  uint32_t disconnected = static_cast<uint32_t>(
      static_cast<double>(shape.num_actions) *
      shape.disconnected_action_fraction);
  uint32_t pool = shape.num_actions - std::min(disconnected,
                                               shape.num_actions - 1);
  std::vector<model::ActionId> by_popularity(shape.num_actions);
  for (uint32_t a = 0; a < shape.num_actions; ++a) by_popularity[a] = a;
  rng.Shuffle(by_popularity);
  by_popularity.resize(pool);  // the rest stay disconnected
  util::ZipfSampler zipf(pool, std::max(0.0, shape.zipf_exponent));

  for (model::GoalId g = 0; g < shape.num_goals; ++g) {
    uint32_t impls = static_cast<uint32_t>(
        rng.UniformInt(shape.min_impls_per_goal, shape.max_impls_per_goal));
    for (uint32_t i = 0; i < impls; ++i) {
      double degenerate = rng.UniformDouble();
      uint32_t size;
      if (degenerate < shape.empty_impl_prob) {
        size = 0;
      } else if (degenerate < shape.empty_impl_prob +
                                  shape.singleton_impl_prob) {
        size = 1;
      } else {
        size = static_cast<uint32_t>(rng.UniformInt(
            shape.min_actions_per_impl, shape.max_actions_per_impl));
      }
      model::IdSet actions;
      for (uint32_t j = 0; j < size; ++j) {
        actions.push_back(DrawAction(by_popularity, zipf, rng));
      }
      builder.AddImplementationIds(g, std::move(actions));
    }
  }
  return std::move(builder).Build();
}

model::Activity GenerateActivity(const model::ImplementationLibrary& library,
                                 const ActivityShape& shape, util::Rng& rng) {
  GOALREC_CHECK_LE(shape.min_size, shape.max_size);
  model::Activity activity;
  if (library.num_implementations() > 0 &&
      rng.Bernoulli(shape.superset_prob)) {
    // H ⊇ A: start from a full implementation activity (possibly empty) and
    // extend with a few extra actions.
    model::ImplId p = rng.UniformUint32(library.num_implementations());
    std::span<const model::ActionId> base = library.ActionsOf(p);
    activity.assign(base.begin(), base.end());
    uint32_t extra = rng.UniformUint32(4);
    for (uint32_t i = 0; i < extra; ++i) {
      activity.push_back(rng.UniformUint32(library.num_actions()));
    }
  } else {
    uint32_t size =
        static_cast<uint32_t>(rng.UniformInt(shape.min_size, shape.max_size));
    for (uint32_t i = 0; i < size; ++i) {
      // Uniform over the whole vocabulary, disconnected actions included.
      activity.push_back(rng.UniformUint32(library.num_actions()));
    }
  }
  util::Normalize(activity);
  return activity;
}

OracleCase GenerateCase(const CaseShape& shape, uint64_t seed) {
  GOALREC_CHECK_LE(shape.min_k, shape.max_k);
  util::Rng rng(seed, /*stream=*/7);
  OracleCase c;
  c.library = GenerateLibrary(shape.library, rng);
  c.activity = GenerateActivity(c.library, shape.activity, rng);
  c.k = static_cast<size_t>(rng.UniformInt(shape.min_k, shape.max_k));
  return c;
}

std::vector<CaseShape> DefaultCaseShapes() {
  std::vector<CaseShape> shapes;

  CaseShape tiny;
  tiny.library.num_goals = 3;
  tiny.library.num_actions = 8;
  tiny.library.max_impls_per_goal = 3;
  tiny.library.max_actions_per_impl = 4;
  tiny.library.zipf_exponent = 0.0;
  tiny.library.disconnected_action_fraction = 0.0;
  tiny.activity.max_size = 5;
  tiny.max_k = 10;  // > num_actions: exercises the unbounded path
  shapes.push_back(tiny);

  CaseShape medium;  // the LibraryShape defaults
  shapes.push_back(medium);

  CaseShape degenerate;
  degenerate.library.num_goals = 6;
  degenerate.library.num_actions = 20;
  degenerate.library.empty_impl_prob = 0.2;
  degenerate.library.singleton_impl_prob = 0.3;
  degenerate.library.disconnected_action_fraction = 0.3;
  degenerate.activity.superset_prob = 0.4;
  degenerate.activity.min_size = 0;
  degenerate.activity.max_size = 10;
  shapes.push_back(degenerate);

  CaseShape hubby;
  hubby.library.num_goals = 10;
  hubby.library.num_actions = 40;
  hubby.library.max_impls_per_goal = 6;
  hubby.library.max_actions_per_impl = 8;
  hubby.library.zipf_exponent = 1.6;  // a few hub actions dominate
  hubby.activity.max_size = 12;
  shapes.push_back(hubby);

  CaseShape sparse;
  sparse.library.num_goals = 12;
  sparse.library.num_actions = 48;
  sparse.library.min_impls_per_goal = 1;
  sparse.library.max_impls_per_goal = 2;
  sparse.library.min_actions_per_impl = 1;
  sparse.library.max_actions_per_impl = 3;
  sparse.library.zipf_exponent = 0.2;
  sparse.library.disconnected_action_fraction = 0.2;
  sparse.activity.max_size = 6;
  shapes.push_back(sparse);

  return shapes;
}

}  // namespace goalrec::testing
