#ifndef GOALREC_TESTING_SHRINK_H_
#define GOALREC_TESTING_SHRINK_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "testing/generator.h"
#include "util/status.h"

// Greedy test-case shrinking for the differential fuzz driver. Given a
// failing OracleCase and a predicate that re-checks the failure, the
// shrinker repeatedly tries structure-removing edits — drop all
// implementations of a goal, drop a single implementation, drop an action
// from the activity H — keeping every edit that preserves the failure, until
// a fixpoint. The result is the small repro a human debugs, serialised as a
// loadable library file plus the command line that replays it.
//
// Vocabularies are preserved across shrink edits (candidate libraries are
// rebuilt with the full original action/goal vocabulary), so action and goal
// ids — and therefore the predicate's meaning — are stable throughout the
// shrink. Serialisation then compacts ids order-preservingly; a monotone
// relabel keeps every tie-break and score identical, so a written repro
// replays the same divergence.

namespace goalrec::testing {

/// Returns true while the case still exhibits the failure being minimised.
/// Must be deterministic.
using FailurePredicate = std::function<bool(const OracleCase&)>;

/// Bookkeeping of one shrink run, for logs and tests.
struct ShrinkStats {
  size_t predicate_calls = 0;
  size_t passes = 0;  // full fixpoint iterations
  uint32_t impls_before = 0;
  uint32_t impls_after = 0;
  size_t activity_before = 0;
  size_t activity_after = 0;
};

/// Greedily minimises `failing` (which must satisfy `still_fails`) and
/// returns the smallest case found. The returned case satisfies
/// `still_fails`.
OracleCase ShrinkFailure(const OracleCase& failing,
                         const FailurePredicate& still_fails,
                         ShrinkStats* stats = nullptr);

// --- repro files ------------------------------------------------------------
//
// A repro is a single self-contained text file, forward-compatible with the
// library text format (model/library_io.h): the implementation lines ARE the
// text format, and the fuzz metadata rides in `#!key: value` comment lines
// that LoadLibraryText ignores. Example:
//
//   # goalrec-library v1
//   #!strategy: Breadth
//   #!k: 5
//   #!seed: 1234
//   #!actions: act2,act7,act9
//   #!goals: goal1,goal3
//   #!activity: act2,act9
//   goal1\tact2\tact7
//   goal3\tact7\tact9
//
// The #!actions/#!goals directives pin the interning order (ascending
// original id), so a reload assigns ids order-isomorphic to the shrunk case.

/// The parsed content of a repro file.
struct ReproCase {
  OracleCase oracle_case;
  /// OracleStrategyName of the diverging strategy; empty = check all.
  std::string strategy;
  /// Seed of the generated case the shrink started from (0 if unknown).
  uint64_t seed = 0;
};

/// Writes `c` as a repro file at `path`. Only actions/goals referenced by a
/// kept implementation or the activity are serialised.
util::Status WriteRepro(const OracleCase& c, const std::string& strategy_name,
                        uint64_t seed, const std::string& path);

/// Parses a repro file written by WriteRepro.
util::StatusOr<ReproCase> LoadRepro(const std::string& path);

/// One-line human description of a loaded repro — leads with the strategy
/// that diverged ("all strategies" when the repro does not pin one), then
/// the case dimensions and seed. The fuzz driver's replay header prints
/// this, so the strategy under suspicion is visible before any shrinking or
/// re-checking output.
std::string DescribeRepro(const ReproCase& repro);

/// The command line that replays `path` through the fuzz driver.
std::string ReproCommandLine(const std::string& path);

}  // namespace goalrec::testing

#endif  // GOALREC_TESTING_SHRINK_H_
