#ifndef GOALREC_OBS_TRACE_H_
#define GOALREC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

// Per-query tracing. A Trace is a tree of timed spans with key/value
// annotations: the serving engine opens one span per rung attempt, the
// strategies annotate candidate-set sizes and early stops, and QueryContext
// records the space-construction work. Traces are sampled (TraceSampler) so
// the steady-state cost is a branch per query; a sampled query costs a few
// vector pushes plus a mutex the query almost always holds uncontended —
// no I/O.
//
// Cross-cutting code (QueryContext, the strategies) reaches the active
// trace through the thread-local CurrentTrace(), which the engine sets for
// the duration of each rung via ScopedTraceActivation — the same pattern as
// a request-scoped context in production RPC stacks. ThreadPool::Submit and
// ParallelFor re-activate the submitter's trace in their workers, so spans
// opened on pool threads land in the same tree. Each thread nests its spans
// on its own open-span stack; a span opened on a pool thread is a root of
// the forest (kNoParent) unless that thread already has a span open.
// Mutation is mutex-guarded; spans() is a read of live state and is meant
// for after-the-fact decoding, once the query (and any workers it fanned
// out to) has finished.

namespace goalrec::obs {

/// Typed annotation value, stored pre-rendered. `kind` tells the JSON
/// exporter whether to quote.
struct Annotation {
  enum class Kind { kString, kInt, kDouble, kBool };
  std::string key;
  std::string value;
  Kind kind = Kind::kString;
};

/// One timed operation. Offsets are steady-clock nanoseconds since the
/// owning trace's epoch; `end_ns` is -1 while the span is open.
struct TraceSpan {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  std::string name;
  int64_t start_ns = 0;
  int64_t end_ns = -1;
  /// Index of the enclosing span in Trace::spans(), or kNoParent for roots.
  size_t parent = kNoParent;
  std::vector<Annotation> annotations;

  int64_t duration_ns() const { return end_ns < 0 ? -1 : end_ns - start_ns; }
};

class Trace {
 public:
  /// `name` labels the root of the span tree (e.g. "serve"). The trace
  /// epoch is captured here; span offsets are relative to it.
  explicit Trace(std::string name = "query");

  /// Opens a span as a child of the calling thread's innermost open span
  /// (or a root when this thread has none). Returns its id. Prefer
  /// ScopedSpan. Thread-safe.
  size_t StartSpan(std::string_view name);

  /// Closes span `id`. A thread's spans must close innermost-first; closing
  /// out of order aborts (it would corrupt the parent stack). Thread-safe.
  void EndSpan(size_t id);

  void Annotate(size_t span_id, std::string_view key, std::string_view value);
  void Annotate(size_t span_id, std::string_view key, const char* value);
  void Annotate(size_t span_id, std::string_view key, int64_t value);
  void Annotate(size_t span_id, std::string_view key, uint64_t value);
  void Annotate(size_t span_id, std::string_view key, int value) {
    Annotate(span_id, key, static_cast<int64_t>(value));
  }
  void Annotate(size_t span_id, std::string_view key, double value);
  void Annotate(size_t span_id, std::string_view key, bool value);

  const std::string& name() const { return name_; }
  /// All spans in start order. Parent indices always point backwards.
  /// Unsynchronized read — call only once writers are done (the exporters
  /// and exemplar rendering run after the query finished).
  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// Nanoseconds since the epoch, for annotations that record "now".
  int64_t ElapsedNs() const;

 private:
  /// The calling thread's open-span stack, created on first use. Caller
  /// holds mu_. Linear scan: a trace sees one submitter plus a few pool
  /// workers.
  std::vector<size_t>& OpenStackLocked();

  std::string name_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::vector<TraceSpan> spans_;
  /// Per-thread LIFO of open span ids, keyed by thread id.
  std::vector<std::pair<std::thread::id, std::vector<size_t>>> open_stacks_;
};

/// RAII span. Null `trace` makes every operation a no-op, so call sites do
/// not branch on whether the query is sampled:
///   obs::ScopedSpan span(trace, "rung/best_match");
///   span.Annotate("candidates", candidates.size());
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name)
      : trace_(trace), id_(trace == nullptr ? 0 : trace->StartSpan(name)) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  /// Closes the span before destruction (idempotent).
  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }

  template <typename T>
  void Annotate(std::string_view key, T value) {
    if (trace_ != nullptr) trace_->Annotate(id_, key, value);
  }

  Trace* trace() const { return trace_; }
  size_t id() const { return id_; }

 private:
  Trace* trace_;
  size_t id_;
};

/// The trace attached to the work this thread is currently executing, or
/// nullptr when the query is unsampled (the common case).
Trace* CurrentTrace();

/// Installs `trace` as CurrentTrace() for the enclosing scope, restoring
/// the previous value on destruction. Null is fine (deactivates tracing).
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace* trace);
  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;
  ~ScopedTraceActivation();

 private:
  Trace* previous_;
};

/// Deterministic head sampler: every query calls Sample() and the sampler
/// admits a `rate` fraction, evenly spaced (rate 0.25 -> every 4th call).
/// rate <= 0 never samples; rate >= 1 always samples. Thread-safe; the
/// counter is shared across threads so the global admitted fraction holds.
class TraceSampler {
 public:
  explicit TraceSampler(double rate);

  bool Sample();

  double rate() const { return rate_; }

 private:
  double rate_;
  uint64_t period_;  // 0 = never, 1 = always
  std::atomic<uint64_t> calls_{0};
};

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_TRACE_H_
