#ifndef GOALREC_OBS_DUMPER_H_
#define GOALREC_OBS_DUMPER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

// Background metrics flushing. A PeriodicDumper snapshots a registry every
// `interval` and rewrites one output file (Prometheus text or JSON), giving
// long-running commands a monitorable side-channel without wiring an HTTP
// scrape endpoint into a batch tool. The write is atomic-rename'd
// (path.tmp -> path) so a concurrent reader never sees a half-written file.

namespace goalrec::obs {

enum class DumpFormat { kPrometheus, kJson };

struct DumperOptions {
  std::chrono::milliseconds interval{1000};
  DumpFormat format = DumpFormat::kPrometheus;
};

class PeriodicDumper {
 public:
  using Options = DumperOptions;
  using Format = DumpFormat;

  /// Starts the dump thread. `registry` must outlive the dumper; `path` is
  /// rewritten in place each interval ("-" appends snapshots to stdout,
  /// which is only sensible for debugging).
  PeriodicDumper(const MetricRegistry* registry, std::string path,
                 Options options = {});
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  /// Stops the thread after writing one final snapshot.
  ~PeriodicDumper();

  /// Synchronously writes one snapshot now. Also called on every tick and
  /// at destruction. Returns false when the write failed.
  bool DumpNow();

  /// Stops the ticker early (idempotent); the destructor still writes the
  /// final snapshot.
  void Stop();

  size_t dumps() const;

 private:
  void Loop();

  const MetricRegistry* registry_;
  std::string path_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  size_t dumps_ = 0;
  std::thread thread_;
};

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_DUMPER_H_
