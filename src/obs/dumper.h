#ifndef GOALREC_OBS_DUMPER_H_
#define GOALREC_OBS_DUMPER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

// Background metrics flushing. A PeriodicDumper renders a report every
// `interval` and rewrites one output file, giving long-running commands a
// monitorable side-channel without wiring an HTTP scrape endpoint into a
// batch tool. By default the report is a registry snapshot (Prometheus text
// or JSON); a custom `producer` turns the same lifecycle into a periodic
// statusz dump or any other rendered view. The write is atomic-rename'd
// (path.tmp -> path) so a concurrent reader never sees a half-written file.

namespace goalrec::obs {

enum class DumpFormat { kPrometheus, kJson };

struct DumperOptions {
  std::chrono::milliseconds interval{1000};
  DumpFormat format = DumpFormat::kPrometheus;
  /// When set, each dump writes this instead of a registry export (the
  /// registry/format fields are ignored). Called from the dump thread.
  std::function<std::string()> producer;
  /// Test seam for the raw file write (path, contents) -> ok. Defaults to
  /// WriteSnapshotFile; tests swap in a fault-injecting writer to exercise
  /// the tmp+rename path.
  std::function<bool(const std::string&, const std::string&)> write_file;
};

class PeriodicDumper {
 public:
  using Options = DumperOptions;
  using Format = DumpFormat;

  /// Starts the dump thread. `registry` must outlive the dumper (it may be
  /// null when options.producer is set); `path` is rewritten in place each
  /// interval ("-" appends snapshots to stdout, which is only sensible for
  /// debugging).
  PeriodicDumper(const MetricRegistry* registry, std::string path,
                 Options options = {});
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  /// Stops the thread after writing one final snapshot.
  ~PeriodicDumper();

  /// Synchronously writes one snapshot now. Also called on every tick and
  /// at destruction. Returns false when the write failed.
  bool DumpNow();

  /// Stops the ticker early (idempotent); the destructor still writes the
  /// final snapshot.
  void Stop();

  size_t dumps() const;

 private:
  void Loop();

  const MetricRegistry* registry_;
  std::string path_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  size_t dumps_ = 0;
  std::thread thread_;
};

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_DUMPER_H_
