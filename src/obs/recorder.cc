#include "obs/recorder.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <thread>

namespace goalrec::obs {
namespace {

// word1 layout: type in the top 16 bits, a below it, b in the low 32.
uint64_t PackMeta(RecorderEventType type, uint16_t a, uint32_t b) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(type)) << 48) |
         (static_cast<uint64_t>(a) << 32) | b;
}

void UnpackMeta(uint64_t word, RecorderEvent* out) {
  out->type = static_cast<RecorderEventType>(
      static_cast<uint16_t>(word >> 48));
  out->a = static_cast<uint16_t>((word >> 32) & 0xFFFF);
  out->b = static_cast<uint32_t>(word & 0xFFFFFFFFu);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Distinguishes recorder instances in the thread-local ring cache; a raw
// pointer would be ambiguous after a recorder is destroyed and another is
// allocated at the same address (tests construct several).
std::atomic<uint64_t> g_next_recorder_id{1};

}  // namespace

const char* RecorderEventTypeToString(RecorderEventType type) {
  switch (type) {
    case RecorderEventType::kNone:
      return "none";
    case RecorderEventType::kQueryStart:
      return "query_start";
    case RecorderEventType::kQueryEnd:
      return "query_end";
    case RecorderEventType::kRungEnter:
      return "rung_enter";
    case RecorderEventType::kRungExit:
      return "rung_exit";
    case RecorderEventType::kStageStamp:
      return "stage";
    case RecorderEventType::kAdmissionWait:
      return "admission_wait";
    case RecorderEventType::kBreakerTransition:
      return "breaker";
    case RecorderEventType::kSnapshotSwap:
      return "snapshot_swap";
  }
  return "unknown";
}

const char* KernelStageToString(KernelStage stage) {
  switch (stage) {
    case KernelStage::kScatter:
      return "scatter";
    case KernelStage::kRank:
      return "rank";
    case KernelStage::kEmit:
      return "emit";
  }
  return "unknown";
}

// One thread's event ring: `capacity` slots of three uint64 words each.
// Exactly one thread stores into a ring (relaxed word stores + a release
// head bump); any thread may read it (acquire head load + relaxed word
// loads), dropping slots the writer may have lapped during the copy.
struct FlightRecorder::Ring {
  explicit Ring(size_t capacity)
      : mask(capacity - 1),
        words(std::make_unique<std::atomic<uint64_t>[]>(capacity * 3)) {
    for (size_t i = 0; i < capacity * 3; ++i) words[i] = 0;
  }

  const size_t mask;
  std::thread::id owner = std::this_thread::get_id();
  std::atomic<uint64_t> head{0};
  std::unique_ptr<std::atomic<uint64_t>[]> words;

  size_t capacity() const { return mask + 1; }

  void Push(int64_t ts_ns, RecorderEventType type, uint16_t a, uint32_t b,
            uint64_t c) {
    uint64_t idx = head.load(std::memory_order_relaxed);
    size_t slot = (idx & mask) * 3;
    words[slot].store(static_cast<uint64_t>(ts_ns),
                      std::memory_order_relaxed);
    words[slot + 1].store(PackMeta(type, a, b), std::memory_order_relaxed);
    words[slot + 2].store(c, std::memory_order_relaxed);
    head.store(idx + 1, std::memory_order_release);
  }

  // Appends the ring's current contents to `out`, oldest first, dropping
  // any slot a concurrent writer may have overwritten mid-copy.
  void CollectInto(std::vector<RecorderEvent>& out) const {
    uint64_t end = head.load(std::memory_order_acquire);
    uint64_t cap = capacity();
    uint64_t begin = end > cap ? end - cap : 0;
    size_t first = out.size();
    for (uint64_t seq = begin; seq < end; ++seq) {
      size_t slot = (seq & mask) * 3;
      RecorderEvent event;
      event.ts_ns = static_cast<int64_t>(
          words[slot].load(std::memory_order_relaxed));
      UnpackMeta(words[slot + 1].load(std::memory_order_relaxed), &event);
      event.c = words[slot + 2].load(std::memory_order_relaxed);
      event.seq = seq;
      out.push_back(event);
    }
    // Any slot whose seq the writer lapped while we copied is torn: its
    // three words can pair two different events. Re-read the head and drop
    // everything at or below the new overwrite horizon.
    uint64_t head_after = head.load(std::memory_order_acquire);
    if (head_after > end) {
      uint64_t dirty_below = head_after >= cap ? head_after - cap + 1 : 0;
      out.erase(std::remove_if(out.begin() + first, out.end(),
                               [dirty_below](const RecorderEvent& e) {
                                 return e.seq < dirty_below;
                               }),
                out.end());
    }
  }
};

namespace {

struct LocalRingCache {
  uint64_t recorder_id = 0;
  std::shared_ptr<FlightRecorder::Ring> ring;
};

thread_local LocalRingCache t_ring_cache;

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(RoundUpPow2(std::max<size_t>(capacity, 8))) {}

FlightRecorder::~FlightRecorder() = default;

int64_t FlightRecorder::NowNs() {
#if defined(CLOCK_MONOTONIC_COARSE)
  std::timespec ts{};
  if (clock_gettime(CLOCK_MONOTONIC_COARSE, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
#endif
  std::timespec fallback{};
  clock_gettime(CLOCK_MONOTONIC, &fallback);
  return static_cast<int64_t>(fallback.tv_sec) * 1000000000 +
         fallback.tv_nsec;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  if (t_ring_cache.recorder_id == id_ && t_ring_cache.ring != nullptr) {
    return t_ring_cache.ring.get();
  }
  std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    if (ring->owner == me) {
      t_ring_cache.recorder_id = id_;
      t_ring_cache.ring = ring;
      return ring.get();
    }
  }
  auto ring = std::make_shared<Ring>(capacity_);
  rings_.push_back(ring);
  t_ring_cache.recorder_id = id_;
  t_ring_cache.ring = ring;
  return t_ring_cache.ring.get();
}

void FlightRecorder::RecordSlow(RecorderEventType type, uint16_t a,
                                uint32_t b, uint64_t c) {
  LocalRing()->Push(NowNs(), type, a, b, c);
}

std::vector<RecorderEvent> FlightRecorder::TailSince(
    int64_t since_ts_ns) const {
  std::vector<RecorderEvent> events;
  std::thread::id me = std::this_thread::get_id();
  std::shared_ptr<Ring> mine;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const std::shared_ptr<Ring>& ring : rings_) {
      if (ring->owner == me) {
        mine = ring;
        break;
      }
    }
  }
  if (mine == nullptr) return events;
  mine->CollectInto(events);
  events.erase(std::remove_if(events.begin(), events.end(),
                              [since_ts_ns](const RecorderEvent& e) {
                                return e.ts_ns < since_ts_ns;
                              }),
               events.end());
  return events;
}

std::vector<RecorderEvent> FlightRecorder::Snapshot(size_t max_events) const {
  std::vector<RecorderEvent> events;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings = rings_;
  }
  for (const std::shared_ptr<Ring>& ring : rings) ring->CollectInto(events);
  std::sort(events.begin(), events.end(),
            [](const RecorderEvent& x, const RecorderEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.seq < y.seq;
            });
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

size_t FlightRecorder::threads_seen() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return rings_.size();
}

std::string FormatRecorderEvents(const std::vector<RecorderEvent>& events) {
  std::string out;
  if (events.empty()) return out;
  int64_t epoch = events.front().ts_ns;
  char buffer[160];
  for (const RecorderEvent& e : events) {
    double ms = static_cast<double>(e.ts_ns - epoch) / 1e6;
    switch (e.type) {
      case RecorderEventType::kQueryStart:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms query_start priority=%u k=%u id=%llu\n", ms,
                      e.a, e.b, static_cast<unsigned long long>(e.c));
        break;
      case RecorderEventType::kQueryEnd:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms query_end rung=%u result=%u latency_ns=%llu\n",
                      ms, e.a, e.b, static_cast<unsigned long long>(e.c));
        break;
      case RecorderEventType::kRungEnter:
        std::snprintf(buffer, sizeof(buffer), "+%.3fms rung_enter rung=%u\n",
                      ms, e.a);
        break;
      case RecorderEventType::kRungExit:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms rung_exit rung=%u outcome=%u latency_ns=%llu\n",
                      ms, e.a, e.b, static_cast<unsigned long long>(e.c));
        break;
      case RecorderEventType::kStageStamp:
        std::snprintf(buffer, sizeof(buffer), "+%.3fms stage %s items=%u\n",
                      ms,
                      KernelStageToString(static_cast<KernelStage>(e.a)),
                      e.b);
        break;
      case RecorderEventType::kAdmissionWait:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms admission_wait result=%u wait_ns=%llu\n", ms,
                      e.b, static_cast<unsigned long long>(e.c));
        break;
      case RecorderEventType::kBreakerTransition:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms breaker rung=%u state=%u\n", ms, e.a, e.b);
        break;
      case RecorderEventType::kSnapshotSwap:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms snapshot_swap version=%llu\n", ms,
                      static_cast<unsigned long long>(e.c));
        break;
      case RecorderEventType::kNone:
      default:
        std::snprintf(buffer, sizeof(buffer),
                      "+%.3fms %s a=%u b=%u c=%llu\n", ms,
                      RecorderEventTypeToString(e.type), e.a, e.b,
                      static_cast<unsigned long long>(e.c));
        break;
    }
    out += buffer;
  }
  return out;
}

}  // namespace goalrec::obs
