#include "obs/slo.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/logging.h"

namespace goalrec::obs {
namespace {

constexpr int kRingSpan = SloTracker::kWindows[2];

int64_t DefaultNowS() { return FlightRecorder::NowNs() / 1000000000; }

}  // namespace

const char* SloWindowLabel(int window_s) {
  switch (window_s) {
    case 60:
      return "1m";
    case 300:
      return "5m";
    case 1800:
      return "30m";
  }
  return "?";
}

SloTracker::SloTracker(SloOptions options)
    : objective_(options.objective),
      now_s_(options.now_s ? std::move(options.now_s) : DefaultNowS),
      ring_(kRingSpan) {
  GOALREC_CHECK(objective_ > 0.0 && objective_ < 1.0);
  MetricRegistry& registry =
      options.metrics != nullptr ? *options.metrics : MetricRegistry::Default();
  good_events_ = registry.GetCounter(
      "goalrec_slo_events_total", {{"result", "good"}},
      "Finished queries accounted against the SLO, by result.");
  bad_events_ = registry.GetCounter(
      "goalrec_slo_events_total", {{"result", "bad"}},
      "Finished queries accounted against the SLO, by result.");
  for (size_t i = 0; i < 3; ++i) {
    const char* label = SloWindowLabel(kWindows[i]);
    good_ratio_ppm_[i] = registry.GetGauge(
        "goalrec_slo_good_ratio_ppm", {{"window", label}},
        "Good-event ratio over the window, parts per million "
        "(1000000 = every query good; 1000000 when the window is empty).");
    burn_rate_milli_[i] = registry.GetGauge(
        "goalrec_slo_burn_rate_milli", {{"window", label}},
        "Error-budget burn rate over the window, thousandths "
        "(1000 = burning exactly at the sustainable pace).");
  }
  current_second_ = now_s_();
  std::lock_guard<std::mutex> lock(mu_);
  RefreshGaugesLocked();
}

void SloTracker::AdvanceLocked(int64_t now) const {
  if (now <= current_second_) return;  // coarse clock may briefly read back
  int64_t skipped = now - current_second_;
  if (skipped >= kRingSpan) {
    for (Bucket& bucket : ring_) bucket = Bucket{};
  } else {
    for (int64_t s = current_second_ + 1; s <= now; ++s) {
      ring_[static_cast<size_t>(s % kRingSpan)] = Bucket{};
    }
  }
  current_second_ = now;
}

void SloTracker::Record(bool good) {
  if (good) {
    good_events_->Increment();
  } else {
    bad_events_->Increment();
  }
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_s_();
  bool ticked = now > current_second_;
  AdvanceLocked(now);
  Bucket& bucket = ring_[static_cast<size_t>(current_second_ % kRingSpan)];
  bucket.total++;
  if (good) bucket.good++;
  if (ticked) RefreshGaugesLocked();
}

SloWindowReport SloTracker::WindowLocked(int window_s) const {
  SloWindowReport report;
  report.window_s = window_s;
  for (int64_t s = current_second_ - window_s + 1; s <= current_second_; ++s) {
    if (s < 0) continue;
    const Bucket& bucket = ring_[static_cast<size_t>(s % kRingSpan)];
    report.good += bucket.good;
    report.total += bucket.total;
  }
  if (report.total > 0) {
    report.good_ratio =
        static_cast<double>(report.good) / static_cast<double>(report.total);
  }
  report.burn_rate = (1.0 - report.good_ratio) / (1.0 - objective_);
  return report;
}

void SloTracker::RefreshGaugesLocked() {
  for (size_t i = 0; i < 3; ++i) {
    SloWindowReport report = WindowLocked(kWindows[i]);
    good_ratio_ppm_[i]->Set(static_cast<int64_t>(report.good_ratio * 1e6));
    burn_rate_milli_[i]->Set(static_cast<int64_t>(report.burn_rate * 1e3));
  }
}

void SloTracker::RefreshGauges() {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_s_());
  RefreshGaugesLocked();
}

SloWindowReport SloTracker::Window(int window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_s_());
  return WindowLocked(window_s);
}

std::vector<SloWindowReport> SloTracker::Report() const {
  std::vector<SloWindowReport> reports;
  reports.reserve(3);
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_s_());
  for (int window : kWindows) reports.push_back(WindowLocked(window));
  return reports;
}

}  // namespace goalrec::obs
