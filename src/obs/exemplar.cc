#include "obs/exemplar.h"

#include <algorithm>
#include <limits>

namespace goalrec::obs {

ExemplarReservoir::ExemplarReservoir(size_t capacity_per_key)
    : capacity_per_key_(std::max<size_t>(capacity_per_key, 1)) {}

void ExemplarReservoir::RecomputeFloorLocked() {
  // The global floor must not exceed any key's admission threshold, or
  // WorthCapturing would reject queries that key still wants. A key below
  // capacity admits anything, so it pins the floor at zero.
  double floor = std::numeric_limits<double>::infinity();
  if (buckets_.empty()) {
    floor = 0.0;
  }
  for (const KeyBucket& bucket : buckets_) {
    if (bucket.slots.size() < capacity_per_key_) {
      floor = 0.0;
      break;
    }
    double key_min = std::numeric_limits<double>::infinity();
    for (const TailExemplar& exemplar : bucket.slots) {
      key_min = std::min(key_min, exemplar.latency_us);
    }
    floor = std::min(floor, key_min);
  }
  floor_us_.store(floor, std::memory_order_relaxed);
}

bool ExemplarReservoir::Offer(TailExemplar exemplar) {
  if constexpr (!kObsEnabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  KeyBucket* bucket = nullptr;
  for (KeyBucket& candidate : buckets_) {
    if (candidate.key == exemplar.key) {
      bucket = &candidate;
      break;
    }
  }
  if (bucket == nullptr) {
    // First query of this key: a new key admits anything, so the floor
    // drops to zero until it fills.
    buckets_.push_back(KeyBucket{exemplar.key, {}});
    bucket = &buckets_.back();
  }
  if (bucket->slots.size() < capacity_per_key_) {
    bucket->slots.push_back(std::move(exemplar));
    RecomputeFloorLocked();
    return true;
  }
  auto slowest_victim = std::min_element(
      bucket->slots.begin(), bucket->slots.end(),
      [](const TailExemplar& x, const TailExemplar& y) {
        return x.latency_us < y.latency_us;
      });
  if (exemplar.latency_us <= slowest_victim->latency_us) return false;
  *slowest_victim = std::move(exemplar);
  RecomputeFloorLocked();
  return true;
}

std::vector<TailExemplar> ExemplarReservoir::Snapshot() const {
  std::vector<TailExemplar> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const KeyBucket& bucket : buckets_) {
    std::vector<TailExemplar> slots = bucket.slots;
    std::sort(slots.begin(), slots.end(),
              [](const TailExemplar& x, const TailExemplar& y) {
                return x.latency_us > y.latency_us;
              });
    for (TailExemplar& exemplar : slots) out.push_back(std::move(exemplar));
  }
  return out;
}

size_t ExemplarReservoir::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const KeyBucket& bucket : buckets_) total += bucket.slots.size();
  return total;
}

}  // namespace goalrec::obs
