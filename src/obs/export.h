#ifndef GOALREC_OBS_EXPORT_H_
#define GOALREC_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

// Snapshot serialisation. Two metric formats:
//
//   Prometheus text (ExportPrometheus) — the scrape format: # HELP/# TYPE
//   headers, one `name{labels} value` line per instrument, histograms as
//   cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
//
//   JSON (ExportJson) — one self-contained document for log pipelines and
//   the bench harness (BENCH_serve.json embeds these snapshots).
//
// Traces export as JSON (span tree with offsets/durations in ns) or as an
// indented human-readable tree (FormatTrace) for CLI output. All output is
// deterministic given the snapshot: metrics sorted by name then labels,
// spans in start order — golden tests rely on this.

namespace goalrec::obs {

std::string ExportPrometheus(const RegistrySnapshot& snapshot);
std::string ExportPrometheus(const MetricRegistry& registry);

std::string ExportJson(const RegistrySnapshot& snapshot);
std::string ExportJson(const MetricRegistry& registry);

std::string TraceToJson(const Trace& trace);

/// Indented tree, one line per span:
///   serve  4.21ms
///     rung/best_match  4.02ms  outcome=SERVED candidates=117
std::string FormatTrace(const Trace& trace);

/// Writes `contents` to `path` ("-" means stdout). Creates or truncates.
/// Returns false (with a GOALREC_LOG(ERROR)) when the write fails.
bool WriteSnapshotFile(const std::string& path, const std::string& contents);

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_EXPORT_H_
