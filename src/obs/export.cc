#include "obs/export.h"

#include <cstdio>
#include <vector>

#include "util/logging.h"

namespace goalrec::obs {
namespace {

// Shortest round-trippable-enough rendering: integers print bare
// ("1024"), fractions keep up to 12 significant digits ("0.5").
std::string FormatNumber(double value) {
  char buffer[40];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  }
  return buffer;
}

void AppendEscaped(std::string& out, const std::string& value) {
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

// {k1="v1",k2="v2"} with `extra` appended last (used for le="...").
// Empty label sets with no extra render as nothing.
std::string PrometheusLabels(const LabelSet& labels,
                             const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(out, value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  AppendEscaped(out, value);
  out += '"';
}

void AppendJsonLabels(std::string& out, const LabelSet& labels) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ':';
    AppendJsonString(out, value);
  }
  out += '}';
}

// Exemplar trace ids render as 16 hex digits — fixed width, matches how the
// statusz surface prints query ids.
std::string FormatTraceId(uint64_t trace_id) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

}  // namespace

std::string ExportPrometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  const std::string* previous_name = nullptr;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (previous_name == nullptr || *previous_name != metric.name) {
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + metric.help + "\n";
      }
      out += "# TYPE " + metric.name + " ";
      out += MetricTypeToString(metric.type);
      out += '\n';
    }
    previous_name = &metric.name;
    if (metric.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = metric.histogram;
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        std::string le = i < h.bounds.size()
                             ? "le=\"" + FormatNumber(h.bounds[i]) + "\""
                             : std::string("le=\"+Inf\"");
        out += metric.name + "_bucket" + PrometheusLabels(metric.labels, le) +
               " " + std::to_string(cumulative);
        // OpenMetrics exemplar: ` # {trace_id="..."} <observed value>` on
        // the bucket the exemplar landed in.
        if (i < h.exemplars.size() && h.exemplars[i].set) {
          out += " # {trace_id=\"" + FormatTraceId(h.exemplars[i].trace_id) +
                 "\"} " + FormatNumber(h.exemplars[i].value);
        }
        out += "\n";
      }
      out += metric.name + "_sum" + PrometheusLabels(metric.labels) + " " +
             FormatNumber(h.sum) + "\n";
      out += metric.name + "_count" + PrometheusLabels(metric.labels) + " " +
             std::to_string(h.count) + "\n";
    } else {
      out += metric.name + PrometheusLabels(metric.labels) + " " +
             std::to_string(metric.value) + "\n";
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricRegistry& registry) {
  return ExportPrometheus(registry.Snapshot());
}

std::string ExportJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "{\"name\":";
    AppendJsonString(out, metric.name);
    out += ",\"type\":\"";
    out += MetricTypeToString(metric.type);
    out += "\",\"labels\":";
    AppendJsonLabels(out, metric.labels);
    if (metric.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = metric.histogram;
      out += ",\"count\":" + std::to_string(h.count);
      out += ",\"sum\":" + FormatNumber(h.sum);
      out += ",\"buckets\":[";
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"le\":";
        if (i < h.bounds.size()) {
          out += FormatNumber(h.bounds[i]);
        } else {
          out += "\"+Inf\"";
        }
        out += ",\"count\":" + std::to_string(h.counts[i]);
        if (i < h.exemplars.size() && h.exemplars[i].set) {
          out += ",\"exemplar\":{\"trace_id\":\"" +
                 FormatTraceId(h.exemplars[i].trace_id) +
                 "\",\"value\":" + FormatNumber(h.exemplars[i].value) + "}";
        }
        out += "}";
      }
      out += ']';
    } else {
      out += ",\"value\":" + std::to_string(metric.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ExportJson(const MetricRegistry& registry) {
  return ExportJson(registry.Snapshot());
}

std::string TraceToJson(const Trace& trace) {
  std::string out = "{\"trace\":";
  AppendJsonString(out, trace.name());
  out += ",\"spans\":[";
  const std::vector<TraceSpan>& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(i);
    out += ",\"parent\":";
    out += span.parent == TraceSpan::kNoParent ? "null"
                                               : std::to_string(span.parent);
    out += ",\"name\":";
    AppendJsonString(out, span.name);
    out += ",\"start_ns\":" + std::to_string(span.start_ns);
    out += ",\"duration_ns\":" + std::to_string(span.duration_ns());
    out += ",\"annotations\":{";
    bool first_annotation = true;
    for (const Annotation& annotation : span.annotations) {
      if (!first_annotation) out += ',';
      first_annotation = false;
      AppendJsonString(out, annotation.key);
      out += ':';
      if (annotation.kind == Annotation::Kind::kString) {
        AppendJsonString(out, annotation.value);
      } else {
        out += annotation.value;
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string FormatTrace(const Trace& trace) {
  const std::vector<TraceSpan>& spans = trace.spans();
  // Depth of each span via its (always earlier) parent.
  std::vector<size_t> depth(spans.size(), 0);
  std::string out;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (span.parent != TraceSpan::kNoParent) depth[i] = depth[span.parent] + 1;
    out.append(2 * depth[i], ' ');
    out += span.name;
    char timing[48];
    if (span.end_ns >= 0) {
      std::snprintf(timing, sizeof(timing), "  %.3fms",
                    static_cast<double>(span.duration_ns()) / 1e6);
    } else {
      std::snprintf(timing, sizeof(timing), "  (open)");
    }
    out += timing;
    for (const Annotation& annotation : span.annotations) {
      out += "  " + annotation.key + "=" + annotation.value;
    }
    out += '\n';
  }
  return out;
}

bool WriteSnapshotFile(const std::string& path, const std::string& contents) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    GOALREC_LOG(ERROR) << "cannot open snapshot file"
                       << goalrec::util::Kv("path", path);
    return false;
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool ok = written == contents.size() && std::fclose(file) == 0;
  if (!ok) {
    GOALREC_LOG(ERROR) << "short write on snapshot file"
                       << goalrec::util::Kv("path", path);
  }
  return ok;
}

}  // namespace goalrec::obs
