#ifndef GOALREC_OBS_METRICS_H_
#define GOALREC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Runtime metrics for the serving path. A MetricRegistry owns named
// Counter / Gauge / Histogram instruments; instrumentation sites look a
// metric up once (mutex-guarded) and keep the returned pointer, so the hot
// ranking loops pay one relaxed atomic RMW per event and nothing else.
//
// Counters and histograms are sharded across kNumShards cache-line-padded
// cells indexed by a thread-local id: concurrent writers on different
// threads touch different cache lines, so the fast path is an uncontended
// fetch_add with std::memory_order_relaxed. Readers merge the shards on
// scrape; a scrape concurrent with writers yields a slightly stale but
// torn-free view (every cell is read atomically), which is the standard
// contract for monitoring data.
//
// Building with -DGOALREC_OBS_NOOP compiles every increment/observe out
// (registration and scraping still work, all values read zero); the
// micro_serve overhead comparison in docs/observability.md uses it as the
// baseline.

namespace goalrec::obs {

#ifdef GOALREC_OBS_NOOP
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

namespace internal {

/// Shard fan-out. Power of two so the thread-id hash is a mask.
inline constexpr size_t kNumShards = 16;

/// Stable per-thread shard index. Threads are numbered in creation order,
/// so a fixed pool hits a fixed shard each (no migration churn).
inline size_t ShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id & (kNumShards - 1);
}

/// One cache line per cell so shards do not false-share.
struct alignas(64) PaddedCell {
  std::atomic<int64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    if constexpr (!kObsEnabled) return;
    shards_[internal::ShardIndex()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }

  /// Merged value across shards. Torn-free but may trail concurrent writers.
  int64_t Value() const {
    int64_t total = 0;
    for (const internal::PaddedCell& cell : shards_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricRegistry;
  Counter() = default;
  internal::PaddedCell shards_[internal::kNumShards];
};

/// Point-in-time level (queue depth, resident bytes). Unlike Counter a
/// gauge supports Set and negative deltas; a single atomic suffices because
/// gauges are updated per task/queue event, not per ranked candidate.
class Gauge {
 public:
  void Set(int64_t value) {
    if constexpr (!kObsEnabled) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if constexpr (!kObsEnabled) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta) { Add(-delta); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// One bucket's attached exemplar (OpenMetrics): the observed value plus
/// the trace/query id linking back to the concrete event.
struct HistogramExemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
  bool set = false;
};

/// Merged read-side view of a Histogram.
struct HistogramSnapshot {
  /// Upper bounds, ascending; the implicit +Inf bucket is counts.back().
  std::vector<double> bounds;
  /// Per-bucket counts, size bounds.size() + 1.
  std::vector<int64_t> counts;
  int64_t count = 0;  // total observations
  double sum = 0.0;   // sum of observed values
  /// Per-bucket exemplars, size bounds.size() + 1; empty when none were
  /// ever attached (the common case for non-latency histograms).
  std::vector<HistogramExemplar> exemplars;
};

/// Distribution of a value (latencies, sizes) over fixed upper-bound
/// buckets. Observe is a binary search plus two relaxed RMWs on the
/// caller's shard.
class Histogram {
 public:
  void Observe(double value);

  /// Attaches an exemplar to the bucket `value` falls in, replacing the
  /// bucket's previous one. Mutex-guarded — callers already gate on
  /// ExemplarReservoir::WorthCapturing, so this runs a handful of times per
  /// histogram refresh, never per query. No-op under GOALREC_OBS_NOOP.
  void AttachExemplar(double value, uint64_t trace_id);

  /// Merges all shards into one snapshot.
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;  // ascending upper bounds
  Shard shards_[internal::kNumShards];

  mutable std::mutex exemplar_mu_;
  /// Lazily sized to bounds_.size() + 1 on first attach.
  std::vector<HistogramExemplar> exemplars_;
};

/// `count` bucket bounds: start, start*factor, start*factor^2, ...
/// Requires start > 0, factor > 1, count >= 1.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// `count` bucket bounds: start, start+width, start+2*width, ...
/// Requires width > 0, count >= 1.
std::vector<double> LinearBuckets(double start, double width, size_t count);

/// Default latency buckets in microseconds: 1us .. ~16s, powers of two.
std::vector<double> DefaultLatencyBucketsUs();

/// Sorted key/value pairs distinguishing instruments of one family, e.g.
/// {{"rung", "best_match"}, {"outcome", "served"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeToString(MetricType type);

/// One instrument's merged state, as handed to the exporters.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  /// Counter/Gauge value; unused for histograms.
  int64_t value = 0;
  /// Histogram state; empty otherwise.
  HistogramSnapshot histogram;
};

/// Full scrape: metrics sorted by (name, labels) for stable exporter output.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// First metric matching name+labels, or nullptr. Test convenience.
  const MetricSnapshot* Find(const std::string& name,
                             const LabelSet& labels = {}) const;
};

/// Owns all instruments of one process domain. Get* registers on first use
/// and returns the existing instrument afterwards (same name + labels ==
/// same pointer); pointers stay valid for the registry's lifetime.
/// Re-registering a name with a different type, or a histogram with
/// different bounds, is a programming error and aborts via GOALREC_CHECK.
///
/// Thread-safe. Instrument lookups take a mutex — do them at construction
/// time, not per event.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const LabelSet& labels = {},
                          const std::string& help = "");

  /// Merged view of every registered instrument. Scrape hooks run first
  /// (outside the registry lock), so gauges they refresh are current in the
  /// returned snapshot.
  RegistrySnapshot Snapshot() const;

  /// Registers a callback invoked at the start of every Snapshot() — i.e.
  /// on every export/scrape — for gauges whose value is a function of time
  /// rather than of events (e.g. goalrec_snapshot_age_seconds, which would
  /// otherwise freeze between reloads). Hooks run outside the registry
  /// lock and must only touch lock-free instrument operations (Gauge::Set
  /// and friends). Returns an id for RemoveScrapeHook.
  uint64_t AddScrapeHook(std::function<void()> hook);

  /// Deregisters a hook. Call before anything the hook captures dies.
  void RemoveScrapeHook(uint64_t id);

  /// The process-wide registry that built-in instrumentation (serving
  /// engine defaults, thread pool, retry, library loaders) reports into.
  static MetricRegistry& Default();

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    std::map<LabelSet, Instrument> instruments;
  };

  Family* FamilyFor(const std::string& name, MetricType type,
                    const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;

  /// Scrape hooks, under their own mutex so a hook calling back into
  /// instrument reads can never deadlock against the registry lock.
  mutable std::mutex hooks_mutex_;
  std::map<uint64_t, std::function<void()>> hooks_;
  uint64_t next_hook_id_ = 1;
};

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_METRICS_H_
