#ifndef GOALREC_OBS_RECORDER_H_
#define GOALREC_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // kObsEnabled

// Always-on flight recorder for tail-latency forensics. Sampled traces
// (obs/trace.h) systematically miss the rare pathological query: by the time
// a query lands in the worst latency bucket the decision not to trace it was
// made long ago. The recorder instead keeps a per-thread lock-free ring of
// compact fixed-size binary events — query start/end, rung enter/exit,
// kernel stage stamps, admission waits, breaker transitions, snapshot swaps
// — overwriting oldest-first, so the *last few thousand events of every
// serving thread are always available* for after-the-fact decoding.
//
// Cost model. Recording one event is a runtime-enabled check (one relaxed
// load + branch), one coarse-clock read, three relaxed atomic stores into
// the thread's own ring slot and one relaxed head bump — no locks, no
// allocation after the thread's first event, no cross-core traffic (each
// thread writes only its own cache lines). Building with -DGOALREC_OBS_NOOP
// compiles every Record call out entirely, which is what keeps the scoring
// kernels branch-lean; bench/micro_recorder gates the enabled-vs-disabled
// delta at <= 3% on the BestMatch hot path.
//
// Read side. TailSince() decodes the *calling thread's* ring — single
// writer, so the slice is exact; the serving engine uses it to attach a
// per-query recorder slice to tail exemplars. Snapshot() merges every
// thread's ring for the statusz recent-events tail: each 24-byte slot is
// stored as three word-atomics, so a concurrent overwrite can pair words of
// two different events; Snapshot defends by re-reading the head after the
// copy and dropping any slot the writer may have lapped, leaving only
// consistent events (the view is approximate under write pressure, which is
// the standard contract for a flight recorder).

namespace goalrec::obs {

enum class RecorderEventType : uint16_t {
  kNone = 0,
  kQueryStart = 1,        // a=priority, b=k, c=query id
  kQueryEnd = 2,          // a=serving rung (0xFFFF none), b=result, c=latency ns
  kRungEnter = 3,         // a=rung index
  kRungExit = 4,          // a=rung index, b=RungOutcome, c=rung latency ns
  kStageStamp = 5,        // a=KernelStage, b=items processed by the stage
  kAdmissionWait = 6,     // b=admission result, c=queue wait ns
  kBreakerTransition = 7, // a=rung index, b=new CircuitBreaker::State
  kSnapshotSwap = 8,      // c=published library version
};

/// Scoring-kernel phases stamped from src/core (see docs/observability.md).
enum class KernelStage : uint16_t { kScatter = 0, kRank = 1, kEmit = 2 };

/// Result code for kQueryEnd / kAdmissionWait events.
enum class RecorderResult : uint32_t {
  kOk = 0,
  kShed = 1,
  kCancelled = 2,
  kUnavailable = 3,
};

const char* RecorderEventTypeToString(RecorderEventType type);
const char* KernelStageToString(KernelStage stage);

/// One decoded event. `ts_ns` is the recorder's coarse monotonic clock
/// (FlightRecorder::NowNs); `seq` is the global write index within its ring.
struct RecorderEvent {
  int64_t ts_ns = 0;
  uint64_t seq = 0;
  RecorderEventType type = RecorderEventType::kNone;
  uint16_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
};

class FlightRecorder {
 public:
  /// `capacity` slots per thread ring, rounded up to a power of two.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Appends one event to the calling thread's ring. See the file comment
  /// for the cost model. No-op when disabled (runtime) or under
  /// GOALREC_OBS_NOOP (compile time).
  void Record(RecorderEventType type, uint16_t a = 0, uint32_t b = 0,
              uint64_t c = 0) {
    if constexpr (!kObsEnabled) return;
    if (!enabled_.load(std::memory_order_relaxed)) return;
    RecordSlow(type, a, b, c);
  }

  /// The calling thread's own events with ts_ns >= `since_ts_ns`, oldest
  /// first. Exact (single-writer ring). Empty when the thread has not
  /// recorded yet.
  std::vector<RecorderEvent> TailSince(int64_t since_ts_ns) const;

  /// The newest <= `max_events` events merged across every thread's ring,
  /// sorted by (ts_ns, seq). Approximate under concurrent writes (see file
  /// comment); torn slots are dropped, never decoded.
  std::vector<RecorderEvent> Snapshot(size_t max_events = 256) const;

  /// Runtime kill switch; flipping it does not clear the rings. The
  /// overhead bench compares enabled vs disabled with this.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total events ever recorded, across all threads (monotonic).
  uint64_t events_recorded() const;

  /// Threads that have recorded at least one event.
  size_t threads_seen() const;

  /// The recorder's clock: coarse monotonic nanoseconds
  /// (CLOCK_MONOTONIC_COARSE where available, steady_clock otherwise).
  /// Comparable across threads within a process.
  static int64_t NowNs();

  /// The process-wide recorder every built-in instrumentation site (serving
  /// engine, snapshot manager, scoring kernels) writes into.
  static FlightRecorder& Default();

  static constexpr size_t kDefaultCapacity = 4096;

  /// One thread's ring; defined in recorder.cc (public so the thread-local
  /// ring cache there can name it).
  struct Ring;

 private:
  void RecordSlow(RecorderEventType type, uint16_t a, uint32_t b, uint64_t c);
  Ring* LocalRing();

  std::atomic<bool> enabled_{true};
  /// Process-unique id, the thread-local ring-cache key (never reused, so a
  /// recorder allocated where a destroyed one lived cannot inherit rings).
  uint64_t id_;
  size_t capacity_;  // power of two
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// Human-readable decode, one line per event, oldest first:
///   +12.345ms rung_exit rung=0 outcome=1 latency_ns=38991021
/// Timestamps are relative to the first event in `events`. Generic field
/// names; serve/statusz.h renders the serve-aware form (outcome labels,
/// rung names).
std::string FormatRecorderEvents(const std::vector<RecorderEvent>& events);

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_RECORDER_H_
