#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace goalrec::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GOALREC_CHECK(!bounds_.empty()) << "a histogram needs at least one bound";
  GOALREC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  GOALREC_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                bounds_.end())
      << "histogram bounds must be distinct";
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) shard.buckets[i] = 0;
  }
}

void Histogram::Observe(double value) {
  if constexpr (!kObsEnabled) return;
  // First bucket whose upper bound admits the value; past the last bound
  // the observation lands in the implicit +Inf bucket.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[internal::ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::AttachExemplar(double value, uint64_t trace_id) {
  if constexpr (!kObsEnabled) return;
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(bounds_.size() + 1);
  exemplars_[bucket] = HistogramExemplar{value, trace_id, true};
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snapshot.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (int64_t c : snapshot.counts) snapshot.count += c;
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    snapshot.exemplars = exemplars_;
  }
  return snapshot;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  GOALREC_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  GOALREC_CHECK(width > 0.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> DefaultLatencyBucketsUs() {
  // 1us .. ~16.8s in powers of two: covers a sub-microsecond popularity
  // lookup through a multi-second degraded query with 25 buckets.
  return ExponentialBuckets(1.0, 2.0, 25);
}

const char* MetricTypeToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name,
                                             const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name && metric.labels == sorted) return &metric;
  }
  return nullptr;
}

MetricRegistry::Family* MetricRegistry::FamilyFor(const std::string& name,
                                                  MetricType type,
                                                  const std::string& help) {
  GOALREC_CHECK(!name.empty());
  Family& family = families_[name];
  if (family.instruments.empty()) {
    family.type = type;
    family.help = help;
  } else {
    GOALREC_CHECK(family.type == type)
        << "metric '" << name << "' re-registered as a different type";
  }
  if (family.help.empty()) family.help = help;
  return &family;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const LabelSet& labels,
                                    const std::string& help) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, MetricType::kCounter, help);
  Instrument& instrument = family->instruments[sorted];
  if (instrument.counter == nullptr) {
    instrument.counter.reset(new Counter());
  }
  return instrument.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const LabelSet& labels,
                                const std::string& help) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, MetricType::kGauge, help);
  Instrument& instrument = family->instruments[sorted];
  if (instrument.gauge == nullptr) {
    instrument.gauge.reset(new Gauge());
  }
  return instrument.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const LabelSet& labels,
                                        const std::string& help) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = FamilyFor(name, MetricType::kHistogram, help);
  if (family->instruments.empty()) {
    family->bounds = bounds;
  } else {
    GOALREC_CHECK(family->bounds == bounds)
        << "histogram '" << name << "' re-registered with different bounds";
  }
  Instrument& instrument = family->instruments[sorted];
  if (instrument.histogram == nullptr) {
    instrument.histogram.reset(new Histogram(std::move(bounds)));
  }
  return instrument.histogram.get();
}

uint64_t MetricRegistry::AddScrapeHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mutex_);
  uint64_t id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  return id;
}

void MetricRegistry::RemoveScrapeHook(uint64_t id) {
  std::lock_guard<std::mutex> lock(hooks_mutex_);
  hooks_.erase(id);
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  // Run the scrape hooks first, outside the registry lock: they refresh
  // time-derived gauges via lock-free Set, then the locked merge below
  // reads the fresh values.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook();

  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instrument] : family.instruments) {
      MetricSnapshot metric;
      metric.name = name;
      metric.help = family.help;
      metric.type = family.type;
      metric.labels = labels;
      switch (family.type) {
        case MetricType::kCounter:
          metric.value = instrument.counter->Value();
          break;
        case MetricType::kGauge:
          metric.value = instrument.gauge->Value();
          break;
        case MetricType::kHistogram:
          metric.histogram = instrument.histogram->Snapshot();
          break;
      }
      snapshot.metrics.push_back(std::move(metric));
    }
  }
  return snapshot;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace goalrec::obs
