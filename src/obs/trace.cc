#include "obs/trace.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace goalrec::obs {
namespace {

thread_local Trace* g_current_trace = nullptr;

std::string FormatDoubleValue(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

Trace::Trace(std::string name)
    : name_(std::move(name)), epoch_(std::chrono::steady_clock::now()) {}

int64_t Trace::ElapsedNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<size_t>& Trace::OpenStackLocked() {
  std::thread::id me = std::this_thread::get_id();
  for (auto& [thread, stack] : open_stacks_) {
    if (thread == me) return stack;
  }
  open_stacks_.emplace_back(me, std::vector<size_t>());
  return open_stacks_.back().second;
}

size_t Trace::StartSpan(std::string_view name) {
  TraceSpan span;
  span.name = std::string(name);
  span.start_ns = ElapsedNs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t>& open_stack = OpenStackLocked();
  span.parent = open_stack.empty() ? TraceSpan::kNoParent : open_stack.back();
  spans_.push_back(std::move(span));
  size_t id = spans_.size() - 1;
  open_stack.push_back(id);
  return id;
}

void Trace::EndSpan(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  GOALREC_CHECK(id < spans_.size());
  if (spans_[id].end_ns >= 0) return;  // idempotent close
  std::vector<size_t>& open_stack = OpenStackLocked();
  GOALREC_CHECK(!open_stack.empty() && open_stack.back() == id)
      << "spans must close innermost-first; open span "
      << (open_stack.empty() ? "<none>" : spans_[open_stack.back()].name)
      << " while closing " << spans_[id].name;
  spans_[id].end_ns = ElapsedNs();
  open_stack.pop_back();
}

void Trace::Annotate(size_t span_id, std::string_view key,
                     std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  GOALREC_CHECK(span_id < spans_.size());
  spans_[span_id].annotations.push_back(Annotation{
      std::string(key), std::string(value), Annotation::Kind::kString});
}

void Trace::Annotate(size_t span_id, std::string_view key, const char* value) {
  Annotate(span_id, key, std::string_view(value));
}

void Trace::Annotate(size_t span_id, std::string_view key, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  GOALREC_CHECK(span_id < spans_.size());
  spans_[span_id].annotations.push_back(Annotation{
      std::string(key), std::to_string(value), Annotation::Kind::kInt});
}

void Trace::Annotate(size_t span_id, std::string_view key, uint64_t value) {
  Annotate(span_id, key, static_cast<int64_t>(value));
}

void Trace::Annotate(size_t span_id, std::string_view key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  GOALREC_CHECK(span_id < spans_.size());
  spans_[span_id].annotations.push_back(Annotation{
      std::string(key), FormatDoubleValue(value), Annotation::Kind::kDouble});
}

void Trace::Annotate(size_t span_id, std::string_view key, bool value) {
  std::lock_guard<std::mutex> lock(mu_);
  GOALREC_CHECK(span_id < spans_.size());
  spans_[span_id].annotations.push_back(Annotation{
      std::string(key), value ? "true" : "false", Annotation::Kind::kBool});
}

Trace* CurrentTrace() { return g_current_trace; }

ScopedTraceActivation::ScopedTraceActivation(Trace* trace)
    : previous_(g_current_trace) {
  g_current_trace = trace;
}

ScopedTraceActivation::~ScopedTraceActivation() {
  g_current_trace = previous_;
}

TraceSampler::TraceSampler(double rate) : rate_(rate) {
  if (!(rate > 0.0)) {
    period_ = 0;
  } else if (rate >= 1.0) {
    period_ = 1;
  } else {
    period_ = static_cast<uint64_t>(std::llround(1.0 / rate));
    if (period_ == 0) period_ = 1;
  }
}

bool TraceSampler::Sample() {
  if (period_ == 0) return false;
  if (period_ == 1) return true;
  uint64_t n = calls_.fetch_add(1, std::memory_order_relaxed);
  return n % period_ == 0;
}

}  // namespace goalrec::obs
