#ifndef GOALREC_OBS_EXEMPLAR_H_
#define GOALREC_OBS_EXEMPLAR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // kObsEnabled
#include "obs/recorder.h"
#include "obs/trace.h"

// Tail exemplar capture: the bridge from "the p99.9 bucket has counts" to
// "here is the query that put them there". The serving engine asks
// WorthCapturing() after every served query; for the K slowest per
// (strategy, rung) key it retains the query's full span tree, its flight
// recorder slice, and the workspace counters that explain *why* it was slow
// (candidate-set size, impls/slots touched, dense fallbacks taken). statusz
// renders the reservoir, and the exemplar ids are the trace_ids attached to
// the Prometheus latency buckets (OpenMetrics exemplars), so a dashboard's
// worst bucket links straight back to a decodable query.
//
// Hot-path cost. WorthCapturing is one relaxed load and a compare against a
// *global* floor — the smallest latency that could possibly displace any
// retained exemplar (kept conservative: the min over keys, with a
// not-yet-full key pinning it at zero). Queries below the floor — in steady
// state, all but a handful per histogram refresh — never touch the mutex or
// allocate. Only an actual tail event pays for the copy.

namespace goalrec::obs {

/// Why-slow counters copied out of the query workspace at capture time.
struct WorkspaceStats {
  uint32_t h_size = 0;           // |H|: candidate impls considered
  uint32_t touched_impls = 0;    // impl accumulators scattered into
  uint32_t touched_slots = 0;    // goal-space slots touched
  uint32_t dense_fallbacks = 0;  // candidates scored via the dense path
};

/// One retained slow query.
struct TailExemplar {
  /// Reservoir key, `<strategy>` or `<strategy>/<rung>` as chosen by the
  /// engine (rung name today).
  std::string key;
  /// Query id == the trace_id exported on the histogram bucket.
  uint64_t id = 0;
  double latency_us = 0.0;
  uint64_t snapshot_version = 0;
  /// FlightRecorder::NowNs() at capture.
  int64_t captured_ts_ns = 0;
  WorkspaceStats stats;
  /// Full span tree (may be null when the query was not traced).
  std::shared_ptr<Trace> trace;
  /// The serving thread's recorder slice covering this query.
  std::vector<RecorderEvent> events;
};

class ExemplarReservoir {
 public:
  /// Keeps the `capacity_per_key` slowest queries per key.
  explicit ExemplarReservoir(size_t capacity_per_key = 4);
  ExemplarReservoir(const ExemplarReservoir&) = delete;
  ExemplarReservoir& operator=(const ExemplarReservoir&) = delete;

  /// True when a query of this latency could enter the reservoir. One
  /// relaxed load; the engine gates all capture work on it. Always false
  /// under GOALREC_OBS_NOOP.
  bool WorthCapturing(double latency_us) const {
    if constexpr (!kObsEnabled) return false;
    return latency_us >= floor_us_.load(std::memory_order_relaxed);
  }

  /// Inserts if `exemplar.latency_us` ranks among the key's K slowest;
  /// otherwise drops it (WorthCapturing is conservative — a racing faster
  /// query may get here and lose). Returns whether it was retained.
  bool Offer(TailExemplar exemplar);

  /// All retained exemplars, slowest first within each key.
  std::vector<TailExemplar> Snapshot() const;

  /// Pins the fast-path floor. The overhead bench raises it to +inf so the
  /// steady-state path is measured without reservoir churn; a restart of
  /// capture requires re-Offer traffic above the pin.
  void set_floor_us(double floor_us) {
    floor_us_.store(floor_us, std::memory_order_relaxed);
  }
  double floor_us() const {
    return floor_us_.load(std::memory_order_relaxed);
  }

  size_t capacity_per_key() const { return capacity_per_key_; }

  /// Total retained exemplars across keys.
  size_t size() const;

 private:
  /// Recomputes floor_us_ from the retained set. Caller holds mu_.
  void RecomputeFloorLocked();

  const size_t capacity_per_key_;
  /// Smallest latency that could displace a retained exemplar; 0 while any
  /// key is below capacity.
  std::atomic<double> floor_us_{0.0};

  struct KeyBucket {
    std::string key;
    /// Unordered; Offer evicts the minimum when full.
    std::vector<TailExemplar> slots;
  };

  mutable std::mutex mu_;
  std::vector<KeyBucket> buckets_;  // linear scan; a handful of keys
};

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_EXEMPLAR_H_
