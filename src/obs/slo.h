#ifndef GOALREC_OBS_SLO_H_
#define GOALREC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

// Rolling SLO accounting against the serving deadline. The tracker holds a
// ring of per-second (good, total) buckets covering the last 30 minutes and
// reads three standard burn-rate windows out of it — 1 m, 5 m, 30 m — the
// multi-window alerting shape from the SRE workbook: the short window
// catches a fast burn, the long one keeps a slow leak from hiding between
// alerts.
//
// Definitions. A query is *good* when it finished OK and met its deadline
// (the serving engine feeds this; see EngineOptions::slo). With objective o
// (say 0.999), the error budget fraction is 1 − o, and
//
//   burn_rate(W) = bad_fraction(W) / (1 − o)
//
// — burn rate 1.0 spends the budget exactly at the sustainable pace, 14.4
// burns a 30-day budget in ~2 days (the classic page threshold).
//
// Cost. Record() is a mutex acquire, a couple of integer bumps and (once a
// second) a gauge refresh — per *query*, not per ranked candidate, so it is
// invisible next to a scoring pass. Gauges are integers, so ratios export
// in parts-per-million and burn rates in millis (documented in the help
// strings and docs/observability.md).

namespace goalrec::obs {

struct SloOptions {
  /// Good-event objective in (0, 1): 0.999 = "99.9% of queries good".
  double objective = 0.999;
  /// Registry for goalrec_slo_* metrics; null = MetricRegistry::Default().
  /// Not owned; must outlive the tracker.
  MetricRegistry* metrics = nullptr;
  /// Test seam: monotonic seconds. Defaults to the flight recorder's coarse
  /// clock divided down.
  std::function<int64_t()> now_s;
};

/// One window's reading, as rendered by statusz and the gauges.
struct SloWindowReport {
  int window_s = 0;
  int64_t good = 0;
  int64_t total = 0;
  /// good/total, or 1.0 when the window saw no events (no traffic spends
  /// no budget).
  double good_ratio = 1.0;
  /// bad_fraction / (1 - objective).
  double burn_rate = 0.0;
};

class SloTracker {
 public:
  /// The standard multi-window set, seconds. kWindows[2] is also the ring
  /// span — nothing older is retained.
  static constexpr int kWindows[3] = {60, 300, 1800};

  explicit SloTracker(SloOptions options = {});
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Accounts one finished query. Thread-safe.
  void Record(bool good);

  /// Readings for all three windows, shortest first.
  std::vector<SloWindowReport> Report() const;

  /// One window (must be one of kWindows).
  SloWindowReport Window(int window_s) const;

  /// Pushes the current window readings into the goalrec_slo_* gauges.
  /// Record() also does this when the clock ticks over a second; call it
  /// before an on-demand scrape (statusz does).
  void RefreshGauges();

  double objective() const { return objective_; }

 private:
  struct Bucket {
    int64_t good = 0;
    int64_t total = 0;
  };

  /// Rotates the ring up to `now`, zeroing skipped seconds. Caller holds
  /// mu_. Const because every reader must advance first — a quiet period
  /// would otherwise report windows ending at the last write.
  void AdvanceLocked(int64_t now) const;
  SloWindowReport WindowLocked(int window_s) const;
  void RefreshGaugesLocked();

  double objective_;
  std::function<int64_t()> now_s_;

  mutable std::mutex mu_;
  mutable std::vector<Bucket> ring_;  // kWindows[2] one-second buckets
  mutable int64_t current_second_ = 0;

  Counter* good_events_ = nullptr;
  Counter* bad_events_ = nullptr;
  /// Indexed like kWindows.
  Gauge* good_ratio_ppm_[3] = {};
  Gauge* burn_rate_milli_[3] = {};
};

/// The gauge label for a window: 60 -> "1m", 300 -> "5m", 1800 -> "30m".
const char* SloWindowLabel(int window_s);

}  // namespace goalrec::obs

#endif  // GOALREC_OBS_SLO_H_
