#include "obs/dumper.h"

#include <cstdio>

#include "obs/export.h"
#include "util/logging.h"

namespace goalrec::obs {

PeriodicDumper::PeriodicDumper(const MetricRegistry* registry,
                               std::string path, Options options)
    : registry_(registry), path_(std::move(path)), options_(std::move(options)) {
  GOALREC_CHECK(registry_ != nullptr || options_.producer != nullptr);
  GOALREC_CHECK(options_.interval.count() > 0);
  if (options_.write_file == nullptr) {
    options_.write_file = WriteSnapshotFile;
  }
  thread_ = std::thread([this] { Loop(); });
}

PeriodicDumper::~PeriodicDumper() {
  Stop();
  thread_.join();
  DumpNow();
}

void PeriodicDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
}

size_t PeriodicDumper::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

bool PeriodicDumper::DumpNow() {
  std::string contents =
      options_.producer != nullptr ? options_.producer()
      : options_.format == Format::kJson ? ExportJson(*registry_)
                                         : ExportPrometheus(*registry_);
  bool ok;
  if (path_ == "-") {
    ok = options_.write_file(path_, contents);
  } else {
    // Write-then-rename so readers never observe a truncated snapshot; a
    // failed write leaves at most a stale .tmp, never a partial `path_`.
    std::string tmp = path_ + ".tmp";
    ok = options_.write_file(tmp, contents) &&
         std::rename(tmp.c_str(), path_.c_str()) == 0;
    if (!ok) {
      GOALREC_LOG(ERROR) << "metrics dump failed"
                         << goalrec::util::Kv("path", path_);
    }
  }
  if (ok) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++dumps_;
  }
  return ok;
}

void PeriodicDumper::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (wake_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    DumpNow();
    lock.lock();
  }
}

}  // namespace goalrec::obs
