// Table 2: overlap of the top-10 lists of the goal-based mechanisms with the
// content-based and collaborative-filtering baselines, on both datasets.
//
// Paper values (top-10): every goal-based/baseline overlap is below 2.5% on
// FoodMart (e.g. BestMatch vs Content 2.31%, vs CF-MF 0.85%, vs CF-kNN
// 0.34%) and below 0.3% on 43T.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

using goalrec::bench::PreparedDataset;

void Run(const char* label, PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs,
                             goalrec::bench::DefaultSuiteOptions(scale));
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  goalrec::eval::OverlapReport report =
      goalrec::eval::ComputeOverlap(results);
  std::printf("%s", goalrec::eval::RenderOverlap(report).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Table 2 — overlap of goal-based top-10 lists with standard "
      "recommenders",
      "goal-based vs Content/CF overlaps are all small (paper: <2.5% "
      "FoodMart, <0.3% 43T), far below goal-based internal agreement");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference (FoodMart): BestMatch/Content 2.31%%, "
      "BestMatch/CF-MF 0.85%%, BestMatch/CF-kNN 0.34%%\n"
      "paper reference (43T): all goal-based/CF overlaps <= 0.26%%\n");
  return 0;
}
