// Micro-benchmarks for the index structures of §4: building the library and
// answering the three space queries (Equations 1–2) at different
// connectivity regimes.

#include <benchmark/benchmark.h>

#include "eval/scaling.h"
#include "model/library.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using goalrec::eval::BuildScalingLibrary;
using goalrec::eval::ScalingWorkload;

ScalingWorkload Workload(uint32_t impls, uint32_t actions) {
  ScalingWorkload w;
  w.num_implementations = impls;
  w.num_actions = actions;
  w.implementation_size = 6;
  return w;
}

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint32_t size,
                                      uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < size) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

void BM_BuildLibrary(benchmark::State& state) {
  ScalingWorkload w =
      Workload(static_cast<uint32_t>(state.range(0)),
               static_cast<uint32_t>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildScalingLibrary(w, 3));
  }
}
BENCHMARK(BM_BuildLibrary)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The space queries at low (~12) and high (~600) connectivity.
void BM_ImplementationSpace(benchmark::State& state) {
  goalrec::model::ImplementationLibrary lib = BuildScalingLibrary(
      Workload(50000, static_cast<uint32_t>(state.range(0))), 4);
  goalrec::model::Activity h = MakeActivity(lib.num_actions(), 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.ImplementationSpace(h));
  }
}
BENCHMARK(BM_ImplementationSpace)->Arg(25000)->Arg(500);

void BM_GoalSpace(benchmark::State& state) {
  goalrec::model::ImplementationLibrary lib = BuildScalingLibrary(
      Workload(50000, static_cast<uint32_t>(state.range(0))), 4);
  goalrec::model::Activity h = MakeActivity(lib.num_actions(), 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.GoalSpace(h));
  }
}
BENCHMARK(BM_GoalSpace)->Arg(25000)->Arg(500);

void BM_ActionSpace(benchmark::State& state) {
  goalrec::model::ImplementationLibrary lib = BuildScalingLibrary(
      Workload(50000, static_cast<uint32_t>(state.range(0))), 4);
  goalrec::model::Activity h = MakeActivity(lib.num_actions(), 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.ActionSpace(h));
  }
}
BENCHMARK(BM_ActionSpace)->Arg(25000)->Arg(500);

void BM_CandidateActions(benchmark::State& state) {
  goalrec::model::ImplementationLibrary lib = BuildScalingLibrary(
      Workload(50000, static_cast<uint32_t>(state.range(0))), 4);
  goalrec::model::Activity h = MakeActivity(lib.num_actions(), 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.CandidateActions(h));
  }
}
BENCHMARK(BM_CandidateActions)->Arg(25000)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
