// Table 4 / Figure 3: average goal completeness after the user follows the
// recommended actions (per-list min/avg/max of the goals' completeness,
// averaged across lists).
//
// Paper values (AvgAvg): FoodMart — Breadth 0.31, BestMatch 0.31,
// Focus_cmp 0.28, Focus_cl 0.25 vs Content 0.14, CF-kNN 0.11, CF-MF 0.10.
// 43T — Focus_cmp 0.68, Breadth 0.58, BestMatch 0.57, Focus_cl 0.55 vs
// CF around 0.37. (Numbers read from Figure 3's bars; the shape — goal-based
// above every baseline, Breadth/BestMatch leading FoodMart, Focus_cmp
// leading 43T — is the reproduction target.)

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs,
                             goalrec::bench::DefaultSuiteOptions(scale));
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::vector<goalrec::eval::CompletenessRow> rows =
      goalrec::eval::ComputeCompleteness(prepared.dataset.library,
                                         prepared.users, results);
  std::printf("%s", goalrec::eval::RenderCompleteness(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Table 4 / Figure 3 — goal completeness after following the lists",
      "goal-based strategies beat every baseline; Breadth/BestMatch lead on "
      "FoodMart, Focus_cmp leads on 43T (true goals known there)");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference (AvgAvg): FoodMart Breadth/BestMatch ~0.31 vs CF "
      "~0.10; 43T Focus_cmp ~0.68 vs CF ~0.37\n");
  return 0;
}
