// Table 6: overlap among the four goal-based mechanisms' top-10 lists.
//
// Paper values: BestMatch↔Breadth 98% (FoodMart) / 79% (43T);
// Focus_cmp↔Focus_cl 35.6% / 78%; Focus↔{Breadth, BestMatch} above 40% /
// above 70%. The FoodMart BestMatch↔Breadth agreement is higher because high
// connectivity makes Breadth consider (almost) the whole goal space, like
// BestMatch.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::SuiteOptions options;
  options.include_cf_knn = false;
  options.include_cf_mf = false;
  options.include_content = false;
  goalrec::eval::Suite suite(&prepared.dataset, {}, options);
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  goalrec::eval::OverlapReport report =
      goalrec::eval::ComputeOverlap(results);
  std::printf("%s", goalrec::eval::RenderOverlap(report).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Table 6 — result overlap of the goal-based methods",
      "BestMatch↔Breadth is the highest pair (higher on FoodMart than 43T); "
      "Focus variants agree with each other and partially with the rest");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale));
  Run("43Things", goalrec::bench::PrepareFortyThree(scale));
  std::printf(
      "\npaper reference: BestMatch/Breadth 98%% (FoodMart), 79%% (43T); "
      "Focus_cmp/Focus_cl 35.6%% / 78%%; Focus vs Breadth/BestMatch >40%% / "
      ">70%%\n");
  return 0;
}
