// Figure 6: the implementation-set frequency of the actions the goal-based
// mechanisms retrieve — are the recommended actions the "celebrities" of the
// library?
//
// Paper shape: no. More than 92% of all retrieved actions occur in less than
// 20% of the implementations; actions that are frequent in the library but
// always with different co-actions are not favoured.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::SuiteOptions options =
      goalrec::bench::DefaultSuiteOptions(scale);
  options.include_cf_knn = false;
  options.include_cf_mf = false;
  options.include_content = false;
  goalrec::eval::Suite suite(&prepared.dataset, {}, options);
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::vector<goalrec::eval::FrequencyRow> rows =
      goalrec::eval::ComputeImplSetFrequency(prepared.dataset.library,
                                             results);
  std::printf("%s", goalrec::eval::RenderFrequency(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Figure 6 — implementation-set frequency of retrieved actions",
      "the great majority (paper: >92%) of retrieved actions appear in "
      "<20% of implementations");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference: >92%% of retrieved actions below 0.2 "
      "implementation-set frequency for every goal-based mechanism\n");
  return 0;
}
