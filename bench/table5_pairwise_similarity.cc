// Table 5: pairwise feature-based similarity among the actions within each
// top-10 recommendation list (FoodMart only — 43T has no accepted features).
//
// Paper values (AvgAvg / AvgMax / AvgMin): Content 0.81 / 1 / 0.6,
// CF-kNN 0.16 / 0.5 / 0.05, CF-MF 0.15 / 0.77 / 0.04,
// BestMatch 0.33 / 0.72 / 0.22, Focus_cmp 0.24 / 0.31 / 0.21,
// Focus_cl 0.24 / 0.34 / 0.19, Breadth 0.33 / 0.73 / 0.22.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Table 5 — pairwise feature similarity within each list (FoodMart)",
      "Content ≈ 0.8 (homogeneous lists) ≫ goal-based (0.2–0.35) ≳ CF "
      "(~0.15): goal-based lists are diverse but not random");
  goalrec::bench::PreparedDataset prepared =
      goalrec::bench::PrepareFoodmart(scale);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs,
                             goalrec::bench::DefaultSuiteOptions(scale));
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::vector<goalrec::eval::SimilarityRow> rows =
      goalrec::eval::ComputePairwiseSimilarity(prepared.dataset.features,
                                               results);
  std::printf("%s", goalrec::eval::RenderSimilarity(rows).c_str());
  std::printf(
      "\npaper reference: Content 0.81/1.00/0.60, CF-kNN 0.16/0.50/0.05, "
      "CF-MF 0.15/0.77/0.04, BestMatch 0.33/0.72/0.22, Breadth "
      "0.33/0.73/0.22, Focus_cmp 0.24/0.31/0.21, Focus_cl 0.24/0.34/0.19\n");
  return 0;
}
