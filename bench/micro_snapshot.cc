// Snapshot/zero-allocation benchmark for the CSR library refactor. Measures
// the three claims the snapshot PR makes (single JSON document on stdout;
// see BENCH_snapshot.json for a recorded run):
//
//   1. Build cost: LibraryBuilder::Build + MakeSnapshot wall time for a
//      scaling-workload library — the price of a hot reload.
//   2. Query-path allocations: global operator new is instrumented with a
//      counter; each strategy is measured cold (Recommend, which builds a
//      context and result per call) and pooled (RecommendPooled over one
//      warmed QueryWorkspace and a reused output list). After warm-up the
//      pooled path must perform ZERO heap allocations per query — the
//      process exits non-zero if it does not, so scripts/check.sh --smoke
//      doubles as a regression gate.
//   3. Swap under load: closed-loop query threads against a snapshot-mode
//      ServingEngine while a reloader alternates two libraries through
//      SnapshotManager; query p50/p99 with and without concurrent reloads.
//      Lock-free acquire means reloads must not move the tail.
//
// Flags: --smoke (small library, short sweep; CI), --seed, --queries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_workspace.h"
#include "core/recommender.h"
#include "eval/scaling.h"
#include "model/snapshot.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot_manager.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

// --- Global allocation counter ----------------------------------------------
//
// Counts every operator new in the process. Section 2 takes deltas around
// single-threaded query loops, so background noise is zero by construction.

namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC pairs an inlined caller's new-expression with the free() below and
// reports -Wmismatched-new-delete; the pair is in fact matched, since the
// operator new above allocates with malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using Clock = std::chrono::steady_clock;

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < 8) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

struct AllocPoint {
  std::string name;
  double fresh_allocs_per_query = 0.0;
  double pooled_warmup_allocs = 0.0;  // total during the warm-up queries
  int64_t pooled_steady_allocs = 0;   // total across all measured queries
};

/// Allocation profile of one strategy over `activities`: cold path vs pooled
/// steady state. Warm-up is one full pass over the query stream (all scratch
/// buffers reach their high-water capacity); steady state replays the same
/// stream and must not allocate at all.
AllocPoint MeasureAllocations(const std::string& name,
                              const goalrec::core::Recommender& recommender,
                              const std::vector<goalrec::model::Activity>& activities,
                              size_t k) {
  AllocPoint point;
  point.name = name;

  int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const goalrec::model::Activity& h : activities) {
    goalrec::core::RecommendationList list = recommender.Recommend(h, k);
    (void)list;
  }
  int64_t after = g_allocations.load(std::memory_order_relaxed);
  point.fresh_allocs_per_query = static_cast<double>(after - before) /
                                 static_cast<double>(activities.size());

  goalrec::core::QueryWorkspace workspace;
  goalrec::core::RecommendationList out;
  before = g_allocations.load(std::memory_order_relaxed);
  for (const goalrec::model::Activity& h : activities) {
    recommender.RecommendPooled(h, k, nullptr, &workspace, out);
  }
  after = g_allocations.load(std::memory_order_relaxed);
  point.pooled_warmup_allocs = static_cast<double>(after - before);

  before = g_allocations.load(std::memory_order_relaxed);
  for (const goalrec::model::Activity& h : activities) {
    recommender.RecommendPooled(h, k, nullptr, &workspace, out);
  }
  after = g_allocations.load(std::memory_order_relaxed);
  point.pooled_steady_allocs = after - before;
  return point;
}

struct SwapPoint {
  int64_t queries = 0;
  int64_t reloads = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Closed-loop query threads against a snapshot-mode engine; when `reloads`
/// is positive a reloader thread alternates two equal-shape libraries for
/// the duration of the run.
SwapPoint RunSwapUnderLoad(goalrec::serve::SnapshotManager& manager,
                           std::shared_ptr<const goalrec::model::LibrarySnapshot> a,
                           std::shared_ptr<const goalrec::model::LibrarySnapshot> b,
                           int threads, int queries_per_thread, int reloads,
                           uint64_t seed) {
  goalrec::obs::MetricRegistry registry;
  goalrec::serve::EngineOptions options;
  options.metrics = &registry;
  goalrec::serve::ServingEngine engine(&manager, options);
  uint32_t num_actions = a->library.num_actions();

  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::atomic<bool> querying{true};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<double>& mine = latencies[static_cast<size_t>(t)];
      mine.reserve(static_cast<size_t>(queries_per_thread));
      for (int q = 0; q < queries_per_thread; ++q) {
        goalrec::model::Activity activity = MakeActivity(
            num_actions,
            seed + static_cast<uint64_t>(t) * 1000003 + static_cast<uint64_t>(q));
        Clock::time_point start = Clock::now();
        auto served = engine.Serve(activity, 10);
        if (served.ok()) {
          mine.push_back(
              static_cast<double>((Clock::now() - start).count()) / 1e6);
        }
      }
    });
  }
  std::thread reloader;
  int64_t reloads_done = 0;
  if (reloads > 0) {
    reloader = std::thread([&] {
      // Keep swapping for as long as the queriers run; stop at the cap.
      for (int i = 0; i < reloads && querying.load(std::memory_order_relaxed);
           ++i) {
        if (manager.Reload(i % 2 == 0 ? b : a).ok()) ++reloads_done;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  querying.store(false);
  if (reloader.joinable()) reloader.join();

  SwapPoint point;
  point.reloads = reloads_done;
  std::vector<double> all;
  for (const std::vector<double>& v : latencies) {
    point.queries += static_cast<int64_t>(v.size());
    all.insert(all.end(), v.begin(), v.end());
  }
  point.p50_ms = PercentileMs(all, 0.50);
  point.p99_ms = PercentileMs(all, 0.99);
  return point;
}

void SingleRungLadder(const goalrec::model::ImplementationLibrary& library,
                      goalrec::serve::ServingSnapshot& out) {
  auto best = std::make_unique<goalrec::core::BestMatchRecommender>(&library);
  out.rungs.push_back({"best_match", best.get()});
  out.owned.push_back(std::move(best));
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 29));
  const size_t queries =
      static_cast<size_t>(IntFlag(flags, "queries", smoke ? 200 : 2000));
  const size_t k = 10;

  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 20000 : 50000;
  workload.num_actions = 5000;
  workload.implementation_size = 6;

  // 1. Build + snapshot wrap time (the cost of a hot reload, minus IO).
  Clock::time_point build_start = Clock::now();
  goalrec::model::ImplementationLibrary lib =
      goalrec::eval::BuildScalingLibrary(workload, 9);
  std::shared_ptr<const goalrec::model::LibrarySnapshot> snapshot =
      goalrec::model::MakeSnapshot(std::move(lib), "bench");
  double build_ms =
      static_cast<double>((Clock::now() - build_start).count()) / 1e6;
  const goalrec::model::ImplementationLibrary& library = snapshot->library;

  std::printf("{\n  \"benchmark\": \"micro_snapshot\", \"smoke\": %s,\n",
              smoke ? "true" : "false");
  std::printf(
      "  \"build\": {\"num_implementations\": %u, \"num_actions\": %u, "
      "\"build_ms\": %.1f, \"snapshot_version\": %llu},\n",
      library.num_implementations(), library.num_actions(), build_ms,
      static_cast<unsigned long long>(snapshot->version));

  // 2. Per-query allocation counts, cold vs pooled steady state.
  std::vector<goalrec::model::Activity> activities;
  activities.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    activities.push_back(MakeActivity(library.num_actions(), seed + q));
  }
  goalrec::core::FocusRecommender focus_cmp(
      &library, goalrec::core::FocusVariant::kCompleteness);
  goalrec::core::FocusRecommender focus_cl(
      &library, goalrec::core::FocusVariant::kCloseness);
  goalrec::core::BreadthRecommender breadth(&library);
  goalrec::core::BestMatchRecommender best_match(&library);
  std::vector<AllocPoint> points;
  points.push_back(MeasureAllocations("Focus_cmp", focus_cmp, activities, k));
  points.push_back(MeasureAllocations("Focus_cl", focus_cl, activities, k));
  points.push_back(MeasureAllocations("Breadth", breadth, activities, k));
  points.push_back(MeasureAllocations("BestMatch", best_match, activities, k));
  std::printf(
      "  \"allocations\": {\"queries\": %zu, \"warmup_queries\": %zu, "
      "\"strategies\": [\n",
      queries, queries);
  bool steady_state_clean = true;
  for (size_t i = 0; i < points.size(); ++i) {
    const AllocPoint& p = points[i];
    if (p.pooled_steady_allocs != 0) steady_state_clean = false;
    std::printf(
        "    {\"name\": \"%s\", \"fresh_allocs_per_query\": %.1f, "
        "\"pooled_warmup_allocs\": %.0f, \"pooled_steady_allocs\": %lld}%s\n",
        p.name.c_str(), p.fresh_allocs_per_query, p.pooled_warmup_allocs,
        static_cast<long long>(p.pooled_steady_allocs),
        i + 1 == points.size() ? "" : ",");
  }
  std::printf("  ]},\n");

  // 3. Swap under load: p50/p99 with a quiet manager vs. one being reloaded
  // as fast as the reloader can go.
  goalrec::eval::ScalingWorkload alt = workload;
  std::shared_ptr<const goalrec::model::LibrarySnapshot> other =
      goalrec::model::MakeSnapshot(
          goalrec::eval::BuildScalingLibrary(alt, 10), "bench-alt");
  const int threads = 4;
  const int queries_per_thread = smoke ? 100 : 1000;
  const int reloads = smoke ? 50 : 500;
  goalrec::serve::SnapshotManager manager(snapshot, SingleRungLadder);
  SwapPoint quiet = RunSwapUnderLoad(manager, snapshot, other, threads,
                                     queries_per_thread, /*reloads=*/0, seed);
  SwapPoint swapping = RunSwapUnderLoad(manager, snapshot, other, threads,
                                        queries_per_thread, reloads, seed);
  std::printf(
      "  \"swap_under_load\": {\"threads\": %d, \"queries_per_thread\": %d,\n"
      "    \"no_reload\": {\"queries\": %lld, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f},\n"
      "    \"with_reloads\": {\"queries\": %lld, \"reloads\": %lld, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f}},\n",
      threads, queries_per_thread, static_cast<long long>(quiet.queries),
      quiet.p50_ms, quiet.p99_ms, static_cast<long long>(swapping.queries),
      static_cast<long long>(swapping.reloads), swapping.p50_ms,
      swapping.p99_ms);
  std::printf("  \"pooled_steady_state_zero_alloc\": %s\n}\n",
              steady_state_clean ? "true" : "false");

  if (!steady_state_clean) {
    std::fprintf(stderr,
                 "FAIL: pooled query path allocated in steady state\n");
    return 1;
  }
  return 0;
}
