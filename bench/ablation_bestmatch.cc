// Ablation: Best Match design choices. The paper fixes Eq. 8
// (implementation-count vectors) and an unspecified distance (we default to
// Euclidean); this bench compares the boolean Eq. 7 representation and the
// three distance metrics on both datasets, reporting goal completeness
// (Table 4's metric) and each variant's overlap with the paper-default
// configuration.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/best_match.h"
#include "eval/metrics.h"
#include "eval/reports.h"
#include "eval/table.h"
#include "util/thread_pool.h"

namespace {

struct Variant {
  std::string label;
  goalrec::core::BestMatchOptions options;
};

std::vector<Variant> Variants() {
  using goalrec::core::GoalVectorRepresentation;
  using goalrec::util::DistanceMetric;
  std::vector<Variant> variants;
  auto add = [&](const char* label, GoalVectorRepresentation representation,
                 DistanceMetric metric) {
    goalrec::core::BestMatchOptions options;
    options.representation = representation;
    options.metric = metric;
    variants.push_back(Variant{label, options});
  };
  add("counts+euclidean (paper)",
      GoalVectorRepresentation::kImplementationCount,
      DistanceMetric::kEuclidean);
  add("counts+manhattan", GoalVectorRepresentation::kImplementationCount,
      DistanceMetric::kManhattan);
  add("counts+cosine", GoalVectorRepresentation::kImplementationCount,
      DistanceMetric::kCosine);
  add("boolean+euclidean (Eq. 7)", GoalVectorRepresentation::kBoolean,
      DistanceMetric::kEuclidean);
  add("boolean+cosine", GoalVectorRepresentation::kBoolean,
      DistanceMetric::kCosine);
  return variants;
}

void Run(const char* label, goalrec::bench::PreparedDataset prepared) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);

  std::vector<goalrec::eval::MethodResult> results;
  for (const Variant& variant : Variants()) {
    goalrec::core::BestMatchRecommender best_match(&prepared.dataset.library,
                                                   variant.options);
    goalrec::eval::MethodResult result;
    result.name = variant.label;
    result.lists.resize(prepared.inputs.size());
    goalrec::util::ParallelFor(prepared.inputs.size(), [&](size_t u) {
      result.lists[u] = best_match.Recommend(prepared.inputs[u], 10);
    });
    results.push_back(std::move(result));
  }

  std::vector<goalrec::eval::CompletenessRow> completeness =
      goalrec::eval::ComputeCompleteness(prepared.dataset.library,
                                         prepared.users, results);
  goalrec::eval::TextTable table(
      {"variant", "completeness AvgAvg", "overlap w/ paper default"});
  for (size_t v = 0; v < results.size(); ++v) {
    table.AddRow({results[v].name,
                  goalrec::eval::FormatDouble(completeness[v].avg_avg, 3),
                  goalrec::eval::FormatPercent(
                      goalrec::eval::MeanListOverlap(results[0].lists,
                                                     results[v].lists),
                      1)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Ablation — Best Match vector representation and distance metric",
      "Eq. 8 + Euclidean (the paper default) is competitive; variants mostly "
      "reorder ties, so overlaps with the default stay high");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale));
  Run("43Things", goalrec::bench::PrepareFortyThree(scale));
  return 0;
}
