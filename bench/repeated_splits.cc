// Robustness check: the paper evaluates one 30/70 split; this bench re-runs
// the full roster across five split seeds and reports mean ± std of the
// Figure 4 (TPR) and Table 4 (completeness) metrics. Expected shape: the
// qualitative orderings of the single-split experiments hold under every
// seed (std-devs are small relative to the between-method gaps).

#include <cstdio>

#include "bench/common.h"
#include "eval/repeated.h"

namespace {

void Run(const char* label, const goalrec::data::Dataset& dataset,
         double visible_fraction, goalrec::bench::Scale scale) {
  std::printf("\n--- %s (visible fraction %.2f, 5 split seeds) ---\n", label,
              visible_fraction);
  goalrec::eval::RepeatedOptions options;
  options.visible_fraction = visible_fraction;
  options.suite = goalrec::bench::DefaultSuiteOptions(scale);
  std::printf("%s", goalrec::eval::RenderRepeated(
                        goalrec::eval::RunRepeated(dataset, options))
                        .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Robustness — Figure 4 / Table 4 metrics across five 30/70 splits",
      "method orderings are split-stable (std << between-method gaps)");
  goalrec::data::Dataset foodmart =
      goalrec::data::GenerateFoodmart(goalrec::bench::FoodmartAt(scale));
  goalrec::data::Dataset fortythree =
      goalrec::data::GenerateFortyThree(goalrec::bench::FortyThreeAt(scale));
  Run("FoodMart", foodmart, 0.3, scale);
  Run("43Things", fortythree, 0.3, scale);
  return 0;
}
