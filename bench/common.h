#ifndef GOALREC_BENCH_COMMON_H_
#define GOALREC_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/foodmart.h"
#include "data/fortythree.h"
#include "data/splitter.h"
#include "eval/suite.h"
#include "model/statistics.h"
#include "util/set_ops.h"

// Shared driver code for the experiment binaries (bench/table*_*, fig*_*).
// Every binary reproduces one table or figure of the paper: it builds the
// synthetic dataset(s), runs the full recommender roster, prints the measured
// numbers next to the paper's published values, and states the shape
// criterion being checked (see DESIGN.md §4).
//
// Binaries accept an optional `--scale=small|full` flag (default small, so
// `for b in build/bench/*; do $b; done` completes in minutes; full reproduces
// the paper-size datasets).

namespace goalrec::bench {

enum class Scale { kSmall, kFull };

inline Scale ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=full") == 0) return Scale::kFull;
    if (std::strcmp(argv[i], "--scale=small") == 0) return Scale::kSmall;
  }
  return Scale::kSmall;
}

/// FoodMart at the requested scale. Small keeps the structure (high
/// connectivity, 128→16 categories) at ~1/40 the size.
inline data::FoodmartOptions FoodmartAt(Scale scale) {
  if (scale == Scale::kFull) return data::FoodmartOptions{};
  // ~1/7 of the paper sizes with the same structure: high connectivity
  // (8000·9/260 ≈ 280 impls per active product) and ~9 products per
  // category so content lists can be homogeneous.
  data::FoodmartOptions options;
  options.num_products = 600;
  options.num_categories = 64;
  options.num_ingredient_products = 260;
  options.num_recipes = 8000;
  options.num_carts = 600;
  return options;
}

/// 43Things at the requested scale.
inline data::FortyThreeOptions FortyThreeAt(Scale scale) {
  if (scale == Scale::kFull) return data::FortyThreeOptions{};
  data::FortyThreeOptions options = data::SmallFortyThreeOptions();
  options.num_goals = 400;
  options.num_actions = 700;
  options.num_implementations = 1900;
  options.users_per_goal_count = {500, 180, 62, 60};
  return options;
}

struct PreparedDataset {
  data::Dataset dataset;
  std::vector<data::EvalUser> users;
  std::vector<model::Activity> inputs;
};

/// Generates and splits a dataset. FoodMart carts are used whole as inputs
/// (the paper feeds each cart as the current activity); 43T activities are
/// split 30/70 per §6.
inline PreparedDataset PrepareFoodmart(Scale scale) {
  PreparedDataset prepared;
  prepared.dataset = data::GenerateFoodmart(FoodmartAt(scale));
  prepared.users = data::SplitDataset(prepared.dataset, 1.0, 17);
  for (const data::EvalUser& user : prepared.users) {
    prepared.inputs.push_back(user.visible);
  }
  return prepared;
}

inline PreparedDataset PrepareFortyThree(Scale scale) {
  PreparedDataset prepared;
  prepared.dataset = data::GenerateFortyThree(FortyThreeAt(scale));
  prepared.users = data::SplitDataset(prepared.dataset, 0.3, 17);
  for (const data::EvalUser& user : prepared.users) {
    prepared.inputs.push_back(user.visible);
  }
  return prepared;
}

/// FoodMart variant split 30/70 — an alternative held-out protocol used by
/// the leave-one-out/supplementary experiments.
inline PreparedDataset PrepareFoodmartSplit(Scale scale) {
  PreparedDataset prepared;
  prepared.dataset = data::GenerateFoodmart(FoodmartAt(scale));
  prepared.users = data::SplitDataset(prepared.dataset, 0.3, 17);
  for (const data::EvalUser& user : prepared.users) {
    prepared.inputs.push_back(user.visible);
  }
  return prepared;
}

/// The paper's Figure 4 protocol for FoodMart: customers have up to 3 carts;
/// a whole cart is the input and the customer's *other* carts are the
/// ground truth ("we have more than one cart for the same user in different
/// time slots", §6.1.1 C.1.5). Only carts of multi-cart customers are
/// evaluated.
inline PreparedDataset PrepareFoodmartRepeatCustomers(Scale scale) {
  data::FoodmartOptions options = FoodmartAt(scale);
  options.repeat_customer_fraction = 0.6;
  PreparedDataset prepared;
  prepared.dataset = data::GenerateFoodmart(options);

  // Union of each customer's carts (customer ids are dense).
  uint32_t num_customers = 0;
  for (const data::UserRecord& user : prepared.dataset.users) {
    num_customers = std::max(num_customers, user.customer_id + 1);
  }
  std::vector<model::Activity> customer_union(num_customers);
  std::vector<uint32_t> cart_count(num_customers, 0);
  for (const data::UserRecord& user : prepared.dataset.users) {
    customer_union[user.customer_id] = goalrec::util::Union(
        customer_union[user.customer_id], user.full_activity);
    ++cart_count[user.customer_id];
  }
  for (const data::UserRecord& user : prepared.dataset.users) {
    if (cart_count[user.customer_id] < 2) continue;
    data::EvalUser eval_user;
    eval_user.visible = user.full_activity;
    eval_user.hidden = goalrec::util::Difference(
        customer_union[user.customer_id], user.full_activity);
    if (eval_user.hidden.empty()) continue;  // identical carts
    prepared.inputs.push_back(eval_user.visible);
    prepared.users.push_back(std::move(eval_user));
  }
  return prepared;
}

inline eval::SuiteOptions DefaultSuiteOptions(Scale scale) {
  eval::SuiteOptions options;
  if (scale == Scale::kSmall) {
    options.als.num_factors = 8;
    options.als.num_iterations = 5;
  }
  return options;
}

inline void PrintHeader(const std::string& title,
                        const std::string& shape_criterion) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("shape criterion: %s\n", shape_criterion.c_str());
  std::printf("==============================================================\n");
}

inline void PrintDatasetSummary(const PreparedDataset& prepared) {
  model::LibraryStats stats = model::ComputeStats(prepared.dataset.library);
  std::printf(
      "dataset %s: %u actions, %u goals, %u implementations, "
      "connectivity %.2f, %zu users\n",
      prepared.dataset.name.c_str(), stats.num_actions, stats.num_goals,
      stats.num_implementations, stats.connectivity, prepared.users.size());
}

}  // namespace goalrec::bench

#endif  // GOALREC_BENCH_COMMON_H_
