// Overload-protection benchmark: closed-loop load generator driving the
// serving ladder at and beyond saturation, with and without the admission
// controller + adaptive concurrency limiter + per-rung circuit breakers.
//
// Method (single JSON document on stdout; see BENCH_overload.json for a
// recorded run):
//   1. Capacity probe: one closed-loop client measures the no-load query
//      latency L; the saturation point is ~deadline/L concurrent clients.
//   2. Sweep: closed-loop client pools at 1x and 2x saturation, protected
//      and unprotected. Each client issues its next query the moment the
//      previous completes; a client whose query is shed
//      (kResourceExhausted) backs off one deadline before retrying, so
//      offered load stays comparable across configurations.
//   3. Goodput = full-quality (non-degraded) answers whose
//      arrival-to-completion time met the deadline, per second. Degraded
//      floor answers are excluded: a breaker brownout can serve hundreds of
//      thousands of microsecond floor answers that all "meet" the deadline
//      while delivering no ladder quality. Under overload an unprotected
//      engine drags every concurrent query past the deadline together
//      (goodput collapses); the protected engine sheds the excess fast and
//      keeps admitted queries at no-load latency.
//
// Flags: --duration_ms (per sweep point), --deadline_ms, --clients_cap,
// --seed, --smoke (short run for CI: scripts/check.sh invokes it).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/best_match.h"
#include "core/breadth.h"
#include "eval/scaling.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/engine.h"
#include "serve/popularity_floor.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < 8) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

struct LoadPoint {
  std::string name;
  int clients = 0;
  bool protected_mode = false;
  int64_t duration_ms = 0;
  int64_t completed = 0;   // OK answers
  int64_t good = 0;        // full-quality answers meeting the deadline
  int64_t shed = 0;        // kResourceExhausted rejections
  int64_t unavailable = 0; // every rung failed
  int64_t degraded = 0;    // served below the top rung
  double goodput_qps = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int final_limit = 0;          // adaptive limit at end of run (protected)
  int64_t breaker_opens = 0;    // open transitions across rungs (protected)
};

/// Runs `clients` closed-loop clients against a fresh ladder for
/// `duration_ms`. Protected mode puts an adaptive AdmissionController in
/// front and a CircuitBreaker on every non-final rung.
LoadPoint RunLoad(const std::string& name,
                  const goalrec::model::ImplementationLibrary& lib,
                  int clients, bool protected_mode, int64_t duration_ms,
                  int64_t deadline_ms, int initial_limit, double baseline_ms,
                  uint64_t seed) {
  goalrec::core::BestMatchRecommender best_match(&lib);
  goalrec::core::BreadthRecommender breadth(&lib);
  goalrec::serve::LibraryPopularityRecommender floor(&lib);

  goalrec::obs::MetricRegistry registry;
  std::optional<goalrec::serve::AdmissionController> admission;
  goalrec::serve::EngineOptions options;
  options.deadline_ms = deadline_ms;
  options.metrics = &registry;
  if (protected_mode) {
    goalrec::serve::AdmissionOptions admission_options;
    admission_options.initial_limit = initial_limit;
    admission_options.min_limit = 1;
    admission_options.max_limit = 64;
    admission_options.adaptive = true;
    admission_options.max_queue_interactive = 2 * clients;
    admission_options.max_queue_batch = clients;
    admission_options.metrics = &registry;
    // Seed the service-time estimate with the capacity probe's measurement
    // so the cold-start burst is shed instead of discovered via a round of
    // deadline misses.
    admission_options.initial_baseline = std::chrono::nanoseconds(
        static_cast<int64_t>(baseline_ms * 1e6));
    admission.emplace(admission_options);
    options.admission = &*admission;
    goalrec::serve::CircuitBreakerOptions breaker_options;
    // Tolerant of the handful of marginal misses the limiter produces while
    // probing the concurrency ceiling: the breakers are here to fence off a
    // genuinely failing rung, and overload itself is the admission
    // controller's job.
    breaker_options.failure_threshold = 10;
    breaker_options.open_cooldown = std::chrono::milliseconds(250);
    breaker_options.seed = seed;
    options.breaker = breaker_options;
  }
  goalrec::serve::ServingEngine engine({{"best_match", &best_match},
                                        {"breadth", &breadth},
                                        {"popularity", &floor}},
                                       options);

  struct ClientStats {
    int64_t completed = 0, good = 0, shed = 0, unavailable = 0, degraded = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      ClientStats& mine = stats[static_cast<size_t>(c)];
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        goalrec::model::Activity activity = MakeActivity(
            lib.num_actions(),
            seed + static_cast<uint64_t>(c) * 1000003 + q++);
        Clock::time_point arrival = Clock::now();
        goalrec::util::StatusOr<goalrec::serve::ServeResult> served =
            engine.Serve(activity, 10);
        double elapsed_ms =
            static_cast<double>((Clock::now() - arrival).count()) / 1e6;
        if (served.ok()) {
          ++mine.completed;
          mine.latencies_ms.push_back(elapsed_ms);
          if (elapsed_ms <= static_cast<double>(deadline_ms) &&
              !served->degraded) {
            ++mine.good;
          }
          if (served->degraded) ++mine.degraded;
        } else if (served.status().code() ==
                   goalrec::util::StatusCode::kResourceExhausted) {
          ++mine.shed;
          // A shed caller fails fast; back off one deadline before retrying
          // so the reject path is exercised without a busy spin.
          std::this_thread::sleep_for(std::chrono::milliseconds(deadline_ms));
        } else {
          ++mine.unavailable;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& t : pool) t.join();

  LoadPoint point;
  point.name = name;
  point.clients = clients;
  point.protected_mode = protected_mode;
  point.duration_ms = duration_ms;
  std::vector<double> latencies;
  for (const ClientStats& s : stats) {
    point.completed += s.completed;
    point.good += s.good;
    point.shed += s.shed;
    point.unavailable += s.unavailable;
    point.degraded += s.degraded;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
  }
  const double seconds = static_cast<double>(duration_ms) / 1e3;
  point.goodput_qps = static_cast<double>(point.good) / seconds;
  point.throughput_qps = static_cast<double>(point.completed) / seconds;
  point.p50_ms = PercentileMs(latencies, 0.50);
  point.p99_ms = PercentileMs(latencies, 0.99);
  if (protected_mode) {
    point.final_limit = admission->concurrency_limit();
    for (size_t r = 0; r < engine.num_rungs(); ++r) {
      if (engine.breaker(r) != nullptr) {
        point.breaker_opens += engine.breaker(r)->transitions_to(
            goalrec::serve::CircuitBreaker::State::kOpen);
      }
    }
  }
  return point;
}

void PrintPoint(const LoadPoint& p, bool last) {
  std::printf(
      "    {\"name\": \"%s\", \"clients\": %d, \"protected\": %s, "
      "\"duration_ms\": %lld,\n"
      "     \"completed\": %lld, \"good\": %lld, \"shed\": %lld, "
      "\"unavailable\": %lld, \"degraded\": %lld,\n"
      "     \"goodput_qps\": %.1f, \"throughput_qps\": %.1f, "
      "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"final_limit\": %d, "
      "\"breaker_opens\": %lld}%s\n",
      p.name.c_str(), p.clients, p.protected_mode ? "true" : "false",
      static_cast<long long>(p.duration_ms),
      static_cast<long long>(p.completed), static_cast<long long>(p.good),
      static_cast<long long>(p.shed), static_cast<long long>(p.unavailable),
      static_cast<long long>(p.degraded), p.goodput_qps, p.throughput_qps,
      p.p50_ms, p.p99_ms, p.final_limit,
      static_cast<long long>(p.breaker_opens), last ? "" : ",");
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const int64_t duration_ms = IntFlag(flags, "duration_ms", smoke ? 300 : 2000);
  const int64_t deadline_ms = IntFlag(flags, "deadline_ms", 40);
  const int64_t clients_cap = IntFlag(flags, "clients_cap", 32);
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 17));

  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 20000 : 50000;
  workload.num_actions = 5000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary lib =
      goalrec::eval::BuildScalingLibrary(workload, 9);

  // Capacity probe: one unprotected closed-loop client.
  LoadPoint probe = RunLoad("capacity_probe", lib, 1, /*protected=*/false,
                            duration_ms, deadline_ms, /*initial_limit=*/1,
                            /*baseline_ms=*/0.0, seed);
  const double solo_latency_ms =
      probe.completed > 0
          ? static_cast<double>(probe.duration_ms) /
                static_cast<double>(probe.completed)
          : static_cast<double>(deadline_ms);
  // Concurrency that still fits the deadline on this machine; beyond it,
  // every additional concurrent query pushes all of them past the budget.
  int saturation = static_cast<int>(static_cast<double>(deadline_ms) /
                                    std::max(solo_latency_ms, 0.1));
  saturation = std::clamp<int>(saturation, 1,
                               static_cast<int>(clients_cap) / 2);

  std::vector<LoadPoint> points;
  points.push_back(probe);
  points.push_back(RunLoad("unprotected_1x", lib, saturation, false,
                           duration_ms, deadline_ms, saturation, 0.0,
                           seed + 1));
  points.push_back(RunLoad("unprotected_2x", lib, 2 * saturation, false,
                           duration_ms, deadline_ms, saturation, 0.0,
                           seed + 2));
  points.push_back(RunLoad("protected_1x", lib, saturation, true, duration_ms,
                           deadline_ms, saturation, solo_latency_ms,
                           seed + 3));
  points.push_back(RunLoad("protected_2x", lib, 2 * saturation, true,
                           duration_ms, deadline_ms, saturation,
                           solo_latency_ms, seed + 4));

  // Peak goodput is defined over the at-or-below-saturation points; the
  // beyond-saturation regime is what is being judged against it.
  double peak_goodput = 0.0;
  for (const LoadPoint& p : points) {
    if (p.clients <= saturation) {
      peak_goodput = std::max(peak_goodput, p.goodput_qps);
    }
  }
  const LoadPoint& protected_2x = points.back();
  const LoadPoint& unprotected_2x = points[2];
  const double protected_ratio =
      peak_goodput > 0.0 ? protected_2x.goodput_qps / peak_goodput : 0.0;
  const double unprotected_ratio =
      peak_goodput > 0.0 ? unprotected_2x.goodput_qps / peak_goodput : 0.0;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_overload\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf(
      "  \"workload\": {\"implementations\": %u, \"actions\": %u, "
      "\"implementation_size\": %u},\n",
      workload.num_implementations, workload.num_actions,
      workload.implementation_size);
  std::printf("  \"deadline_ms\": %lld,\n",
              static_cast<long long>(deadline_ms));
  std::printf("  \"solo_latency_ms\": %.2f,\n", solo_latency_ms);
  std::printf("  \"saturation_clients\": %d,\n", saturation);
  std::printf("  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    PrintPoint(points[i], i + 1 == points.size());
  }
  std::printf("  ],\n");
  std::printf("  \"peak_goodput_qps\": %.1f,\n", peak_goodput);
  std::printf("  \"protected_2x_goodput_ratio\": %.3f,\n", protected_ratio);
  std::printf("  \"unprotected_2x_goodput_ratio\": %.3f\n", unprotected_ratio);
  std::printf("}\n");
  return 0;
}
