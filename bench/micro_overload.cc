// Open-loop overload benchmark for sharded serving: a Poisson-arrival load
// generator driving the sharded ladder at and beyond saturation, measuring
// goodput and latency as a function of shard count.
//
// Open loop, not closed loop: arrival times are drawn up front from an
// exponential inter-arrival distribution at a fixed offered rate and do NOT
// wait for previous queries to finish — exactly the regime where an
// overloaded server falls behind and queueing delay compounds (the
// coordinated-omission trap a closed-loop generator hides). Latency is
// measured from the *scheduled* arrival time, so time spent waiting for a
// free worker counts against the query.
//
// Method (single JSON document on stdout; BENCH_overload.json records a
// full run):
//   1. Library: a multi-million-implementation synthetic library (smoke:
//      50k). Each shard count S in the sweep gets its own
//      model::ShardedSnapshot + sharded ladder (best_match → breadth →
//      popularity), fan-out on a shared thread pool.
//   2. Capacity probe per S: one closed-loop client measures the no-load
//      ladder latency L; the saturation rate is ~1000/L qps. The probe runs
//      with a wide-open deadline so it measures the TOP rung, not a
//      deadline-truncated fallback. The serving deadline then scales with
//      the measured service time (12x the 1-shard solo latency, 40 ms
//      floor) unless --deadline_ms pins it: a fixed deadline comparable to
//      the service time makes every queued query a miss and the bench
//      measures the deadline constant, not overload behaviour.
//   3. Sweep per S: open-loop runs at 1x saturation (protected), 2x
//      (protected) and 2x (unprotected). Protected mode puts an adaptive
//      AdmissionController with SHORT queues in front (under open-loop
//      overload a long queue converts every answer into a deadline miss —
//      shedding fast is what preserves goodput) and a CircuitBreaker on
//      every non-final rung.
//   4. Queries come from per-user simulated activity streams: each user
//      keeps a sliding window of recent actions, and a served
//      recommendation feeds its top action back into the window — arrivals
//      are correlated per user, like a real session, not i.i.d. draws.
//   5. Goodput = full-quality (non-degraded) answers completing within the
//      deadline OF THEIR SCHEDULED ARRIVAL, per second of the arrival
//      horizon. peak_goodput is the best protected 1x point across shard
//      counts; protected_2x_goodput_ratio is the best protected 2x point
//      against that peak (the acceptance gate: >= 0.9).
//
// Flags: --duration_ms (per sweep point), --deadline_ms (0 = scale to the
// measured service time), --workers, --shards=CSV (override sweep),
// --seed, --smoke (short run for CI: scripts/check.sh run_shard_smoke
// invokes it).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "eval/scaling.h"
#include "model/sharding.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/engine.h"
#include "serve/popularity_floor.h"
#include "serve/sharded.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kK = 10;
constexpr size_t kWindowCap = 10;

/// Per-user sliding activity windows. Queries snapshot a user's window;
/// a served answer feeds its top recommendation back in, evicting the
/// oldest action — each user's query stream evolves like a session instead
/// of being an i.i.d. redraw.
class UserStreams {
 public:
  UserStreams(size_t users, uint32_t num_actions, uint64_t seed)
      : users_(users), num_actions_(num_actions) {
    goalrec::util::Rng rng(seed);
    for (size_t u = 0; u < users; ++u) {
      users_[u].window.resize(6);
      for (goalrec::model::ActionId& a : users_[u].window) {
        a = rng.UniformUint32(num_actions);
      }
    }
  }

  goalrec::model::Activity Snapshot(size_t u) {
    User& user = users_[u % users_.size()];
    goalrec::model::Activity activity;
    {
      std::lock_guard<std::mutex> lock(user.mu);
      activity.assign(user.window.begin(), user.window.end());
    }
    std::sort(activity.begin(), activity.end());
    activity.erase(std::unique(activity.begin(), activity.end()),
                   activity.end());
    return activity;
  }

  void Adopt(size_t u, goalrec::model::ActionId action) {
    if (action >= num_actions_) return;
    User& user = users_[u % users_.size()];
    std::lock_guard<std::mutex> lock(user.mu);
    user.window.push_back(action);
    while (user.window.size() > kWindowCap) user.window.pop_front();
  }

 private:
  struct User {
    std::mutex mu;
    std::deque<goalrec::model::ActionId> window;
  };
  std::deque<User> users_;  // deque: User is immovable (mutex)
  uint32_t num_actions_;
};

/// One sharded ladder: best_match → breadth (both fanned out over the
/// shard set) → popularity floor on the base library.
struct Ladder {
  Ladder(const goalrec::model::ImplementationLibrary& lib,
         std::shared_ptr<const goalrec::model::ShardedSnapshot> sharded,
         goalrec::util::ThreadPool* pool)
      : best_match(sharded, goalrec::serve::ShardedStrategy::kBestMatch, pool),
        breadth(sharded, goalrec::serve::ShardedStrategy::kBreadth, pool),
        floor(&lib) {}

  std::vector<goalrec::serve::ServingEngine::Rung> Rungs() {
    return {{"best_match", &best_match},
            {"breadth", &breadth},
            {"popularity", &floor}};
  }

  goalrec::serve::ShardedRecommender best_match;
  goalrec::serve::ShardedRecommender breadth;
  goalrec::serve::LibraryPopularityRecommender floor;
};

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

struct LoadPoint {
  std::string name;
  uint32_t shards = 0;
  bool protected_mode = false;
  bool open_loop = true;
  double offered_qps = 0.0;  // Poisson arrival rate (0 for the probe)
  int64_t duration_ms = 0;   // arrival horizon
  int64_t offered = 0;       // arrivals scheduled
  int64_t completed = 0;     // OK answers
  int64_t good = 0;          // full-quality answers meeting the deadline
  int64_t shed = 0;          // kResourceExhausted rejections
  int64_t unavailable = 0;   // every rung failed
  int64_t degraded = 0;      // served below the top rung
  double goodput_qps = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0;  // from SCHEDULED arrival (includes queueing)
  double p99_ms = 0.0;
  int final_limit = 0;
  int64_t breaker_opens = 0;
};

struct EngineSetup {
  goalrec::obs::MetricRegistry registry;
  std::optional<goalrec::serve::AdmissionController> admission;
  std::optional<goalrec::serve::ServingEngine> engine;
};

/// Builds a fresh engine over `ladder`. Protected mode: adaptive limiter
/// with deliberately SHORT queues (open-loop overload must shed, not
/// queue) and per-rung breakers.
void BuildEngine(EngineSetup& setup, Ladder& ladder, bool protected_mode,
                 int64_t deadline_ms, double baseline_ms, uint64_t seed) {
  goalrec::serve::EngineOptions options;
  options.deadline_ms = deadline_ms;
  options.metrics = &setup.registry;
  if (protected_mode) {
    goalrec::serve::AdmissionOptions admission_options;
    admission_options.initial_limit = 4;
    admission_options.min_limit = 1;
    admission_options.max_limit = 16;
    admission_options.adaptive = true;
    // An open-loop generator keeps arriving regardless of progress: a deep
    // queue just ages every admitted query past its deadline. Keep the
    // queues shallow so overload turns into fast kResourceExhausted sheds.
    admission_options.max_queue_interactive = 4;
    admission_options.max_queue_batch = 2;
    admission_options.metrics = &setup.registry;
    if (baseline_ms > 0.0) {
      admission_options.initial_baseline = std::chrono::nanoseconds(
          static_cast<int64_t>(baseline_ms * 1e6));
    }
    setup.admission.emplace(admission_options);
    options.admission = &*setup.admission;
    goalrec::serve::CircuitBreakerOptions breaker_options;
    breaker_options.failure_threshold = 10;
    breaker_options.open_cooldown = std::chrono::milliseconds(250);
    breaker_options.seed = seed;
    options.breaker = breaker_options;
  }
  setup.engine.emplace(ladder.Rungs(), options);
}

/// Closed-loop capacity probe: one client, unprotected, measures the
/// no-load ladder latency. The deadline is wide open so a slow workload is
/// measured on the top rung instead of being truncated into a fallback.
double ProbeSoloLatencyMs(Ladder& ladder, UserStreams& streams,
                          int64_t duration_ms, uint64_t seed) {
  constexpr int64_t kProbeDeadlineMs = 2000;
  EngineSetup setup;
  BuildEngine(setup, ladder, /*protected_mode=*/false, kProbeDeadlineMs, 0.0,
              seed);
  Clock::time_point start = Clock::now();
  Clock::time_point stop_at = start + std::chrono::milliseconds(duration_ms);
  int64_t completed = 0;
  uint64_t q = 0;
  while (Clock::now() < stop_at) {
    goalrec::model::Activity activity = streams.Snapshot(q++);
    goalrec::util::StatusOr<goalrec::serve::ServeResult> served =
        setup.engine->Serve(activity, kK);
    if (served.ok()) {
      ++completed;
      if (!served->list.empty()) streams.Adopt(q - 1, served->list[0].action);
    }
  }
  double elapsed_ms =
      static_cast<double>((Clock::now() - start).count()) / 1e6;
  if (completed == 0) return static_cast<double>(kProbeDeadlineMs);
  return elapsed_ms / static_cast<double>(completed);
}

/// One open-loop run: Poisson arrivals at `offered_qps` over `duration_ms`,
/// claimed by a fixed worker pool. A worker sleeps until the arrival's
/// scheduled time, snapshots that user's activity window, serves, and
/// measures latency from the SCHEDULED arrival — a late start (all workers
/// busy = server behind) is charged to the query, as a real client would
/// experience it.
LoadPoint RunOpenLoop(const std::string& name, Ladder& ladder,
                      UserStreams& streams, uint32_t shards,
                      bool protected_mode, double offered_qps,
                      int64_t duration_ms, int64_t deadline_ms, int workers,
                      double baseline_ms, uint64_t seed) {
  EngineSetup setup;
  BuildEngine(setup, ladder, protected_mode, deadline_ms, baseline_ms, seed);

  // Draw the arrival schedule up front: exponential inter-arrival gaps at
  // rate `offered_qps`, one user per arrival.
  goalrec::util::Rng rng(seed);
  std::vector<double> arrival_s;
  std::vector<uint32_t> arrival_user;
  const double horizon_s = static_cast<double>(duration_ms) / 1e3;
  double t = 0.0;
  while (true) {
    double u = rng.UniformDouble();
    t += -std::log1p(-u) / offered_qps;  // -ln(1-u)/lambda, u in [0,1)
    if (t >= horizon_s) break;
    arrival_s.push_back(t);
    arrival_user.push_back(rng.NextUint32());
    if (arrival_s.size() >= 400000) break;  // runaway-rate backstop
  }

  struct WorkerStats {
    int64_t completed = 0, good = 0, shed = 0, unavailable = 0, degraded = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<WorkerStats> stats(static_cast<size_t>(workers));
  std::atomic<size_t> next{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      WorkerStats& mine = stats[static_cast<size_t>(w)];
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= arrival_s.size()) break;
        Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival_s[i]));
        std::this_thread::sleep_until(scheduled);
        size_t user = arrival_user[i];
        goalrec::model::Activity activity = streams.Snapshot(user);
        goalrec::util::StatusOr<goalrec::serve::ServeResult> served =
            setup.engine->Serve(activity, kK);
        double elapsed_ms =
            static_cast<double>((Clock::now() - scheduled).count()) / 1e6;
        if (served.ok()) {
          ++mine.completed;
          mine.latencies_ms.push_back(elapsed_ms);
          if (elapsed_ms <= static_cast<double>(deadline_ms) &&
              !served->degraded) {
            ++mine.good;
          }
          if (served->degraded) ++mine.degraded;
          if (!served->list.empty()) {
            streams.Adopt(user, served->list[0].action);
          }
        } else if (served.status().code() ==
                   goalrec::util::StatusCode::kResourceExhausted) {
          ++mine.shed;  // open loop: no backoff, the next arrival is fixed
        } else {
          ++mine.unavailable;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  LoadPoint point;
  point.name = name;
  point.shards = shards;
  point.protected_mode = protected_mode;
  point.offered_qps = offered_qps;
  point.duration_ms = duration_ms;
  point.offered = static_cast<int64_t>(arrival_s.size());
  std::vector<double> latencies;
  for (const WorkerStats& s : stats) {
    point.completed += s.completed;
    point.good += s.good;
    point.shed += s.shed;
    point.unavailable += s.unavailable;
    point.degraded += s.degraded;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
  }
  // Rates are against the arrival horizon (or the actual span if the
  // server fell behind it): falling behind must not inflate goodput.
  double span_s = std::max(
      horizon_s, static_cast<double>((Clock::now() - start).count()) / 1e9);
  point.goodput_qps = static_cast<double>(point.good) / span_s;
  point.throughput_qps = static_cast<double>(point.completed) / span_s;
  point.p50_ms = PercentileMs(latencies, 0.50);
  point.p99_ms = PercentileMs(latencies, 0.99);
  if (protected_mode) {
    point.final_limit = setup.admission->concurrency_limit();
    for (size_t r = 0; r < setup.engine->num_rungs(); ++r) {
      if (setup.engine->breaker(r) != nullptr) {
        point.breaker_opens += setup.engine->breaker(r)->transitions_to(
            goalrec::serve::CircuitBreaker::State::kOpen);
      }
    }
  }
  return point;
}

void PrintPoint(const LoadPoint& p, bool last) {
  std::printf(
      "    {\"name\": \"%s\", \"shards\": %u, \"protected\": %s, "
      "\"offered_qps\": %.1f, \"duration_ms\": %lld,\n"
      "     \"offered\": %lld, \"completed\": %lld, \"good\": %lld, "
      "\"shed\": %lld, \"unavailable\": %lld, \"degraded\": %lld,\n"
      "     \"goodput_qps\": %.1f, \"throughput_qps\": %.1f, "
      "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"final_limit\": %d, "
      "\"breaker_opens\": %lld}%s\n",
      p.name.c_str(), p.shards, p.protected_mode ? "true" : "false",
      p.offered_qps, static_cast<long long>(p.duration_ms),
      static_cast<long long>(p.offered), static_cast<long long>(p.completed),
      static_cast<long long>(p.good), static_cast<long long>(p.shed),
      static_cast<long long>(p.unavailable),
      static_cast<long long>(p.degraded), p.goodput_qps, p.throughput_qps,
      p.p50_ms, p.p99_ms, p.final_limit,
      static_cast<long long>(p.breaker_opens), last ? "" : ",");
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

std::vector<uint32_t> ParseShards(const std::string& csv,
                                  std::vector<uint32_t> fallback) {
  if (csv.empty()) return fallback;
  std::vector<uint32_t> shards;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    int value = std::atoi(csv.substr(pos, comma - pos).c_str());
    if (value > 0) shards.push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  return shards.empty() ? fallback : shards;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const int64_t duration_ms = IntFlag(flags, "duration_ms", smoke ? 250 : 4000);
  // 0 = auto: 12x the 1-shard solo latency (40 ms floor, 1 s cap), fixed
  // after the first capacity probe so every shard count runs under the same
  // deadline.
  int64_t deadline_ms = IntFlag(flags, "deadline_ms", 0);
  // Enough client workers that arrivals reach the server even when it is
  // behind: an open-loop generator starved of senders degenerates into a
  // closed loop (excess load queues client-side and the admission
  // controller never sees it). Sheds are near-instant, so workers churn.
  const int workers =
      static_cast<int>(IntFlag(flags, "workers", smoke ? 16 : 32));
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 17));
  std::vector<uint32_t> shard_sweep = ParseShards(
      flags.GetString("shards"),
      smoke ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 8});

  // Full mode builds a multi-million-implementation library — the scale at
  // which a single CSR scan per query is the bottleneck sharding exists
  // for. Smoke keeps CI fast.
  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 50000 : 2000000;
  workload.num_actions = smoke ? 5000 : 40000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary lib =
      goalrec::eval::BuildScalingLibrary(workload, 9);

  const size_t num_users = smoke ? 512 : 4096;
  uint32_t max_shards = 1;
  for (uint32_t s : shard_sweep) max_shards = std::max(max_shards, s);
  goalrec::util::ThreadPool fanout_pool(
      std::max<uint32_t>(1, max_shards - 1));

  std::vector<LoadPoint> points;
  double peak_goodput = 0.0;       // best protected 1x across shard counts
  double best_2x_goodput = 0.0;    // best protected 2x across shard counts
  uint32_t best_2x_shards = 0;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_overload\",\n");
  std::printf("  \"mode\": \"open_loop_poisson\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf(
      "  \"workload\": {\"implementations\": %u, \"actions\": %u, "
      "\"implementation_size\": %u, \"users\": %zu},\n",
      workload.num_implementations, workload.num_actions,
      workload.implementation_size, num_users);
  std::printf("  \"workers\": %d,\n", workers);
  std::printf("  \"sweeps\": [\n");
  for (size_t si = 0; si < shard_sweep.size(); ++si) {
    const uint32_t shards = shard_sweep[si];
    auto sharded = goalrec::model::BuildShardedSnapshot(lib, shards);
    Ladder ladder(lib, sharded, shards > 1 ? &fanout_pool : nullptr);
    UserStreams streams(num_users, lib.num_actions(), seed + shards);

    const double solo_ms =
        ProbeSoloLatencyMs(ladder, streams, duration_ms, seed + shards);
    const double capacity_qps = 1e3 / std::max(solo_ms, 0.05);
    if (si == 0 && deadline_ms <= 0) {
      deadline_ms = std::clamp<int64_t>(
          static_cast<int64_t>(std::ceil(12.0 * solo_ms)), 40, 1000);
    }

    LoadPoint p1x = RunOpenLoop(
        "shards" + std::to_string(shards) + "_protected_1x", ladder, streams,
        shards, /*protected=*/true, capacity_qps, duration_ms, deadline_ms,
        workers, solo_ms, seed + 100 + shards);
    LoadPoint p2x = RunOpenLoop(
        "shards" + std::to_string(shards) + "_protected_2x", ladder, streams,
        shards, /*protected=*/true, 2.0 * capacity_qps, duration_ms,
        deadline_ms, workers, solo_ms, seed + 200 + shards);
    LoadPoint u2x = RunOpenLoop(
        "shards" + std::to_string(shards) + "_unprotected_2x", ladder,
        streams, shards, /*protected=*/false, 2.0 * capacity_qps, duration_ms,
        deadline_ms, workers, solo_ms, seed + 300 + shards);
    peak_goodput = std::max(peak_goodput, p1x.goodput_qps);
    if (p2x.goodput_qps > best_2x_goodput) {
      best_2x_goodput = p2x.goodput_qps;
      best_2x_shards = shards;
    }

    std::printf("    {\"shards\": %u, \"solo_latency_ms\": %.3f, "
                "\"capacity_qps\": %.1f}%s\n",
                shards, solo_ms, capacity_qps,
                si + 1 == shard_sweep.size() ? "" : ",");
    points.push_back(p1x);
    points.push_back(p2x);
    points.push_back(u2x);
  }
  std::printf("  ],\n");
  std::printf("  \"deadline_ms\": %lld,\n", static_cast<long long>(deadline_ms));
  std::printf("  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    PrintPoint(points[i], i + 1 == points.size());
  }
  std::printf("  ],\n");
  const double protected_ratio =
      peak_goodput > 0.0 ? best_2x_goodput / peak_goodput : 0.0;
  double unprotected_best = 0.0;
  for (const LoadPoint& p : points) {
    if (!p.protected_mode) {
      unprotected_best = std::max(unprotected_best, p.goodput_qps);
    }
  }
  std::printf("  \"peak_goodput_qps\": %.1f,\n", peak_goodput);
  std::printf("  \"best_protected_2x_shards\": %u,\n", best_2x_shards);
  std::printf("  \"protected_2x_goodput_ratio\": %.3f,\n", protected_ratio);
  std::printf("  \"unprotected_2x_goodput_ratio\": %.3f\n",
              peak_goodput > 0.0 ? unprotected_best / peak_goodput : 0.0);
  std::printf("}\n");
  return 0;
}
