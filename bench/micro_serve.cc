// Serving-engine latency and degradation benchmark: p50/p99 per-query
// latency and the fallback rate of the BestMatch → Breadth → Popularity
// ladder, healthy and under injected faults plus a tight deadline. Emits
// one JSON document on stdout (see BENCH_serve.json for a recorded run).
// Each scenario runs against its own obs::MetricRegistry and embeds the
// full metrics snapshot (rung attempt counters, per-rung latency
// histograms, injected-fault counters) in its JSON entry; `obs_enabled`
// records whether instrumentation was compiled in (GOALREC_OBS_NOOP), for
// the overhead comparison in docs/observability.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/best_match.h"
#include "core/breadth.h"
#include "eval/scaling.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/fault_injection.h"
#include "serve/popularity_floor.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < 8) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

double PercentileUs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

struct ScenarioResult {
  std::string name;
  int queries = 0;
  int served = 0;
  int degraded = 0;
  int unavailable = 0;
  std::vector<int> rung_counts;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// The scenario's full metrics snapshot (engine counters/histograms), as
  /// an ExportJson document.
  std::string metrics_json;
};

ScenarioResult RunScenario(const std::string& name,
                           const goalrec::model::ImplementationLibrary& lib,
                           goalrec::serve::EngineOptions options, int queries,
                           uint64_t seed) {
  goalrec::core::BestMatchRecommender best_match(&lib);
  goalrec::core::BreadthRecommender breadth(&lib);
  goalrec::serve::LibraryPopularityRecommender floor(&lib);
  // Per-scenario registry: the snapshot below reflects only this scenario's
  // queries, not the whole process.
  goalrec::obs::MetricRegistry registry;
  options.metrics = &registry;
  goalrec::serve::ServingEngine engine({{"best_match", &best_match},
                                        {"breadth", &breadth},
                                        {"popularity", &floor}},
                                       options);
  ScenarioResult result;
  result.name = name;
  result.queries = queries;
  result.rung_counts.assign(3, 0);
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    goalrec::model::Activity activity =
        MakeActivity(lib.num_actions(), seed + static_cast<uint64_t>(q));
    Clock::time_point start = Clock::now();
    goalrec::util::StatusOr<goalrec::serve::ServeResult> served =
        engine.Serve(activity, 10);
    std::chrono::nanoseconds elapsed = Clock::now() - start;
    latencies_us.push_back(static_cast<double>(elapsed.count()) / 1e3);
    if (served.ok()) {
      ++result.served;
      if (served->degraded) ++result.degraded;
      ++result.rung_counts[served->rung_index];
    } else {
      ++result.unavailable;
    }
  }
  result.p50_us = PercentileUs(latencies_us, 0.50);
  result.p99_us = PercentileUs(latencies_us, 0.99);
  result.metrics_json = goalrec::obs::ExportJson(registry);
  return result;
}

void PrintScenario(const ScenarioResult& r, bool last) {
  double denominator = r.queries > 0 ? static_cast<double>(r.queries) : 1.0;
  std::printf(
      "    {\"name\": \"%s\", \"queries\": %d, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"fallback_rate\": %.4f, \"unavailable_rate\": "
      "%.4f, \"rung_counts\": [%d, %d, %d],\n     \"metrics\": %s}%s\n",
      r.name.c_str(), r.queries, r.p50_us, r.p99_us,
      static_cast<double>(r.degraded) / denominator,
      static_cast<double>(r.unavailable) / denominator, r.rung_counts[0],
      r.rung_counts[1], r.rung_counts[2], r.metrics_json.c_str(),
      last ? "" : ",");
}

}  // namespace

int main() {
  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = 50000;
  workload.num_actions = 5000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary lib =
      goalrec::eval::BuildScalingLibrary(workload, 9);

  std::vector<ScenarioResult> scenarios;

  // Healthy ladder, no budget: everything should land on rung one.
  scenarios.push_back(
      RunScenario("healthy", lib, goalrec::serve::EngineOptions{}, 500, 100));

  // Tight budget, no faults: rung one may or may not fit depending on the
  // machine; the point is the query always comes back.
  {
    goalrec::serve::EngineOptions options;
    options.deadline_ms = 2;
    scenarios.push_back(RunScenario("deadline_2ms", lib, options, 500, 200));
  }

  // Faults plus a budget: seeded injector, so re-runs see the same schedule.
  goalrec::serve::FaultInjectionOptions fault_options;
  fault_options.seed = 7;
  fault_options.error_rate = 0.15;
  fault_options.latency_rate = 0.05;
  fault_options.latency_ms = 3;
  goalrec::serve::FaultInjector faults(fault_options);
  {
    goalrec::serve::EngineOptions options;
    options.deadline_ms = 5;
    options.faults = &faults;
    scenarios.push_back(
        RunScenario("faults_deadline_5ms", lib, options, 500, 300));
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_serve\",\n");
  std::printf("  \"obs_enabled\": %s,\n",
              goalrec::obs::kObsEnabled ? "true" : "false");
  std::printf(
      "  \"workload\": {\"implementations\": %u, \"actions\": %u, "
      "\"implementation_size\": %u},\n",
      workload.num_implementations, workload.num_actions,
      workload.implementation_size);
  std::printf("  \"ladder\": [\"best_match\", \"breadth\", \"popularity\"],\n");
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < scenarios.size(); ++i) {
    PrintScenario(scenarios[i], i + 1 == scenarios.size());
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
