// Supplementary analysis: the Figure 4 / Table 4 metrics broken down by how
// many goals a 43Things user pursues (the population the paper describes:
// 5047 / 1806 / 623 / 595 users pursuing 1 / 2 / 3 / >3 goals). Expected
// shape: goal-based methods dominate in every bucket; recovering hidden
// actions is easiest for single-goal users (one coherent family of
// evidence) and completeness declines as goals multiply and the top-10 list
// is split across them.

#include <cstdio>

#include "bench/common.h"
#include "eval/breakdown.h"

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Supplementary — 43Things metrics by number of pursued goals",
      "goal-based methods lead every bucket; single-goal users are easiest");
  goalrec::bench::PreparedDataset prepared =
      goalrec::bench::PrepareFortyThree(scale);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs,
                             goalrec::bench::DefaultSuiteOptions(scale));
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::printf("%s",
              goalrec::eval::RenderGoalCountBreakdown(
                  goalrec::eval::ComputeGoalCountBreakdown(
                      prepared.dataset.library, prepared.users, results))
                  .c_str());
  return 0;
}
