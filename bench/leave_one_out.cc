// Supplementary protocol: leave-one-out hit rate and MRR for every method
// on both datasets. Not a paper experiment; it cross-checks Figure 4's
// conclusion (goal-based methods recover held-out actions on 43T far better
// than CF) under the standard rec-sys protocol.
//
// Protocol note: this is *weak generalisation* — the collaborative baselines
// are trained on the full interaction matrix, so the evaluated user's own
// record (held-out action included) is visible at training time and the CF
// numbers are upper bounds (user-kNN in particular can match the user to
// themself). The goal-based strategies use no interaction history, so their
// numbers carry no such leak; compare goal-based against goal-based here and
// use fig4_tpr for the leak-free cross-family comparison.

#include <cstdio>

#include "bench/common.h"
#include "eval/leave_one_out.h"
#include "eval/suite.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  // Train baselines on the full activities (LOO hides one action at a time
  // at query time, so the "community history" is everyone's full activity).
  std::vector<goalrec::model::Activity> full;
  for (const goalrec::data::EvalUser& user : prepared.users) {
    full.push_back(goalrec::util::Union(user.visible, user.hidden));
  }
  goalrec::eval::Suite suite(&prepared.dataset, full,
                             goalrec::bench::DefaultSuiteOptions(scale));

  goalrec::eval::LeaveOneOutOptions options;
  options.k = 10;
  options.max_holdouts_per_user = 3;  // bound cost

  std::vector<goalrec::eval::LeaveOneOutRow> rows;
  for (size_t m = 0; m < suite.size(); ++m) {
    rows.push_back(goalrec::eval::LeaveOneOutRow{
        suite.recommender(m).name(),
        goalrec::eval::RunLeaveOneOut(suite.recommender(m), full, options)});
  }
  std::printf("%s", goalrec::eval::RenderLeaveOneOut(rows, options.k).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Supplementary — leave-one-out hit@10 / MRR",
      "goal-based methods recover most held-out 43T actions; CF numbers "
      "are weak-generalisation upper bounds (see source header)");
  Run("FoodMart", goalrec::bench::PrepareFoodmartSplit(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  return 0;
}
