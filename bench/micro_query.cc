// Hot-path query kernel benchmark: ops/sec and cycles-per-implementation for
// the four paper strategies on the pooled (zero-allocation) serving path at
// the BENCH_overload 50k-implementation scenario. This is the benchmark the
// scoring-kernel rewrite is judged by (single JSON document on stdout; see
// BENCH_query.json for recorded before/after runs):
//
//   * ops/sec + us/query per strategy over a pre-generated activity stream,
//     measured on RecommendPooled with one warmed QueryWorkspace — exactly
//     the route a ServingEngine rung takes;
//   * cycles/impl: TSC cycles divided by the implementations inspected
//     (|IS(H)| summed over the stream), the §5.4 unit cost that decides
//     whether "millions of users" is real;
//   * steady-state allocation counts via the instrumented global operator
//     new (same technique as micro_snapshot): after warm-up the pooled path
//     must perform ZERO heap allocations per query — the process exits
//     non-zero if it does not, so scripts/check.sh doubles as a regression
//     gate for both speed plumbing and allocation discipline;
//   * breadth_dense: the Breadth sparse/dense accumulator pair on a heavy
//     (96-action) activity stream, forced each way via
//     SetBreadthDenseCreditMultiplier plus the auto heuristic, with
//     dense_resets counts proving which path ran (oracle/sharded_test pins
//     bit-identity of the two paths; this records the speed difference).
//
// Flags: --smoke (smaller library, short sweep; CI), --seed, --queries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define GOALREC_BENCH_HAS_TSC 1
#endif

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_workspace.h"
#include "core/recommender.h"
#include "eval/scaling.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

// --- Global allocation counter ----------------------------------------------

namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ReadCycles() {
#ifdef GOALREC_BENCH_HAS_TSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
#endif
}

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed,
                                      size_t target_size = 8) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < target_size && activity.size() < num_actions) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

struct StrategyPoint {
  std::string name;
  double ops_per_sec = 0.0;
  double us_per_query = 0.0;
  double cycles_per_impl = 0.0;
  int64_t steady_allocs = 0;
};

// One strategy over the whole activity stream: a warm-up pass that grows the
// workspace buffers to their high-water mark, then a timed + allocation-
// counted steady-state pass.
StrategyPoint Measure(const std::string& name,
                      const goalrec::core::Recommender& recommender,
                      const std::vector<goalrec::model::Activity>& activities,
                      double total_impls_inspected, size_t k, int repeats) {
  StrategyPoint point;
  point.name = name;
  goalrec::core::QueryWorkspace workspace;
  goalrec::core::RecommendationList out;
  for (const goalrec::model::Activity& h : activities) {
    recommender.RecommendPooled(h, k, nullptr, &workspace, out);
  }

  int64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  uint64_t cycles_start = ReadCycles();
  Clock::time_point start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const goalrec::model::Activity& h : activities) {
      recommender.RecommendPooled(h, k, nullptr, &workspace, out);
    }
  }
  double seconds =
      static_cast<double>((Clock::now() - start).count()) / 1e9;
  uint64_t cycles = ReadCycles() - cycles_start;
  point.steady_allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  double queries =
      static_cast<double>(activities.size()) * static_cast<double>(repeats);
  point.ops_per_sec = seconds > 0.0 ? queries / seconds : 0.0;
  point.us_per_query = seconds > 0.0 ? seconds * 1e6 / queries : 0.0;
  double impls = total_impls_inspected * static_cast<double>(repeats);
  point.cycles_per_impl =
      impls > 0.0 ? static_cast<double>(cycles) / impls : 0.0;
  return point;
}

// Breadth dense-vs-sparse accumulator comparison on a heavy activity stream
// (the scatter's credit mass must clear the dense threshold, which 8-action
// activities never do at this connectivity). The multiplier knob pins the
// accumulator choice; dense_resets proves which path actually ran.
struct DensePoint {
  std::string name;
  double ops_per_sec = 0.0;
  double us_per_query = 0.0;
  int64_t dense_resets = 0;
  int64_t steady_allocs = 0;
};

DensePoint MeasureBreadthVariant(
    const std::string& name, double multiplier,
    const goalrec::core::BreadthRecommender& breadth,
    const std::vector<goalrec::model::Activity>& activities, size_t k,
    int repeats) {
  DensePoint point;
  point.name = name;
  const double previous =
      goalrec::core::SetBreadthDenseCreditMultiplier(multiplier);
  goalrec::core::QueryWorkspace workspace;
  goalrec::core::RecommendationList out;
  for (const goalrec::model::Activity& h : activities) {
    breadth.RecommendPooled(h, k, nullptr, &workspace, out);
  }

  const int64_t resets_before = workspace.kernel_stats.dense_resets;
  int64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  Clock::time_point start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const goalrec::model::Activity& h : activities) {
      breadth.RecommendPooled(h, k, nullptr, &workspace, out);
    }
  }
  double seconds =
      static_cast<double>((Clock::now() - start).count()) / 1e9;
  point.steady_allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  point.dense_resets = workspace.kernel_stats.dense_resets - resets_before;
  goalrec::core::SetBreadthDenseCreditMultiplier(previous);

  double queries =
      static_cast<double>(activities.size()) * static_cast<double>(repeats);
  point.ops_per_sec = seconds > 0.0 ? queries / seconds : 0.0;
  point.us_per_query = seconds > 0.0 ? seconds * 1e6 / queries : 0.0;
  return point;
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 31));
  const size_t queries =
      static_cast<size_t>(IntFlag(flags, "queries", smoke ? 64 : 256));
  const int repeats = static_cast<int>(IntFlag(flags, "repeats", smoke ? 2 : 8));
  const size_t k = 10;

  // The BENCH_overload hot-path scenario: 50k implementations, connectivity
  // impls * 6 / actions = 60. --smoke shrinks the library, not the shape.
  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 10000 : 50000;
  workload.num_actions = smoke ? 1000 : 5000;
  workload.implementation_size = 6;

  goalrec::model::ImplementationLibrary library =
      goalrec::eval::BuildScalingLibrary(workload, 9);

  std::vector<goalrec::model::Activity> activities;
  activities.reserve(queries);
  double total_impls = 0.0;
  for (size_t q = 0; q < queries; ++q) {
    activities.push_back(MakeActivity(library.num_actions(), seed + q));
    total_impls += static_cast<double>(
        library.ImplementationSpace(activities.back()).size());
  }

  goalrec::core::FocusRecommender focus_cmp(
      &library, goalrec::core::FocusVariant::kCompleteness);
  goalrec::core::FocusRecommender focus_cl(
      &library, goalrec::core::FocusVariant::kCloseness);
  goalrec::core::BreadthRecommender breadth(&library);
  goalrec::core::BestMatchRecommender best_match(&library);

  // Heavy activity stream for the breadth_dense scenario: 96 actions per
  // query puts the credit mass well above the 4x num_actions dense
  // threshold at this connectivity (~34k credits vs a 20k threshold at the
  // full 5k-action scenario), so the auto heuristic picks the dense
  // accumulator and the forced sparse/dense pair measures the same queries
  // on both paths.
  const size_t heavy_queries = std::max<size_t>(16, queries / 4);
  std::vector<goalrec::model::Activity> heavy_activities;
  heavy_activities.reserve(heavy_queries);
  double heavy_total_impls = 0.0;
  for (size_t q = 0; q < heavy_queries; ++q) {
    heavy_activities.push_back(
        MakeActivity(library.num_actions(), seed + 7000 + q, 96));
    heavy_total_impls += static_cast<double>(
        library.ImplementationSpace(heavy_activities.back()).size());
  }

  std::vector<StrategyPoint> points;
  points.push_back(Measure("Focus_cmp", focus_cmp, activities, total_impls, k,
                           repeats));
  points.push_back(Measure("Focus_cl", focus_cl, activities, total_impls, k,
                           repeats));
  points.push_back(Measure("Breadth", breadth, activities, total_impls, k,
                           repeats));
  points.push_back(Measure("BestMatch", best_match, activities, total_impls,
                           k, repeats));

  std::vector<DensePoint> dense_points;
  dense_points.push_back(MeasureBreadthVariant(
      "sparse_forced", 1e18, breadth, heavy_activities, k, repeats));
  dense_points.push_back(MeasureBreadthVariant(
      "dense_forced", 0.0, breadth, heavy_activities, k, repeats));
  dense_points.push_back(MeasureBreadthVariant(
      "auto", 4.0, breadth, heavy_activities, k, repeats));

  std::printf("{\n  \"benchmark\": \"micro_query\", \"smoke\": %s,\n",
              smoke ? "true" : "false");
  std::printf(
      "  \"scenario\": {\"num_implementations\": %u, \"num_actions\": %u, "
      "\"activity_size\": 8, \"k\": %zu, \"queries\": %zu, \"repeats\": %d, "
      "\"avg_impl_space\": %.1f},\n",
      library.num_implementations(), library.num_actions(), k, queries,
      repeats, total_impls / static_cast<double>(queries));
#ifdef GOALREC_BENCH_HAS_TSC
  std::printf("  \"cycles_source\": \"rdtsc\",\n");
#else
  std::printf("  \"cycles_source\": \"steady_clock_ns\",\n");
#endif
  std::printf("  \"strategies\": [\n");
  bool steady_state_clean = true;
  for (size_t i = 0; i < points.size(); ++i) {
    const StrategyPoint& p = points[i];
    if (p.steady_allocs != 0) steady_state_clean = false;
    std::printf(
        "    {\"name\": \"%s\", \"ops_per_sec\": %.0f, \"us_per_query\": "
        "%.2f, \"cycles_per_impl\": %.2f, \"steady_allocs\": %lld}%s\n",
        p.name.c_str(), p.ops_per_sec, p.us_per_query, p.cycles_per_impl,
        static_cast<long long>(p.steady_allocs),
        i + 1 == points.size() ? "" : ",");
  }
  std::printf("  ],\n");
  std::printf(
      "  \"breadth_dense\": {\"activity_size\": 96, \"queries\": %zu, "
      "\"avg_impl_space\": %.1f, \"variants\": [\n",
      heavy_queries, heavy_total_impls / static_cast<double>(heavy_queries));
  for (size_t i = 0; i < dense_points.size(); ++i) {
    const DensePoint& p = dense_points[i];
    if (p.steady_allocs != 0) steady_state_clean = false;
    std::printf(
        "    {\"name\": \"%s\", \"ops_per_sec\": %.0f, \"us_per_query\": "
        "%.2f, \"dense_resets\": %lld, \"steady_allocs\": %lld}%s\n",
        p.name.c_str(), p.ops_per_sec, p.us_per_query,
        static_cast<long long>(p.dense_resets),
        static_cast<long long>(p.steady_allocs),
        i + 1 == dense_points.size() ? "" : ",");
  }
  std::printf("  ]},\n");
  std::printf("  \"pooled_steady_state_zero_alloc\": %s\n}\n",
              steady_state_clean ? "true" : "false");

  if (!steady_state_clean) {
    std::fprintf(stderr,
                 "FAIL: pooled query path allocated in steady state\n");
    return 1;
  }
  return 0;
}
