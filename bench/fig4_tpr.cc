// Figure 4: average true-positive rate — the fraction of recommended actions
// the user had actually performed (among the hidden 70%) — for top-5 and
// top-10 lists.
//
// Paper shape: 43T rates are far higher than FoodMart's (users there focus
// on few goals); on 43T top-5, BestMatch then Focus_cmp and Breadth lead.
// FoodMart rates are low for all methods (at most ~3 carts per user).
// FoodMart follows the paper's protocol exactly: customers have up to three
// carts, one cart is the input, the customer's other carts are the ground
// truth.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs,
                             goalrec::bench::DefaultSuiteOptions(scale));
  std::vector<goalrec::eval::MethodResult> top5 =
      suite.RunAll(prepared.inputs, 5);
  std::vector<goalrec::eval::MethodResult> top10 =
      suite.RunAll(prepared.inputs, 10);
  std::printf("%s",
              goalrec::eval::RenderTpr(
                  goalrec::eval::ComputeTpr(prepared.users, top5),
                  goalrec::eval::ComputeTpr(prepared.users, top10))
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Figure 4 — average true-positive rate (top-5 and top-10)",
      "43T ≫ FoodMart; on 43T top-5 BestMatch/Focus_cmp/Breadth lead");
  Run("FoodMart (repeat-customer carts)",
      goalrec::bench::PrepareFoodmartRepeatCustomers(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference: 43T top-5 led by BestMatch, then Focus_cmp and "
      "Breadth; all FoodMart percentages low\n");
  return 0;
}
