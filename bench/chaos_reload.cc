// Chaos harness for the hardened data plane (docs/data_plane.md): hammers
// SnapshotManager reload with filesystem faults while query threads serve,
// and checks the two invariants the snapshot format + reload guard promise:
//
//   1. The server NEVER serves a torn or invalid snapshot. Every snapshot a
//      query thread acquires must be one the writer completed cleanly
//      (each epoch library carries a marker goal naming its epoch, so the
//      check is O(1) per acquire).
//   2. The server always converges back: after every faulted publish and
//      rejected reload, a clean rewrite must reload successfully, and the
//      old snapshot must have kept serving in between.
//
// The writer deliberately publishes NON-atomically (plain overwrite, no
// rename) and corrupts the staged bytes through FaultInjector's filesystem
// fault plane (truncate-at-offset, bit flips, torn partial writes, publish
// stalls). The CRC-framed snapshot format must reject every corrupted file
// at load, so "rollback" is the guard refusing to publish.
//
// Prints one JSON document; exits non-zero when an invariant breaks.
// Recorded full run in BENCH_chaos.json. scripts/check.sh runs --smoke in
// the plain and ASan trees as the `chaos` suite.
//
// Flags: --smoke (short run; CI), --seed, --epochs, --threads,
// --mode=snapshot|delta (delta: hostile ".sdelta" publishes + compactions
// against a polling reader; see RunDeltaMode), --recovery_budget_ms.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/breadth.h"
#include "eval/scaling.h"
#include "model/delta.h"
#include "model/delta_log.h"
#include "model/library_io.h"
#include "model/merged_view.h"
#include "model/snapshot.h"
#include "model/snapshot_io.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/fault_injection.h"
#include "serve/snapshot_manager.h"
#include "util/crc32c.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kMarkerPrefix[] = "chaos_epoch_";

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

/// The epoch stamped into a library by MakeEpochLibrary, or -1 when the
/// marker is missing/garbled (which counts as serving an invalid snapshot).
int64_t EpochOf(const goalrec::model::ImplementationLibrary& library) {
  if (library.num_implementations() == 0) return -1;
  const std::string& goal = library.goals().Name(
      library.GoalOf(library.num_implementations() - 1));
  if (goal.rfind(kMarkerPrefix, 0) != 0) return -1;
  return std::atoll(goal.c_str() + sizeof(kMarkerPrefix) - 1);
}

/// Base library + one marker implementation whose goal names the epoch. The
/// marker actions reuse existing ids so the implementation is connected.
goalrec::model::ImplementationLibrary MakeEpochLibrary(
    const goalrec::model::ImplementationLibrary& base, int64_t epoch) {
  goalrec::model::LibraryBuilder builder =
      goalrec::model::LibraryBuilder::FromLibrary(base);
  std::vector<std::string> actions = {base.actions().Name(0),
                                      base.actions().Name(1)};
  builder.AddImplementation(kMarkerPrefix + std::to_string(epoch), actions);
  return std::move(builder).Build();
}

void BreadthLadder(const goalrec::model::ImplementationLibrary& library,
                   goalrec::serve::ServingSnapshot& out) {
  auto breadth = std::make_unique<goalrec::core::BreadthRecommender>(&library);
  out.rungs.push_back({"breadth", breadth.get()});
  out.owned.push_back(std::move(breadth));
}

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  for (int i = 0; i < 6; ++i) {
    activity.push_back(rng.UniformUint32(num_actions));
  }
  goalrec::util::Normalize(activity);
  return activity;
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The hostile publisher: plain overwrite, no temp file, no rename.
bool OverwriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

/// Segment file name matching DeltaLog's on-disk layout — the hostile
/// delta writer bypasses DeltaLog::Append to publish non-atomically.
std::string SegmentName(uint32_t base_crc, uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%08x-%06llu.sdelta", base_crc,
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Delta chaos mode (--mode=delta): per epoch, a hostile writer publishes a
/// ".sdelta" segment non-atomically (often torn / bit-flipped / delayed),
/// a polling reader folds it into the serving snapshot, and every seventh
/// epoch a compactor republishes the base — also through the fault plane.
/// Invariants:
///   1. Query threads never observe a torn view: the served epoch is always
///      one whose segment (or base) was completely published.
///   2. Rollback is always to the last durable prefix: after a corrupt
///      publish the serving view stays at the previous epoch, and once the
///      writer rewrites the segment cleanly the reader converges to it.
///   3. Recovery p99 stays under --recovery_budget_ms (exit non-zero).
int RunDeltaMode(const goalrec::util::FlagParser& flags) {
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 43));
  const int64_t epochs = IntFlag(flags, "epochs", smoke ? 60 : 400);
  const int threads = static_cast<int>(IntFlag(flags, "threads", 4));
  const double budget_ms =
      static_cast<double>(IntFlag(flags, "recovery_budget_ms", 250));

  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 2000 : 10000;
  workload.num_actions = smoke ? 500 : 2000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary base =
      goalrec::eval::BuildScalingLibrary(workload, seed);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("goalrec_chaos_delta_" +
        std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::create_directories(dir);
  const std::string base_path = dir + "/base.snap";

  // Epoch 0: marker-stamped base, published atomically.
  goalrec::model::ImplementationLibrary epoch0 = MakeEpochLibrary(base, 0);
  std::string base_bytes = goalrec::model::EncodeSnapshot(epoch0);
  if (!goalrec::model::AtomicWriteFile(base_bytes, base_path).ok()) {
    std::fprintf(stderr, "cannot write initial base\n");
    return 1;
  }
  // Writer-side view: the oracle for what each clean publish should fold
  // to, and the source of chain headers for staged segments.
  goalrec::model::MergedLibraryView wview(
      epoch0, goalrec::util::Crc32c(base_bytes));

  goalrec::model::DeltaLogOptions reader_options;
  reader_options.remove_stale_segments = false;  // cleanup is the writer's
  goalrec::util::StatusOr<goalrec::model::DeltaLog> opened =
      goalrec::model::DeltaLog::Open(dir, reader_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "reader open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  goalrec::model::DeltaLog reader = std::move(opened).value();

  goalrec::obs::MetricRegistry registry;
  goalrec::serve::ReloadGuardOptions guard;
  guard.validate = true;
  guard.canary_probes = {{base.actions().Name(0), base.actions().Name(1)}};
  goalrec::serve::SnapshotManager manager(
      goalrec::model::MakeSnapshot(reader.library(), dir), BreadthLadder,
      guard, &registry);
  goalrec::serve::EngineOptions engine_options;
  engine_options.metrics = &registry;
  goalrec::serve::ServingEngine engine(&manager, engine_options);

  goalrec::serve::FaultInjectionOptions fault_options;
  fault_options.seed = seed + 1;
  fault_options.fs_truncate_rate = 0.2;
  fault_options.fs_bitflip_rate = 0.2;
  fault_options.fs_partial_write_rate = 0.2;
  fault_options.fs_rename_delay_rate = 0.1;
  fault_options.fs_rename_delay_ms = 1;
  goalrec::serve::FaultInjector injector(fault_options);

  std::vector<std::atomic<bool>> good_epochs(
      static_cast<size_t>(epochs) + 2);
  good_epochs[0].store(true);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_total{0};
  std::atomic<int64_t> torn_served{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const goalrec::serve::ServingSnapshot> snapshot =
            manager.Acquire();
        int64_t epoch = EpochOf(snapshot->library->library);
        if (epoch < 0 ||
            epoch >= static_cast<int64_t>(good_epochs.size()) ||
            !good_epochs[static_cast<size_t>(epoch)].load(
                std::memory_order_relaxed)) {
          torn_served.fetch_add(1, std::memory_order_relaxed);
        }
        goalrec::model::Activity activity = MakeActivity(
            snapshot->library->library.num_actions(),
            seed + static_cast<uint64_t>(t) * 1000003 + q++);
        (void)engine.Serve(activity, 10);
        queries_total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  goalrec::util::Rng rng(seed, /*stream=*/7);
  int64_t segment_publishes = 0;
  int64_t faulted_publishes = 0;
  int64_t compactions = 0;
  int64_t faulted_compactions = 0;
  int64_t unexpected_accepts = 0;
  int64_t unexpected_rejects = 0;
  int64_t rollback_violations = 0;
  bool always_recovered = true;
  std::vector<double> recovery_ms;
  int64_t last_good = 0;

  auto served_epoch = [&] {
    return EpochOf(manager.Acquire()->library->library);
  };

  for (int64_t e = 1; e <= epochs; ++e) {
    // The epoch's segment: a marker append, sometimes plus a tombstone of
    // an older row (never the latest marker, which is always the last
    // live row).
    goalrec::model::DeltaOps ops;
    ops.appended.push_back(goalrec::model::DeltaImplementation{
        kMarkerPrefix + std::to_string(e),
        {base.actions().Name(0), base.actions().Name(1)}});
    uint32_t live = wview.library().num_implementations();
    if (live > 2 && rng.Bernoulli(0.4)) {
      ops.tombstoned_impls.push_back(rng.UniformUint32(live - 1));
    }

    const uint64_t seq = wview.next_chain_seq();
    const std::string seg_path =
        dir + "/" + SegmentName(wview.base_crc32c(), seq);
    const std::string clean_bytes =
        goalrec::model::EncodeDeltaSegment(wview.NextHeader(), ops);
    std::string staged = clean_bytes;
    goalrec::serve::FsFault fault = injector.MaybeCorruptBytes(&staged, "");
    const bool corrupted =
        fault != goalrec::serve::FsFault::kNone && staged != clean_bytes;
    ++segment_publishes;
    if (!corrupted) {
      good_epochs[static_cast<size_t>(e)].store(true);
    } else {
      ++faulted_publishes;
    }
    std::this_thread::sleep_for(injector.MaybeRenameDelay());
    if (!OverwriteRaw(seg_path, staged)) {
      std::fprintf(stderr, "segment publish failed\n");
      return 1;
    }

    Clock::time_point fault_start = Clock::now();
    goalrec::util::StatusOr<uint64_t> poll =
        manager.ReloadFromDeltaLog(reader);
    if (corrupted) {
      int64_t served = served_epoch();
      if (served == e) ++unexpected_accepts;  // corrupt segment applied
      if (served != last_good) ++rollback_violations;
      // The restarted writer rewrites the segment cleanly; the reader must
      // converge to it (the quarantine is per-poll, not sticky).
      good_epochs[static_cast<size_t>(e)].store(true);
      if (!OverwriteRaw(seg_path, clean_bytes)) return 1;
      poll = manager.ReloadFromDeltaLog(reader);
      if (poll.ok() && served_epoch() == e) {
        recovery_ms.push_back(
            static_cast<double>((Clock::now() - fault_start).count()) / 1e6);
        last_good = e;
      } else {
        always_recovered = false;
      }
    } else {
      if (!poll.ok() || served_epoch() != e) {
        ++unexpected_rejects;  // a clean segment must always fold in
      } else {
        last_good = e;
      }
    }

    // Advance the writer's oracle view with the clean bytes.
    goalrec::util::StatusOr<goalrec::model::DeltaSegment> decoded =
        goalrec::model::DecodeDeltaSegment(clean_bytes, seg_path);
    if (!decoded.ok() ||
        !wview
             .ApplySegment(decoded.value(),
                           goalrec::util::Crc32c(clean_bytes), seg_path)
             .ok()) {
      std::fprintf(stderr, "writer view diverged at epoch %lld\n",
                   static_cast<long long>(e));
      return 1;
    }

    // Interleaved compaction: fold base+segments into a fresh base, also
    // through the fault plane, then retire the consumed chain.
    if (e % 7 != 0) continue;
    const uint32_t old_chain_crc = wview.base_crc32c();
    const uint64_t consumed_segments = wview.next_chain_seq() - 1;
    goalrec::model::ImplementationLibrary folded = wview.library();
    std::string new_base = goalrec::model::EncodeSnapshot(folded);
    std::string staged_base = new_base;
    fault = injector.MaybeCorruptBytes(&staged_base, base_bytes);
    const bool base_corrupted =
        fault != goalrec::serve::FsFault::kNone &&
        staged_base != new_base && staged_base != base_bytes;
    ++compactions;
    if (base_corrupted) ++faulted_compactions;
    if (!OverwriteRaw(base_path, staged_base)) return 1;

    fault_start = Clock::now();
    poll = manager.ReloadFromDeltaLog(reader);
    if (base_corrupted) {
      // A torn base must be rejected outright, old view keeps serving.
      if (served_epoch() != last_good) ++rollback_violations;
      if (!goalrec::model::AtomicWriteFile(new_base, base_path).ok()) {
        return 1;
      }
      poll = manager.ReloadFromDeltaLog(reader);
      if (poll.ok() && served_epoch() == last_good) {
        recovery_ms.push_back(
            static_cast<double>((Clock::now() - fault_start).count()) / 1e6);
      } else {
        always_recovered = false;
      }
    } else if (!poll.ok()) {
      ++unexpected_rejects;
    }
    // The writer retires the consumed chain and re-anchors.
    for (uint64_t s = 1; s <= consumed_segments; ++s) {
      std::error_code ec;
      std::filesystem::remove(dir + "/" + SegmentName(old_chain_crc, s), ec);
    }
    base_bytes = new_base;
    wview = goalrec::model::MergedLibraryView(
        std::move(folded), goalrec::util::Crc32c(base_bytes));
    // Post-cleanup poll so the reader drops its quarantine of the now
    // recognisably-stale chain (if any was recorded mid-compaction).
    (void)manager.ReloadFromDeltaLog(reader);
  }
  stop.store(true);
  for (std::thread& t : pool) t.join();

  goalrec::serve::FaultInjector::Counters faults = injector.counters();
  auto failure = [&registry](const char* reason) {
    return registry
        .GetCounter("goalrec_reload_failure_total", {{"reason", reason}},
                    "Rejected reload candidates, by guard stage")
        ->Value();
  };
  const double p99 = PercentileMs(recovery_ms, 0.99);
  const bool budget_ok = recovery_ms.empty() || p99 <= budget_ms;
  const bool invariants_hold = torn_served.load() == 0 &&
                               unexpected_accepts == 0 &&
                               unexpected_rejects == 0 &&
                               rollback_violations == 0 &&
                               always_recovered && budget_ok;

  std::printf(
      "{\n  \"benchmark\": \"chaos_reload\", \"mode\": \"delta\", "
      "\"smoke\": %s,\n",
      smoke ? "true" : "false");
  std::printf(
      "  \"epochs\": %lld, \"segment_publishes\": %lld, "
      "\"faulted_publishes\": %lld, \"compactions\": %lld, "
      "\"faulted_compactions\": %lld,\n",
      static_cast<long long>(epochs),
      static_cast<long long>(segment_publishes),
      static_cast<long long>(faulted_publishes),
      static_cast<long long>(compactions),
      static_cast<long long>(faulted_compactions));
  std::printf(
      "  \"faults_injected\": {\"truncate\": %llu, \"bitflip\": %llu, "
      "\"partial_write\": %llu, \"rename_delays\": %llu},\n",
      static_cast<unsigned long long>(faults.fs_truncations),
      static_cast<unsigned long long>(faults.fs_bitflips),
      static_cast<unsigned long long>(faults.fs_partial_writes),
      static_cast<unsigned long long>(faults.rename_delays));
  std::printf(
      "  \"reload_failure_total\": {\"load\": %lld, \"delta\": %lld, "
      "\"compact\": %lld, \"validate\": %lld, \"canary\": %lld},\n",
      static_cast<long long>(failure("load")),
      static_cast<long long>(failure("delta")),
      static_cast<long long>(failure("compact")),
      static_cast<long long>(failure("validate")),
      static_cast<long long>(failure("canary")));
  std::printf(
      "  \"queries\": %lld, \"torn_views_served\": %lld, "
      "\"unexpected_accepts\": %lld, \"unexpected_rejects\": %lld, "
      "\"rollback_violations\": %lld,\n",
      static_cast<long long>(queries_total.load()),
      static_cast<long long>(torn_served.load()),
      static_cast<long long>(unexpected_accepts),
      static_cast<long long>(unexpected_rejects),
      static_cast<long long>(rollback_violations));
  std::printf(
      "  \"recovery_ms\": {\"samples\": %zu, \"p50\": %.2f, \"p99\": %.2f, "
      "\"budget\": %.0f, \"within_budget\": %s},\n",
      recovery_ms.size(), PercentileMs(recovery_ms, 0.50), p99, budget_ms,
      budget_ok ? "true" : "false");
  std::printf("  \"always_recovered\": %s, \"invariants_hold\": %s\n}\n",
              always_recovered ? "true" : "false",
              invariants_hold ? "true" : "false");

  std::error_code cleanup_ec;
  std::filesystem::remove_all(dir, cleanup_ec);
  return invariants_hold ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  if (flags.GetString("mode", "snapshot") == "delta") {
    return RunDeltaMode(flags);
  }
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 41));
  const int64_t epochs = IntFlag(flags, "epochs", smoke ? 60 : 400);
  const int threads = static_cast<int>(IntFlag(flags, "threads", 4));

  // Small library: the interesting work is reload churn, not query cost.
  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 2000 : 10000;
  workload.num_actions = smoke ? 500 : 2000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary base =
      goalrec::eval::BuildScalingLibrary(workload, seed);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("goalrec_chaos_" + std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/library.snap";

  // Epoch 0 is the initial good snapshot, written atomically.
  goalrec::model::ImplementationLibrary epoch0 = MakeEpochLibrary(base, 0);
  if (!goalrec::model::SaveSnapshot(epoch0, path).ok()) {
    std::fprintf(stderr, "cannot write initial snapshot\n");
    return 1;
  }
  // good_epochs[e]: the writer completed a clean publish of epoch e, so
  // serving it is legal. Sized up front; flags flip true before the clean
  // bytes hit disk (never after the reload), so there is no window where a
  // legally-served epoch reads as torn.
  std::vector<std::atomic<bool>> good_epochs(
      static_cast<size_t>(epochs) + 2);
  good_epochs[0].store(true);

  auto initial = goalrec::model::LoadLibrarySnapshot(path);
  if (!initial.ok()) {
    std::fprintf(stderr, "initial load failed: %s\n",
                 initial.status().ToString().c_str());
    return 1;
  }
  goalrec::obs::MetricRegistry registry;
  goalrec::serve::ReloadGuardOptions guard;
  guard.validate = true;
  guard.canary_probes = {{base.actions().Name(0), base.actions().Name(1)}};
  goalrec::serve::SnapshotManager manager(std::move(initial).value(),
                                          BreadthLadder, guard, &registry);
  goalrec::serve::EngineOptions engine_options;
  engine_options.metrics = &registry;
  goalrec::serve::ServingEngine engine(&manager, engine_options);

  goalrec::serve::FaultInjectionOptions fault_options;
  fault_options.seed = seed + 1;
  fault_options.fs_truncate_rate = 0.2;
  fault_options.fs_bitflip_rate = 0.2;
  fault_options.fs_partial_write_rate = 0.2;
  fault_options.fs_rename_delay_rate = 0.1;
  fault_options.fs_rename_delay_ms = 1;
  goalrec::serve::FaultInjector injector(fault_options);

  // Query threads: closed loop for the writer's whole run, checking the
  // served-epoch invariant on every query.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_total{0};
  std::atomic<int64_t> torn_served{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const goalrec::serve::ServingSnapshot> snapshot =
            manager.Acquire();
        int64_t epoch = EpochOf(snapshot->library->library);
        if (epoch < 0 ||
            epoch >= static_cast<int64_t>(good_epochs.size()) ||
            !good_epochs[static_cast<size_t>(epoch)].load(
                std::memory_order_relaxed)) {
          torn_served.fetch_add(1, std::memory_order_relaxed);
        }
        goalrec::model::Activity activity = MakeActivity(
            snapshot->library->library.num_actions(),
            seed + static_cast<uint64_t>(t) * 1000003 + q++);
        (void)engine.Serve(activity, 10);
        queries_total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The chaos writer: per epoch, publish (often corrupted) bytes
  // non-atomically, reload, and verify the guard's verdict matches the
  // fault. After every rejected reload, republish clean and require
  // convergence.
  int64_t clean_publishes = 0;
  int64_t faulted_publishes = 0;
  int64_t unexpected_accepts = 0;
  int64_t unexpected_rejects = 0;
  int64_t rollback_violations = 0;
  bool always_recovered = true;
  std::vector<double> recovery_ms;
  int64_t last_good = 0;

  for (int64_t e = 1; e <= epochs; ++e) {
    goalrec::model::ImplementationLibrary lib = MakeEpochLibrary(base, e);
    const std::string clean_bytes = goalrec::model::EncodeSnapshot(lib);
    std::string staged = clean_bytes;
    const std::string old_bytes = ReadFileOrEmpty(path);
    goalrec::serve::FsFault fault =
        injector.MaybeCorruptBytes(&staged, old_bytes);

    const bool corrupted = fault != goalrec::serve::FsFault::kNone &&
                           staged != old_bytes && staged != clean_bytes;
    if (!corrupted) {
      // Clean bytes (or a "torn" write that left a complete old/new file):
      // mark good before disk so a concurrent acquire is never flagged.
      good_epochs[static_cast<size_t>(e)].store(true);
    } else {
      ++faulted_publishes;
    }
    std::this_thread::sleep_for(injector.MaybeRenameDelay());
    if (!OverwriteRaw(path, staged)) {
      std::fprintf(stderr, "publish write failed\n");
      return 1;
    }

    Clock::time_point fault_start = Clock::now();
    bool ok = manager.ReloadFromFile(path).ok();
    if (corrupted) {
      if (ok) {
        // A corrupted byte stream loaded: the CRC framing failed its one
        // job (or the corruption produced byte-identical content).
        ++unexpected_accepts;
      } else {
        // Rollback check: the rejected candidate must not have disturbed
        // the serving snapshot.
        if (EpochOf(manager.Acquire()->library->library) != last_good) {
          ++rollback_violations;
        }
        // Converge: republish the same epoch cleanly, atomically this time.
        good_epochs[static_cast<size_t>(e)].store(true);
        bool recovered =
            goalrec::model::SaveSnapshot(lib, path).ok() &&
            manager.ReloadFromFile(path).ok();
        if (recovered) {
          recovery_ms.push_back(
              static_cast<double>((Clock::now() - fault_start).count()) /
              1e6);
          last_good = e;
        } else {
          always_recovered = false;
        }
      }
    } else {
      ++clean_publishes;
      if (!ok) {
        // A clean, complete snapshot must always publish. (A torn write
        // that restored the old file loads the old epoch — also ok=true.)
        ++unexpected_rejects;
      }
      int64_t served = EpochOf(manager.Acquire()->library->library);
      if (served == e || staged != clean_bytes) {
        last_good = served;
      }
    }
  }
  stop.store(true);
  for (std::thread& t : pool) t.join();

  goalrec::serve::FaultInjector::Counters faults = injector.counters();
  auto failure = [&registry](const char* reason) {
    return registry
        .GetCounter("goalrec_reload_failure_total", {{"reason", reason}},
                    "Rejected reload candidates, by guard stage")
        ->Value();
  };

  const bool invariants_hold = torn_served.load() == 0 &&
                               unexpected_accepts == 0 &&
                               unexpected_rejects == 0 &&
                               rollback_violations == 0 && always_recovered;
  std::printf("{\n  \"benchmark\": \"chaos_reload\", \"smoke\": %s,\n",
              smoke ? "true" : "false");
  std::printf(
      "  \"epochs\": %lld, \"clean_publishes\": %lld, "
      "\"faulted_publishes\": %lld,\n",
      static_cast<long long>(epochs), static_cast<long long>(clean_publishes),
      static_cast<long long>(faulted_publishes));
  std::printf(
      "  \"faults_injected\": {\"truncate\": %llu, \"bitflip\": %llu, "
      "\"partial_write\": %llu, \"rename_delays\": %llu},\n",
      static_cast<unsigned long long>(faults.fs_truncations),
      static_cast<unsigned long long>(faults.fs_bitflips),
      static_cast<unsigned long long>(faults.fs_partial_writes),
      static_cast<unsigned long long>(faults.rename_delays));
  std::printf(
      "  \"reload_failure_total\": {\"load\": %lld, \"ladder\": %lld, "
      "\"validate\": %lld, \"canary\": %lld},\n",
      static_cast<long long>(failure("load")),
      static_cast<long long>(failure("ladder")),
      static_cast<long long>(failure("validate")),
      static_cast<long long>(failure("canary")));
  std::printf(
      "  \"queries\": %lld, \"torn_snapshots_served\": %lld, "
      "\"unexpected_accepts\": %lld, \"unexpected_rejects\": %lld, "
      "\"rollback_violations\": %lld,\n",
      static_cast<long long>(queries_total.load()),
      static_cast<long long>(torn_served.load()),
      static_cast<long long>(unexpected_accepts),
      static_cast<long long>(unexpected_rejects),
      static_cast<long long>(rollback_violations));
  std::printf(
      "  \"recovery_ms\": {\"samples\": %zu, \"p50\": %.2f, \"p99\": %.2f},\n",
      recovery_ms.size(), PercentileMs(recovery_ms, 0.50),
      PercentileMs(recovery_ms, 0.99));
  std::printf("  \"always_recovered\": %s, \"invariants_hold\": %s\n}\n",
              always_recovered ? "true" : "false",
              invariants_hold ? "true" : "false");

  std::error_code cleanup_ec;
  std::filesystem::remove_all(dir, cleanup_ec);
  return invariants_hold ? 0 : 1;
}
