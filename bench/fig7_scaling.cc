// Figure 7: execution time of the goal-based mechanisms as the
// implementation library scales (to millions of implementations at full
// scale) and as action connectivity varies.
//
// Paper shape (§5.4, §6.2 and Figure 7): Focus_cl is cheaper than Focus_cmp
// (asymmetric set difference vs intersection); Best Match is by far the
// slowest (it vectorises the whole candidate action space) and Breadth is
// significantly cheaper than Best Match (the §6.2 argument for preferring
// it); connectivity — not the raw implementation count — is the main cost
// driver; all mechanisms scale to millions of implementations.

#include <cstdio>

#include "bench/common.h"
#include "eval/scaling.h"

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Figure 7 — goal-based recommendation time vs library size and "
      "connectivity",
      "Focus_cl <= Focus_cmp; Breadth << BestMatch (slowest); time grows "
      "with connectivity more than with implementation count");

  goalrec::eval::ScalingOptions impl_sweep =
      goalrec::eval::DefaultImplCountSweep();
  goalrec::eval::ScalingOptions conn_sweep =
      goalrec::eval::DefaultConnectivitySweep();
  if (scale == goalrec::bench::Scale::kSmall) {
    for (goalrec::eval::ScalingWorkload& w : impl_sweep.workloads) {
      w.num_implementations /= 20;
      w.num_actions /= 20;
    }
    for (goalrec::eval::ScalingWorkload& w : conn_sweep.workloads) {
      w.num_implementations /= 20;
      w.num_actions = std::max(48u, w.num_actions / 20);
    }
    impl_sweep.num_queries = 10;
    conn_sweep.num_queries = 10;
  }

  std::printf("\n--- sweep A: implementation count (fixed connectivity) ---\n");
  std::printf("%s",
              goalrec::eval::RenderScaling(
                  goalrec::eval::RunScaling(impl_sweep))
                  .c_str());

  std::printf("\n--- sweep B: connectivity (fixed implementation count) ---\n");
  std::printf("%s",
              goalrec::eval::RenderScaling(
                  goalrec::eval::RunScaling(conn_sweep))
                  .c_str());

  std::printf(
      "\npaper reference: all mechanisms scale to millions of "
      "implementations; Focus_cl cheaper than Focus_cmp, Breadth "
      "significantly cheaper than BestMatch; connectivity dominates\n");
  return 0;
}
