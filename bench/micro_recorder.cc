// Flight-recorder overhead gate plus a tail-exemplar capture demo (single
// JSON document on stdout; recorded run in BENCH_obs.json).
//
//   * Overhead: the BestMatch pooled hot path at the BENCH_overload
//     50k-implementation scenario, recorder enabled vs disabled (the runtime
//     kill switch — both sides run the same binary, so the comparison
//     isolates the Record() cost: clock read + three relaxed stores). Passes
//     are interleaved and the medians compared; the process exits non-zero
//     when the enabled path is more than 3% slower, so scripts/check.sh
//     (run_obs_smoke) gates recorder regressions in the plain and TSAN
//     trees. The instrumented global operator new additionally requires the
//     steady state to stay allocation-free on both sides.
//
//   * Exemplar demo: a ServingEngine with a latency-burst fault injector
//     (the correlated-slowdown scenario) serves a query stream; the bursts'
//     forced-slow queries must land in the ExemplarReservoir with a
//     non-empty recorder slice, and the rendered statusz page must list the
//     slowest one by id. This is the end-to-end "worst bucket links back to
//     a decodable query" claim of docs/observability.md, checked in CI.
//
// Flags: --smoke (smaller library, short sweep; CI), --seed, --queries,
// --passes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/best_match.h"
#include "core/query_workspace.h"
#include "core/recommender.h"
#include "eval/scaling.h"
#include "obs/exemplar.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "serve/engine.h"
#include "serve/fault_injection.h"
#include "serve/popularity_floor.h"
#include "serve/statusz.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

// --- Global allocation counter ----------------------------------------------

namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using Clock = std::chrono::steady_clock;

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < 8) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

/// One timed sweep over the activity stream; returns seconds and leaves the
/// steady-state allocation delta in *allocs.
double TimedSweep(const goalrec::core::Recommender& recommender,
                  const std::vector<goalrec::model::Activity>& activities,
                  size_t k, int repeats, goalrec::core::QueryWorkspace& ws,
                  goalrec::core::RecommendationList& out, int64_t* allocs) {
  int64_t before = g_allocations.load(std::memory_order_relaxed);
  Clock::time_point start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const goalrec::model::Activity& h : activities) {
      recommender.RecommendPooled(h, k, nullptr, &ws, out);
    }
  }
  double seconds = static_cast<double>((Clock::now() - start).count()) / 1e9;
  *allocs += g_allocations.load(std::memory_order_relaxed) - before;
  return seconds;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 31));
  const size_t queries =
      static_cast<size_t>(IntFlag(flags, "queries", smoke ? 64 : 256));
  const int repeats =
      static_cast<int>(IntFlag(flags, "repeats", smoke ? 2 : 6));
  const int passes = static_cast<int>(IntFlag(flags, "passes", 5));
  // Instrumented builds (TSan in particular) tax the recorder's atomic ring
  // writes far more than the arithmetic-heavy scoring loop they ride on, so
  // the relative overhead no longer reflects production cost; check.sh
  // widens the gate for those trees. The 3% default is the production gate.
  goalrec::util::StatusOr<double> limit_flag =
      flags.GetDouble("overhead_limit_pct", 3.0);
  const double overhead_limit_pct = limit_flag.ok() ? *limit_flag : 3.0;
  const size_t k = 10;

  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 10000 : 50000;
  workload.num_actions = smoke ? 1000 : 5000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary library =
      goalrec::eval::BuildScalingLibrary(workload, 9);

  std::vector<goalrec::model::Activity> activities;
  activities.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    activities.push_back(MakeActivity(library.num_actions(), seed + q));
  }

  goalrec::core::BestMatchRecommender best_match(&library);
  goalrec::obs::FlightRecorder& recorder = goalrec::obs::FlightRecorder::Default();

  // --- Overhead: enabled vs disabled, interleaved, median of `passes` ------
  goalrec::core::QueryWorkspace workspace;
  goalrec::core::RecommendationList out;
  recorder.set_enabled(true);
  for (const goalrec::model::Activity& h : activities) {
    best_match.RecommendPooled(h, k, nullptr, &workspace, out);
  }
  std::vector<double> disabled_s, enabled_s;
  int64_t disabled_allocs = 0, enabled_allocs = 0;
  for (int pass = 0; pass < passes; ++pass) {
    recorder.set_enabled(false);
    disabled_s.push_back(TimedSweep(best_match, activities, k, repeats,
                                    workspace, out, &disabled_allocs));
    recorder.set_enabled(true);
    enabled_s.push_back(TimedSweep(best_match, activities, k, repeats,
                                   workspace, out, &enabled_allocs));
  }
  double med_disabled = Median(disabled_s);
  double med_enabled = Median(enabled_s);
  double total_queries =
      static_cast<double>(queries) * static_cast<double>(repeats);
  double overhead_pct =
      med_disabled > 0.0
          ? (med_enabled - med_disabled) / med_disabled * 100.0
          : 0.0;
  bool overhead_ok = overhead_pct <= overhead_limit_pct;
  bool allocs_ok = disabled_allocs == 0 && enabled_allocs == 0;

  // --- Exemplar demo: forced-slow queries must become decodable exemplars --
  goalrec::serve::LibraryPopularityRecommender popularity(&library);
  goalrec::serve::FaultInjectionOptions fault_options;
  fault_options.seed = seed;
  fault_options.latency_rate = 1.0 / 32.0;
  fault_options.latency_burst_count = 2;
  fault_options.latency_burst_ms = smoke ? 15 : 30;
  goalrec::serve::FaultInjector faults(fault_options);
  goalrec::obs::ExemplarReservoir exemplars;
  goalrec::obs::SloOptions slo_options;
  goalrec::obs::SloTracker slo(slo_options);
  goalrec::serve::EngineOptions engine_options;
  engine_options.faults = &faults;
  engine_options.exemplars = &exemplars;
  engine_options.slo = &slo;
  goalrec::serve::ServingEngine engine(
      {{"best_match", &best_match}, {"popularity", &popularity}},
      engine_options);
  for (const goalrec::model::Activity& h : activities) {
    (void)engine.Serve(h, k);
  }
  uint64_t injected_delays = faults.counters().delays;
  std::vector<goalrec::obs::TailExemplar> retained = exemplars.Snapshot();
  const goalrec::obs::TailExemplar* slowest = nullptr;
  for (const goalrec::obs::TailExemplar& exemplar : retained) {
    if (slowest == nullptr || exemplar.latency_us > slowest->latency_us) {
      slowest = &exemplar;
    }
  }
  goalrec::serve::StatuszSources sources;
  sources.engine = &engine;
  sources.slo = &slo;
  sources.exemplars = &exemplars;
  std::string statusz = goalrec::serve::RenderStatusz(sources);
  char id_hex[32] = "";
  bool statusz_lists_slowest = false;
  bool slice_decodes = false;
  if (slowest != nullptr) {
    std::snprintf(id_hex, sizeof(id_hex), "%016" PRIx64, slowest->id);
    statusz_lists_slowest = statusz.find(id_hex) != std::string::npos;
    // The decoded slice must show the query's own recorder events: its
    // start, the serving rung's exit, and at least one kernel stage stamp.
    std::string decoded = goalrec::serve::FormatServeEvents(
        slowest->events, {"best_match", "popularity"});
    slice_decodes = decoded.find("query_start") != std::string::npos &&
                    decoded.find("rung_exit") != std::string::npos &&
                    decoded.find("stage") != std::string::npos;
  }
  // The forced-slow query must beat the injected burst floor, so the
  // capture is demonstrably the burst, not ambient noise.
  double burst_floor_us =
      static_cast<double>(fault_options.latency_burst_ms) * 1e3;
  bool demo_ok = !goalrec::obs::kObsEnabled ||
                 (injected_delays > 0 && slowest != nullptr &&
                  slowest->latency_us >= burst_floor_us &&
                  !slowest->events.empty() && statusz_lists_slowest &&
                  slice_decodes);

  std::printf("{\n  \"benchmark\": \"micro_recorder\", \"smoke\": %s, "
              "\"obs_enabled\": %s,\n",
              smoke ? "true" : "false",
              goalrec::obs::kObsEnabled ? "true" : "false");
  std::printf(
      "  \"scenario\": {\"num_implementations\": %u, \"num_actions\": %u, "
      "\"activity_size\": 8, \"k\": %zu, \"queries\": %zu, \"repeats\": %d, "
      "\"passes\": %d},\n",
      library.num_implementations(), library.num_actions(), k, queries,
      repeats, passes);
  std::printf(
      "  \"overhead\": {\"disabled_us_per_query\": %.2f, "
      "\"enabled_us_per_query\": %.2f, \"overhead_pct\": %.2f, "
      "\"limit_pct\": %.1f, \"steady_allocs_disabled\": %lld, "
      "\"steady_allocs_enabled\": %lld},\n",
      med_disabled * 1e6 / total_queries, med_enabled * 1e6 / total_queries,
      overhead_pct, overhead_limit_pct, static_cast<long long>(disabled_allocs),
      static_cast<long long>(enabled_allocs));
  std::printf(
      "  \"exemplar_demo\": {\"queries\": %zu, \"injected_delays\": %llu, "
      "\"exemplars_retained\": %zu, \"slowest_ms\": %.2f, "
      "\"slowest_id\": \"%s\", \"slowest_recorder_events\": %zu, "
      "\"statusz_lists_slowest\": %s, \"slice_decodes\": %s},\n",
      queries, static_cast<unsigned long long>(injected_delays),
      retained.size(),
      slowest != nullptr ? slowest->latency_us / 1e3 : 0.0, id_hex,
      slowest != nullptr ? slowest->events.size() : 0,
      statusz_lists_slowest ? "true" : "false",
      slice_decodes ? "true" : "false");
  std::printf("  \"overhead_ok\": %s, \"zero_alloc\": %s, \"demo_ok\": %s\n}\n",
              overhead_ok ? "true" : "false", allocs_ok ? "true" : "false",
              demo_ok ? "true" : "false");

  if (!overhead_ok) {
    std::fprintf(stderr,
                 "FAIL: recorder overhead %.2f%% exceeds the %.1f%% gate\n",
                 overhead_pct, overhead_limit_pct);
    return 1;
  }
  if (!allocs_ok) {
    std::fprintf(stderr, "FAIL: hot path allocated in steady state\n");
    return 1;
  }
  if (!demo_ok) {
    std::fprintf(stderr,
                 "FAIL: forced-slow query was not captured as a decodable "
                 "tail exemplar\n");
    return 1;
  }
  return 0;
}
