// Micro-benchmark for the §5.4 claim that the two Focus variants differ only
// through their core set operation: intersection (completeness) vs
// asymmetric difference (closeness). Measures the primitive costs directly.

#include <benchmark/benchmark.h>

#include "util/random.h"
#include "util/set_ops.h"

namespace {

using goalrec::util::IdVector;

IdVector MakeSet(size_t size, uint32_t universe, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  IdVector set;
  while (set.size() < size) {
    uint32_t v = rng.UniformUint32(universe);
    if (!goalrec::util::Contains(set, v)) {
      set.push_back(v);
      std::sort(set.begin(), set.end());
    }
  }
  return set;
}

void BM_IntersectionSize(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  IdVector b = MakeSet(n, static_cast<uint32_t>(4 * n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::IntersectionSize(a, b));
  }
}
BENCHMARK(BM_IntersectionSize)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_DifferenceSize(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  IdVector b = MakeSet(n, static_cast<uint32_t>(4 * n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::DifferenceSize(a, b));
  }
}
BENCHMARK(BM_DifferenceSize)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_MaterialisedIntersect(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  IdVector b = MakeSet(n, static_cast<uint32_t>(4 * n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::Intersect(a, b));
  }
}
BENCHMARK(BM_MaterialisedIntersect)->Arg(64)->Arg(512);

void BM_MaterialisedDifference(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  IdVector b = MakeSet(n, static_cast<uint32_t>(4 * n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::Difference(a, b));
  }
}
BENCHMARK(BM_MaterialisedDifference)->Arg(64)->Arg(512);

void BM_Union(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  IdVector b = MakeSet(n, static_cast<uint32_t>(4 * n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::Union(a, b));
  }
}
BENCHMARK(BM_Union)->Arg(64)->Arg(512);

void BM_Contains(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IdVector a = MakeSet(n, static_cast<uint32_t>(4 * n), 1);
  uint32_t probe = a[a.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::util::Contains(a, probe));
  }
}
BENCHMARK(BM_Contains)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
