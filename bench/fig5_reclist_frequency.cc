// Figure 5: distribution of per-action frequency across the goal-based
// methods' recommendation lists (how often the same action reappears in
// different users' lists).
//
// Paper shape: on 43T the maximum frequency is ≈0.001 (nothing
// monopolises); on FoodMart the majority of actions appear with frequency
// below 0.2, with BestMatch (22%) and Breadth (14%) having the most actions
// above 0.2 because they deliberately serve many goals at once.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::SuiteOptions options =
      goalrec::bench::DefaultSuiteOptions(scale);
  // Figure 5 examines the goal-based mechanisms only.
  options.include_cf_knn = false;
  options.include_cf_mf = false;
  options.include_content = false;
  goalrec::eval::Suite suite(&prepared.dataset, {}, options);
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::vector<goalrec::eval::FrequencyRow> rows =
      goalrec::eval::ComputeRecListFrequency(results);
  std::printf("%s", goalrec::eval::RenderFrequency(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Figure 5 — frequency of actions across recommendation lists",
      "43T max frequency tiny; FoodMart majority < 0.2 with "
      "BestMatch/Breadth repeating the most (they serve many goals at once)");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference: 43T max freq ≈ 0.001; FoodMart actions above 0.2: "
      "BestMatch 22%%, Breadth 14%%, Focus variants fewer\n");
  return 0;
}
