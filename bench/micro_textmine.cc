// Micro-benchmarks for the text-extraction pipeline: step splitting,
// tokenisation, phrase extraction with and without stemming, and full
// corpus-to-library builds. The paper extracted 18K implementations from
// 43Things stories; these numbers show the C++ pipeline handles corpora of
// that size in well under a second.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "textmine/extractor.h"
#include "textmine/normalize.h"
#include "textmine/tokenizer.h"
#include "util/random.h"

namespace {

// Synthetic how-to corpus: goal names and step templates combined by a
// seeded generator.
std::vector<goalrec::textmine::HowToDocument> MakeCorpus(size_t documents,
                                                         uint64_t seed) {
  static const char* kVerbs[] = {"drink", "cook", "run", "read",
                                 "practice", "save", "clean", "plan"};
  static const char* kObjects[] = {"more water", "at home",    "every day",
                                   "a chapter",  "the basics", "some money",
                                   "the desk",   "the week"};
  goalrec::util::Rng rng(seed);
  std::vector<goalrec::textmine::HowToDocument> corpus;
  corpus.reserve(documents);
  for (size_t d = 0; d < documents; ++d) {
    goalrec::textmine::HowToDocument doc;
    doc.goal = "goal " + std::to_string(rng.UniformUint32(
                             static_cast<uint32_t>(documents / 4 + 1)));
    uint32_t steps = 1 + rng.UniformUint32(5);
    for (uint32_t s = 0; s < steps; ++s) {
      doc.text += "First, I started to ";
      doc.text += kVerbs[rng.UniformUint32(8)];
      doc.text += " ";
      doc.text += kObjects[rng.UniformUint32(8)];
      doc.text += ". ";
    }
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

void BM_SplitSteps(benchmark::State& state) {
  std::string text =
      "First, I started to drink more water. Then I stopped eating at "
      "restaurants; I also began to go running every morning.\n"
      "1. track calories\n2. sleep eight hours";
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::textmine::SplitSteps(text));
  }
}
BENCHMARK(BM_SplitSteps);

void BM_Tokenize(benchmark::State& state) {
  std::string step = "Then I stopped eating at restaurants!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(goalrec::textmine::Tokenize(step));
  }
}
BENCHMARK(BM_Tokenize);

void BM_ExtractActionPhrase(benchmark::State& state) {
  std::string step = "First, I started to drink more water every day";
  goalrec::textmine::ExtractorOptions options;
  options.stem_words = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        goalrec::textmine::ExtractActionPhrase(step, options));
  }
}
BENCHMARK(BM_ExtractActionPhrase)->Arg(0)->Arg(1);

void BM_BuildLibraryFromCorpus(benchmark::State& state) {
  std::vector<goalrec::textmine::HowToDocument> corpus =
      MakeCorpus(static_cast<size_t>(state.range(0)), 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        goalrec::textmine::BuildLibraryFromDocuments(corpus));
  }
}
BENCHMARK(BM_BuildLibraryFromCorpus)->Arg(1000)->Arg(18000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
