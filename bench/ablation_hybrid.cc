// Ablation: the hybrid goal+content extension (the paper's §7 future work).
// Sweeps the blend factor α on FoodMart and reports, per α, the two
// quality metrics it trades against each other: goal completeness after the
// list (Table 4's metric — the goal-based strength) and within-list feature
// similarity (Table 5's metric — the content-based signature). Expected
// shape: completeness decays and self-similarity rises as α moves from the
// pure goal-based strategy (α=0) toward pure content re-ranking (α=1).

#include <cstdio>

#include "bench/common.h"
#include "core/breadth.h"
#include "core/hybrid.h"
#include "eval/reports.h"
#include "eval/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Ablation — hybrid goal+content blend factor (FoodMart, Breadth base)",
      "goal completeness decays and list self-similarity rises with α");
  goalrec::bench::PreparedDataset prepared =
      goalrec::bench::PrepareFoodmart(scale);
  goalrec::bench::PrintDatasetSummary(prepared);

  goalrec::core::BreadthRecommender breadth(&prepared.dataset.library);

  goalrec::eval::TextTable table(
      {"alpha", "completeness AvgAvg", "pairwise sim AvgAvg"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    goalrec::core::HybridOptions options;
    options.alpha = alpha;
    goalrec::core::HybridRecommender hybrid(
        &breadth, &prepared.dataset.features, options);

    goalrec::eval::MethodResult result;
    result.name = hybrid.name();
    result.lists.resize(prepared.inputs.size());
    goalrec::util::ParallelFor(prepared.inputs.size(), [&](size_t u) {
      result.lists[u] = hybrid.Recommend(prepared.inputs[u], 10);
    });

    std::vector<goalrec::eval::CompletenessRow> completeness =
        goalrec::eval::ComputeCompleteness(prepared.dataset.library,
                                           prepared.users, {result});
    std::vector<goalrec::eval::SimilarityRow> similarity =
        goalrec::eval::ComputePairwiseSimilarity(prepared.dataset.features,
                                                 {result});
    table.AddRow({goalrec::eval::FormatDouble(alpha, 2),
                  goalrec::eval::FormatDouble(completeness[0].avg_avg, 3),
                  goalrec::eval::FormatDouble(similarity[0].avg_avg, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
