// Delta-segment benchmark for the incremental data plane (single JSON
// document on stdout; recorded run in BENCH_delta.json):
//
//   1. Mutation throughput, writer only: DeltaLog::Append wall time
//      (encode + fold + fsync'd atomic publish) over a sustained append
//      stream with periodic tombstones, plus Compact() cost at the end of
//      the stream — the price of folding the chain back into a base.
//   2. Update size: one appended implementation costs a ~hundred-byte
//      ".sdelta" segment instead of a full base republish. The bench
//      gates on the delta being at least 10x smaller than the base
//      snapshot — the whole point of the format — and exits non-zero if a
//      "delta" ever approaches base size.
//   3. Update-under-query-load: closed-loop query threads against a
//      snapshot-mode ServingEngine while a writer appends through a
//      DeltaLog and a polling reader republishes via
//      SnapshotManager::ReloadFromDeltaLog (the full production pipeline:
//      append -> poll -> fold -> guarded swap). Reports sustained
//      updates/sec, end-to-end publish latency, and query p50/p99 with
//      and without concurrent mutation.
//
// Flags: --smoke (small library, short sweep; CI), --seed, --updates,
// --threads.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/breadth.h"
#include "eval/scaling.h"
#include "model/delta.h"
#include "model/delta_log.h"
#include "model/snapshot.h"
#include "model/snapshot_io.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot_manager.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

double MsSince(Clock::time_point start) {
  return static_cast<double>((Clock::now() - start).count()) / 1e6;
}

int64_t IntFlag(const goalrec::util::FlagParser& flags,
                const std::string& name, int64_t fallback) {
  goalrec::util::StatusOr<int64_t> value = flags.GetInt(name, fallback);
  return value.ok() ? *value : fallback;
}

goalrec::model::DeltaOps MakeOps(const goalrec::model::ImplementationLibrary&
                                     base,
                                 goalrec::util::Rng& rng, int64_t update,
                                 uint32_t logical_rows) {
  goalrec::model::DeltaOps ops;
  goalrec::model::DeltaImplementation impl;
  impl.goal = "delta goal " + std::to_string(update);
  for (int a = 0; a < 4; ++a) {
    impl.actions.push_back(
        base.actions().Name(rng.UniformUint32(base.num_actions())));
  }
  ops.appended.push_back(std::move(impl));
  if (logical_rows > 2 && rng.Bernoulli(0.3)) {
    ops.tombstoned_impls.push_back(rng.UniformUint32(logical_rows / 2));
  }
  return ops;
}

void BreadthLadder(const goalrec::model::ImplementationLibrary& library,
                   goalrec::serve::ServingSnapshot& out) {
  auto breadth = std::make_unique<goalrec::core::BreadthRecommender>(&library);
  out.rungs.push_back({"breadth", breadth.get()});
  out.owned.push_back(std::move(breadth));
}

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  for (int i = 0; i < 6; ++i) {
    activity.push_back(rng.UniformUint32(num_actions));
  }
  goalrec::util::Normalize(activity);
  return activity;
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::util::FlagParser flags(argc, argv);
  goalrec::util::StatusOr<bool> smoke_flag = flags.GetBool("smoke", false);
  const bool smoke = smoke_flag.ok() && *smoke_flag;
  const uint64_t seed = static_cast<uint64_t>(IntFlag(flags, "seed", 47));
  const int64_t updates = IntFlag(flags, "updates", smoke ? 100 : 1000);
  const int threads = static_cast<int>(IntFlag(flags, "threads", 4));
  const int64_t compact_every = 50;

  goalrec::eval::ScalingWorkload workload;
  workload.num_implementations = smoke ? 2000 : 10000;
  workload.num_actions = smoke ? 500 : 2000;
  workload.implementation_size = 6;
  goalrec::model::ImplementationLibrary base =
      goalrec::eval::BuildScalingLibrary(workload, seed);
  const size_t base_snapshot_bytes =
      goalrec::model::EncodeSnapshot(base).size();

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("goalrec_micro_delta_" +
        std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);

  // --- 1. Writer-only mutation throughput -----------------------------------
  goalrec::util::StatusOr<goalrec::model::DeltaLog> created =
      goalrec::model::DeltaLog::Create(dir, base);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  goalrec::model::DeltaLog writer = std::move(created).value();
  goalrec::util::Rng rng(seed, /*stream=*/1);

  std::vector<double> append_ms;
  append_ms.reserve(static_cast<size_t>(updates));
  size_t max_segment_bytes = 0;
  Clock::time_point stream_start = Clock::now();
  for (int64_t u = 0; u < updates; ++u) {
    goalrec::model::DeltaOps ops = MakeOps(
        base, rng, u, writer.library().num_implementations());
    Clock::time_point start = Clock::now();
    if (!writer.Append(ops).ok()) {
      std::fprintf(stderr, "append %lld failed\n",
                   static_cast<long long>(u));
      return 1;
    }
    append_ms.push_back(MsSince(start));
    std::error_code ec;
    uintmax_t size = std::filesystem::file_size(
        writer.SegmentPath(writer.view().next_chain_seq() - 1), ec);
    if (!ec) max_segment_bytes = std::max(max_segment_bytes, size);
    if ((u + 1) % compact_every == 0 && !writer.Compact().ok()) {
      std::fprintf(stderr, "compact failed\n");
      return 1;
    }
  }
  const double stream_seconds =
      static_cast<double>((Clock::now() - stream_start).count()) / 1e9;
  Clock::time_point compact_start = Clock::now();
  if (!writer.Compact().ok()) return 1;
  const double final_compact_ms = MsSince(compact_start);
  const double appends_per_sec =
      stream_seconds > 0 ? static_cast<double>(updates) / stream_seconds
                         : 0.0;

  // --- 2. Update size gate ---------------------------------------------------
  // A single-implementation delta must stay far below a base republish;
  // 10x is a loose floor (real ratios are 3-4 orders of magnitude).
  const bool size_gate_ok =
      max_segment_bytes > 0 && max_segment_bytes * 10 < base_snapshot_bytes;

  // --- 3. Updates under query load ------------------------------------------
  std::filesystem::remove_all(dir);
  created = goalrec::model::DeltaLog::Create(dir, base);
  if (!created.ok()) return 1;
  goalrec::model::DeltaLog loaded_writer = std::move(created).value();
  goalrec::model::DeltaLogOptions reader_options;
  reader_options.remove_stale_segments = false;
  goalrec::util::StatusOr<goalrec::model::DeltaLog> opened =
      goalrec::model::DeltaLog::Open(dir, reader_options);
  if (!opened.ok()) return 1;
  goalrec::model::DeltaLog reader = std::move(opened).value();

  goalrec::obs::MetricRegistry registry;
  goalrec::serve::SnapshotManager manager(
      goalrec::model::MakeSnapshot(reader.library(), dir), BreadthLadder,
      &registry);
  goalrec::serve::EngineOptions engine_options;
  engine_options.metrics = &registry;
  goalrec::serve::ServingEngine engine(&manager, engine_options);

  std::atomic<bool> stop{false};
  std::atomic<bool> mutating{false};
  std::vector<std::vector<double>> quiet_samples(
      static_cast<size_t>(threads));
  std::vector<std::vector<double>> busy_samples(
      static_cast<size_t>(threads));
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        goalrec::model::Activity activity = MakeActivity(
            base.num_actions(),
            seed + static_cast<uint64_t>(t) * 1000003 + q++);
        Clock::time_point start = Clock::now();
        (void)engine.Serve(activity, 10);
        double ms = MsSince(start);
        auto& bucket = mutating.load(std::memory_order_relaxed)
                           ? busy_samples[static_cast<size_t>(t)]
                           : quiet_samples[static_cast<size_t>(t)];
        if (bucket.size() < 200000) bucket.push_back(ms);
      }
    });
  }

  // Quiet baseline, then the mutation storm through the full pipeline.
  std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 100 : 500));
  mutating.store(true);
  goalrec::util::Rng load_rng(seed, /*stream=*/2);
  std::vector<double> publish_ms;
  publish_ms.reserve(static_cast<size_t>(updates));
  Clock::time_point load_start = Clock::now();
  for (int64_t u = 0; u < updates; ++u) {
    goalrec::model::DeltaOps ops =
        MakeOps(base, load_rng, u,
                loaded_writer.library().num_implementations());
    Clock::time_point start = Clock::now();
    if (!loaded_writer.Append(ops).ok()) return 1;
    goalrec::util::StatusOr<uint64_t> polled =
        manager.ReloadFromDeltaLog(reader);
    if (!polled.ok()) {
      std::fprintf(stderr, "reload failed: %s\n",
                   polled.status().ToString().c_str());
      return 1;
    }
    publish_ms.push_back(MsSince(start));
    if ((u + 1) % compact_every == 0) {
      if (!loaded_writer.Compact().ok()) return 1;
      if (!manager.ReloadFromDeltaLog(reader).ok()) return 1;
    }
  }
  const double load_seconds =
      static_cast<double>((Clock::now() - load_start).count()) / 1e9;
  mutating.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 100 : 500));
  stop.store(true);
  for (std::thread& t : pool) t.join();

  std::vector<double> quiet, busy;
  for (auto& s : quiet_samples) quiet.insert(quiet.end(), s.begin(), s.end());
  for (auto& s : busy_samples) busy.insert(busy.end(), s.begin(), s.end());
  const double updates_per_sec_loaded =
      load_seconds > 0 ? static_cast<double>(updates) / load_seconds : 0.0;

  const bool ok = size_gate_ok;
  std::printf("{\n  \"benchmark\": \"micro_delta\", \"smoke\": %s,\n",
              smoke ? "true" : "false");
  std::printf(
      "  \"library\": {\"implementations\": %u, \"actions\": %u, "
      "\"base_snapshot_bytes\": %zu},\n",
      base.num_implementations(), base.num_actions(), base_snapshot_bytes);
  std::printf(
      "  \"writer_only\": {\"updates\": %lld, \"appends_per_sec\": %.0f, "
      "\"append_ms\": {\"p50\": %.3f, \"p99\": %.3f}, "
      "\"final_compact_ms\": %.2f},\n",
      static_cast<long long>(updates), appends_per_sec,
      Percentile(append_ms, 0.50), Percentile(append_ms, 0.99),
      final_compact_ms);
  std::printf(
      "  \"update_size\": {\"max_segment_bytes\": %zu, "
      "\"base_to_delta_ratio\": %.0f, \"gate_10x_ok\": %s},\n",
      max_segment_bytes,
      max_segment_bytes > 0
          ? static_cast<double>(base_snapshot_bytes) /
                static_cast<double>(max_segment_bytes)
          : 0.0,
      size_gate_ok ? "true" : "false");
  std::printf(
      "  \"under_query_load\": {\"updates_per_sec\": %.0f, "
      "\"publish_ms\": {\"p50\": %.3f, \"p99\": %.3f},\n",
      updates_per_sec_loaded, Percentile(publish_ms, 0.50),
      Percentile(publish_ms, 0.99));
  std::printf(
      "    \"query_ms_quiet\": {\"samples\": %zu, \"p50\": %.3f, "
      "\"p99\": %.3f},\n",
      quiet.size(), Percentile(quiet, 0.50), Percentile(quiet, 0.99));
  std::printf(
      "    \"query_ms_mutating\": {\"samples\": %zu, \"p50\": %.3f, "
      "\"p99\": %.3f}},\n",
      busy.size(), Percentile(busy, 0.50), Percentile(busy, 0.99));
  std::printf("  \"gates_ok\": %s\n}\n", ok ? "true" : "false");

  std::error_code cleanup_ec;
  std::filesystem::remove_all(dir, cleanup_ec);
  return ok ? 0 : 1;
}
