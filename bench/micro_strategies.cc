// Micro-benchmarks for the four goal-based strategies and the two
// §5.4/DESIGN.md ablations: Algorithm 2's single-pass Breadth accumulation
// vs the naive per-candidate Eq. 6 evaluation, and Best Match under the
// three distance metrics.

#include <benchmark/benchmark.h>

#include "core/best_match.h"
#include "core/breadth.h"
#include "core/focus.h"
#include "core/query_context.h"
#include "eval/scaling.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using goalrec::eval::BuildScalingLibrary;
using goalrec::eval::ScalingWorkload;

ScalingWorkload Workload(uint32_t actions) {
  ScalingWorkload w;
  w.num_implementations = 50000;
  w.num_actions = actions;
  w.implementation_size = 6;
  return w;
}

goalrec::model::Activity MakeActivity(uint32_t num_actions, uint64_t seed) {
  goalrec::util::Rng rng(seed);
  goalrec::model::Activity activity;
  while (activity.size() < 8) {
    uint32_t a = rng.UniformUint32(num_actions);
    if (!goalrec::util::Contains(activity, a)) {
      activity.push_back(a);
      std::sort(activity.begin(), activity.end());
    }
  }
  return activity;
}

// Connectivity regimes: Arg = number of actions; 25000 actions -> ~12
// impls/action, 1000 actions -> ~300 impls/action.

void BM_FocusCompleteness(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::FocusRecommender focus(
      &lib, goalrec::core::FocusVariant::kCompleteness);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(focus.Recommend(h, 10));
}
BENCHMARK(BM_FocusCompleteness)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_FocusCloseness(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::FocusRecommender focus(
      &lib, goalrec::core::FocusVariant::kCloseness);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(focus.Recommend(h, 10));
}
BENCHMARK(BM_FocusCloseness)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_Breadth(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::BreadthRecommender breadth(&lib);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(breadth.Recommend(h, 10));
}
BENCHMARK(BM_Breadth)->Arg(25000)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Ablation: naive Breadth scoring — evaluate Eq. 6 per candidate via
// Score() instead of Algorithm 2's one pass over IS(H).
void BM_BreadthNaive(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::BreadthRecommender breadth(&lib);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) {
    double total = 0.0;
    for (goalrec::model::ActionId a : lib.CandidateActions(h)) {
      total += breadth.Score(a, h);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_BreadthNaive)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_BestMatchEuclidean(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::BestMatchRecommender best_match(&lib);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(best_match.Recommend(h, 10));
}
BENCHMARK(BM_BestMatchEuclidean)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_BestMatchCosine(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::BestMatchOptions options;
  options.metric = goalrec::util::DistanceMetric::kCosine;
  goalrec::core::BestMatchRecommender best_match(&lib, options);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(best_match.Recommend(h, 10));
}
BENCHMARK(BM_BestMatchCosine)->Arg(25000)->Unit(benchmark::kMicrosecond);

void BM_BestMatchBoolean(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::BestMatchOptions options;
  options.representation =
      goalrec::core::GoalVectorRepresentation::kBoolean;
  goalrec::core::BestMatchRecommender best_match(&lib, options);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) benchmark::DoNotOptimize(best_match.Recommend(h, 10));
}
BENCHMARK(BM_BestMatchBoolean)->Arg(25000)->Unit(benchmark::kMicrosecond);

// Ablation: answering with all four strategies per query — recomputing the
// spaces per strategy vs sharing one QueryContext.
void BM_FourStrategiesIndependent(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::FocusRecommender focus_cmp(
      &lib, goalrec::core::FocusVariant::kCompleteness);
  goalrec::core::FocusRecommender focus_cl(
      &lib, goalrec::core::FocusVariant::kCloseness);
  goalrec::core::BreadthRecommender breadth(&lib);
  goalrec::core::BestMatchRecommender best_match(&lib);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(focus_cmp.Recommend(h, 10));
    benchmark::DoNotOptimize(focus_cl.Recommend(h, 10));
    benchmark::DoNotOptimize(breadth.Recommend(h, 10));
    benchmark::DoNotOptimize(best_match.Recommend(h, 10));
  }
}
BENCHMARK(BM_FourStrategiesIndependent)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_FourStrategiesSharedContext(benchmark::State& state) {
  auto lib = BuildScalingLibrary(
      Workload(static_cast<uint32_t>(state.range(0))), 9);
  goalrec::core::FocusRecommender focus_cmp(
      &lib, goalrec::core::FocusVariant::kCompleteness);
  goalrec::core::FocusRecommender focus_cl(
      &lib, goalrec::core::FocusVariant::kCloseness);
  goalrec::core::BreadthRecommender breadth(&lib);
  goalrec::core::BestMatchRecommender best_match(&lib);
  auto h = MakeActivity(lib.num_actions(), 21);
  for (auto _ : state) {
    goalrec::core::QueryContext context =
        goalrec::core::QueryContext::Create(lib, h);
    benchmark::DoNotOptimize(focus_cmp.RecommendInContext(context, 10));
    benchmark::DoNotOptimize(focus_cl.RecommendInContext(context, 10));
    benchmark::DoNotOptimize(breadth.RecommendInContext(context, 10));
    benchmark::DoNotOptimize(best_match.RecommendInContext(context, 10));
  }
}
BENCHMARK(BM_FourStrategiesSharedContext)->Arg(25000)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
