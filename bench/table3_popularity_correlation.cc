// Table 3: Pearson correlation between the number of appearances of the
// top-20 most popular actions in the user activities and their appearances
// in each method's recommendation lists.
//
// Paper values — FoodMart: Content 0.115, CF-kNN 0.45, CF-MF 0.78,
// BestMatch -0.13, Focus_cmp -0.048, Focus_cl -0.02, Breadth -0.04.
// 43T: CF-kNN 0.75, CF-MF 0.87, goal-based between -0.15 and -0.27.

#include <cstdio>

#include "bench/common.h"
#include "eval/reports.h"

namespace {

void Run(const char* label, goalrec::bench::PreparedDataset prepared,
         goalrec::bench::Scale scale) {
  std::printf("\n--- %s ---\n", label);
  goalrec::bench::PrintDatasetSummary(prepared);
  goalrec::eval::SuiteOptions options =
      goalrec::bench::DefaultSuiteOptions(scale);
  options.include_popularity = true;  // correlation-1 anchor
  goalrec::eval::Suite suite(&prepared.dataset, prepared.inputs, options);
  std::vector<goalrec::eval::MethodResult> results =
      suite.RunAll(prepared.inputs, 10);
  std::vector<goalrec::eval::CorrelationRow> rows =
      goalrec::eval::ComputePopularityCorrelations(prepared.inputs, results);
  std::printf("%s", goalrec::eval::RenderCorrelations(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  goalrec::bench::Scale scale = goalrec::bench::ParseScale(argc, argv);
  goalrec::bench::PrintHeader(
      "Table 3 — correlation of recommendation lists with popular actions",
      "CF-MF > CF-kNN > Content > 0 > goal-based (goal-based methods do not "
      "perpetuate collective behaviour)");
  Run("FoodMart", goalrec::bench::PrepareFoodmart(scale), scale);
  Run("43Things", goalrec::bench::PrepareFortyThree(scale), scale);
  std::printf(
      "\npaper reference (FoodMart): Content 0.115, CF-kNN 0.45, CF-MF 0.78,"
      " goal-based in [-0.13, -0.02]\n"
      "paper reference (43T): CF-kNN 0.75, CF-MF 0.87, goal-based in "
      "[-0.27, -0.15]\n");
  return 0;
}
